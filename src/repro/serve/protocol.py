"""The RCEDA wire protocol: length-prefixed, versioned, CRC-checked frames.

Every message on a serve connection is one *frame*::

    +----------------+------------+------------------+----------------+
    | length u32 BE  | type u8    | payload bytes    | crc32 u32 BE   |
    +----------------+------------+------------------+----------------+

``length`` counts the type byte plus the payload (not itself, not the
CRC); ``crc32`` covers the same bytes, so a torn or bit-flipped frame is
rejected before any payload parsing.  Payloads are compact JSON — the
framing is binary and version-gated, the payload stays debuggable with
``tcpdump``-level tooling.

Frame vocabulary (client → server unless noted):

=============  ====  ======================================================
frame          type  meaning
=============  ====  ======================================================
``HELLO``      0x01  open a session: protocol version, client id, resume seq
``WELCOME``    0x02  (server) session accepted: next expected client seq
``SUBMIT``     0x03  one observation under a client sequence number
``BATCH``      0x04  a run of observations numbered ``seq, seq+1, ...``
``ACK``        0x05  (server) cumulative: all client seqs ≤ ``seq`` applied
``FLUSH``      0x06  end-of-stream expirations, itself sequenced and acked
``SUBSCRIBE``  0x07  push DETECTION frames to this session (optional filter)
``DETECTION``  0x08  (server) one rule firing: rule id, time, bindings
``ERROR``      0x09  (server) protocol/processing failure, then close
``BYE``        0x0A  orderly close (either side)
=============  ====  ======================================================

Client sequence numbers start at 0 and increase by one per ``SUBMIT``
(or per observation inside a ``BATCH``, or per ``FLUSH``).  The server
acks cumulatively after the backend has accepted the observation —
when the backend is durable the ack therefore implies the observation
reached the write-ahead log.  A reconnecting client offers its last
acked seq in ``HELLO``; ``WELCOME`` answers with the first seq the
server still needs, and the client resends exactly from there — this is
what makes delivery exactly-once across client crashes and reconnects
(see ``docs/serving.md``).

:class:`FrameDecoder` is the incremental parser: feed it arbitrary byte
chunks, get complete frames out.  :func:`encode_frame` /
:func:`decode_frame` round-trip every frame type (property-tested in
``tests/test_serve_protocol.py``).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..core.errors import ReproError
from ..core.instances import Observation

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "FrameError",
    "Frame",
    "Hello",
    "Welcome",
    "Submit",
    "Batch",
    "Ack",
    "Flush",
    "Subscribe",
    "DetectionFrame",
    "ErrorFrame",
    "Bye",
    "encode_frame",
    "decode_frame",
    "FrameDecoder",
    "encode_observation_payload",
    "decode_observation_payload",
    "detection_payload",
]

#: Bumped on any incompatible framing/payload change; HELLO carries it
#: and the server refuses mismatches with an ERROR frame.
PROTOCOL_VERSION = 1

#: Upper bound on ``length``; anything larger is a corrupt or hostile
#: header and the connection is dropped before allocating a buffer.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct("!I")
_CRC = struct.Struct("!I")


class FrameError(ReproError):
    """A frame could not be encoded, decoded or checksummed."""


# -- observation payloads ------------------------------------------------------


def encode_observation_payload(observation: Observation) -> dict:
    """JSON-safe dict for one observation (same keys as the WAL codec)."""
    payload: dict = {
        "r": observation.reader,
        "o": observation.obj,
        "t": observation.timestamp,
    }
    if observation.extra is not None:
        payload["x"] = dict(observation.extra)
    return payload


def decode_observation_payload(payload: dict) -> Observation:
    try:
        return Observation(
            payload["r"], payload["o"], payload["t"], payload.get("x")
        )
    except (KeyError, TypeError) as exc:
        raise FrameError(f"malformed observation payload: {payload!r}") from exc


def detection_payload(detection: Any) -> dict:
    """JSON-safe dict for one :class:`~repro.core.detector.Detection`.

    Bindings are passed through as-is; rule authors who bind non-JSON
    values and want them pushed over the wire must keep them
    JSON-serializable (EPC strings always are).
    """
    return {
        "rule": detection.rule.rule_id,
        "time": detection.time,
        "bindings": dict(detection.instance.bindings),
    }


# -- frame types ---------------------------------------------------------------


@dataclass(frozen=True)
class Frame:
    """Base for everything that crosses the wire."""

    TYPE = 0x00

    def to_payload(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: dict) -> "Frame":
        raise NotImplementedError


@dataclass(frozen=True)
class Hello(Frame):
    """Session open: who is calling, speaking which protocol version.

    ``resume_from`` is the client's last acked sequence number (``-1``
    for a fresh stream); the server answers with the first seq it still
    needs, taking the maximum of the client's claim and its own session
    record — whichever side remembers more wins, so nothing is applied
    twice and nothing is skipped.
    """

    TYPE = 0x01

    client_id: str
    version: int = PROTOCOL_VERSION
    resume_from: int = -1

    def to_payload(self) -> dict:
        return {
            "client_id": self.client_id,
            "version": self.version,
            "resume_from": self.resume_from,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Hello":
        return cls(
            client_id=payload["client_id"],
            version=payload["version"],
            resume_from=payload.get("resume_from", -1),
        )


@dataclass(frozen=True)
class Welcome(Frame):
    """Server accepts the session; ``next_seq`` is where to (re)start."""

    TYPE = 0x02

    session_id: str
    next_seq: int

    def to_payload(self) -> dict:
        return {"session_id": self.session_id, "next_seq": self.next_seq}

    @classmethod
    def from_payload(cls, payload: dict) -> "Welcome":
        return cls(
            session_id=payload["session_id"], next_seq=payload["next_seq"]
        )


@dataclass(frozen=True)
class Submit(Frame):
    """One observation under client sequence number ``seq``."""

    TYPE = 0x03

    seq: int
    observation: Observation

    def to_payload(self) -> dict:
        return {
            "seq": self.seq,
            "obs": encode_observation_payload(self.observation),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Submit":
        return cls(
            seq=payload["seq"],
            observation=decode_observation_payload(payload["obs"]),
        )


@dataclass(frozen=True)
class Batch(Frame):
    """Observations numbered ``seq, seq + 1, ...`` — one frame, one ack."""

    TYPE = 0x04

    seq: int
    observations: tuple = ()

    def to_payload(self) -> dict:
        return {
            "seq": self.seq,
            "obs": [encode_observation_payload(o) for o in self.observations],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Batch":
        return cls(
            seq=payload["seq"],
            observations=tuple(
                decode_observation_payload(item) for item in payload["obs"]
            ),
        )

    @property
    def last_seq(self) -> int:
        return self.seq + len(self.observations) - 1


@dataclass(frozen=True)
class Ack(Frame):
    """Cumulative acknowledgement: every client seq ≤ ``seq`` is applied."""

    TYPE = 0x05

    seq: int

    def to_payload(self) -> dict:
        return {"seq": self.seq}

    @classmethod
    def from_payload(cls, payload: dict) -> "Ack":
        return cls(seq=payload["seq"])


@dataclass(frozen=True)
class Flush(Frame):
    """Fire end-of-stream expirations; sequenced so the ack is unambiguous."""

    TYPE = 0x06

    seq: int

    def to_payload(self) -> dict:
        return {"seq": self.seq}

    @classmethod
    def from_payload(cls, payload: dict) -> "Flush":
        return cls(seq=payload["seq"])


@dataclass(frozen=True)
class Subscribe(Frame):
    """Ask for DETECTION pushes; ``rules`` optionally filters by rule id."""

    TYPE = 0x07

    rules: Optional[tuple] = None

    def to_payload(self) -> dict:
        return {"rules": list(self.rules) if self.rules is not None else None}

    @classmethod
    def from_payload(cls, payload: dict) -> "Subscribe":
        rules = payload.get("rules")
        return cls(rules=tuple(rules) if rules is not None else None)


@dataclass(frozen=True)
class DetectionFrame(Frame):
    """One rule firing pushed to a subscriber.

    ``seq`` is the client sequence number of the submission that
    triggered it (``-1`` for flush-triggered expirations of another
    session's traffic); ``ordinal`` disambiguates several detections off
    one observation.
    """

    TYPE = 0x08

    rule: str
    time: float
    bindings: dict = field(default_factory=dict)
    seq: int = -1
    ordinal: int = 0

    def to_payload(self) -> dict:
        return {
            "rule": self.rule,
            "time": self.time,
            "bindings": self.bindings,
            "seq": self.seq,
            "ordinal": self.ordinal,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DetectionFrame":
        return cls(
            rule=payload["rule"],
            time=payload["time"],
            bindings=payload.get("bindings", {}),
            seq=payload.get("seq", -1),
            ordinal=payload.get("ordinal", 0),
        )


@dataclass(frozen=True)
class ErrorFrame(Frame):
    """Protocol or processing failure; the server closes after sending it."""

    TYPE = 0x09

    code: str
    message: str

    def to_payload(self) -> dict:
        return {"code": self.code, "message": self.message}

    @classmethod
    def from_payload(cls, payload: dict) -> "ErrorFrame":
        return cls(code=payload["code"], message=payload["message"])


@dataclass(frozen=True)
class Bye(Frame):
    """Orderly goodbye."""

    TYPE = 0x0A

    def to_payload(self) -> dict:
        return {}

    @classmethod
    def from_payload(cls, payload: dict) -> "Bye":
        return cls()


_FRAME_TYPES: dict[int, type] = {
    cls.TYPE: cls
    for cls in (
        Hello,
        Welcome,
        Submit,
        Batch,
        Ack,
        Flush,
        Subscribe,
        DetectionFrame,
        ErrorFrame,
        Bye,
    )
}


# -- encode / decode -----------------------------------------------------------


def encode_frame(frame: Frame) -> bytes:
    """Serialize one frame to its wire bytes (header + body + CRC).

    Payloads are strict JSON: non-finite floats (``nan``/``inf``) would
    serialize to Python-only ``NaN``/``Infinity`` tokens that non-Python
    peers cannot parse, so they are rejected with :class:`FrameError` at
    encode time rather than poisoning the wire.
    """
    try:
        payload = json.dumps(
            frame.to_payload(), separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(
            f"{type(frame).__name__} payload is not JSON-serializable: {exc}"
        ) from exc
    body = bytes((frame.TYPE,)) + payload
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _HEADER.pack(len(body)) + body + _CRC.pack(zlib.crc32(body))


def decode_frame(data: bytes) -> tuple[Frame, int]:
    """Decode one frame from the head of ``data``.

    Returns ``(frame, consumed_bytes)``.  Raises :class:`FrameError` on
    a corrupt header, CRC mismatch, unknown type or malformed payload —
    and also when ``data`` does not yet hold a complete frame (stream
    callers should use :class:`FrameDecoder`, which buffers partial
    frames instead of raising).
    """
    if len(data) < _HEADER.size:
        raise FrameError("incomplete frame header")
    (length,) = _HEADER.unpack_from(data)
    if length < 1 or length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} out of bounds")
    total = _HEADER.size + length + _CRC.size
    if len(data) < total:
        raise FrameError("incomplete frame body")
    body = data[_HEADER.size : _HEADER.size + length]
    (crc,) = _CRC.unpack_from(data, _HEADER.size + length)
    if zlib.crc32(body) != crc:
        raise FrameError("frame CRC mismatch")
    frame_type = body[0]
    cls = _FRAME_TYPES.get(frame_type)
    if cls is None:
        raise FrameError(f"unknown frame type 0x{frame_type:02x}")
    try:
        payload = json.loads(body[1:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from exc
    try:
        return cls.from_payload(payload), total
    except (KeyError, TypeError) as exc:
        raise FrameError(
            f"malformed {cls.__name__} payload: {payload!r}"
        ) from exc


class FrameDecoder:
    """Incremental frame parser for a byte stream.

    Feed it whatever chunk sizes the transport produces; it buffers
    partial frames and yields each complete one exactly once::

        decoder = FrameDecoder()
        for frame in decoder.feed(chunk):
            handle(frame)

    Corruption (bad CRC, bogus length, unknown type) raises
    :class:`FrameError` — framing is lost at that point, so the caller
    must drop the connection.
    """

    __slots__ = ("_buffer", "frames_decoded", "bytes_consumed")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.bytes_consumed = 0

    def feed(self, data: bytes) -> Iterator[Frame]:
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            (length,) = _HEADER.unpack_from(self._buffer)
            if length < 1 or length > MAX_FRAME_BYTES:
                raise FrameError(f"frame length {length} out of bounds")
            total = _HEADER.size + length + _CRC.size
            if len(self._buffer) < total:
                return
            frame, consumed = decode_frame(bytes(self._buffer[:total]))
            del self._buffer[:consumed]
            self.frames_decoded += 1
            self.bytes_consumed += consumed
            yield frame

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)
