"""The asyncio CEP server: many ingestion sessions, one detection backend.

:class:`CepServer` multiplexes any number of client sessions onto a
single detection backend — a plain :class:`~repro.core.detector.Engine`,
a :class:`~repro.core.sharding.ShardedEngine`, or a durable engine from
:mod:`repro.resilience.durability` (detected by its
``client_frontiers`` attribute).  The paper's engine is single-threaded
and order-sensitive, so the server funnels every submission through
**one writer task** consuming a bounded queue:

* per-connection *reader tasks* parse frames and ``await put()`` into
  the submit queue — when the queue is full the reader stops reading
  its transport, which is exactly TCP backpressure on the client;
* the *writer task* applies observations to the backend strictly in
  arrival order, advances the per-client acked sequence number, and
  fans resulting detections out to subscribers;
* per-connection *sender tasks* drain each session's outbound buffers
  onto the transport, so one slow consumer can never stall the writer.

Detection push to a slow subscriber is bounded by a per-session buffer
(``ServeConfig.push_queue``); overflow follows
:class:`SlowConsumerPolicy` — ``DROP`` discards the *oldest* buffered
detection (newest data wins, drops are counted and exported), while
``DISCONNECT`` closes the offending session.  Acks are cumulative and
coalesced (at most one in flight per session), so a client that submits
faster than it reads acks costs O(1) memory, not O(stream).

Resume: the server keeps one :class:`_ClientRecord` per ``client_id``
with the highest applied client sequence number.  A reconnecting client
offers its own last ack in HELLO; the server answers WELCOME with
``max(server record, client claim) + 1`` and silently skips any
re-sent duplicates below that.  A HELLO for a client id that still has
a live session *supersedes* it (newest wins): the stale session — a
peer that died without a FIN and is waiting out a TCP timeout — is
sent an ``ERROR superseded`` and evicted, so resume is never blocked
behind a dead connection.

With a durable backend the frontier itself is durable: the writer
passes ``(client_id, seq)`` provenance into ``submit``/``flush``, the
durability layer commits it inside the *same* WAL record as the
observation, and a recovered backend exposes the rebuilt map as
``client_frontiers`` — which this server consults whenever it sees a
client id it has no in-memory record for.  Combined with
ack-after-apply (for a durable backend: ack-after-WAL-append), every
observation is applied exactly once across client crashes, reconnects
and server recoveries (see ``docs/serving.md``).  Without a durable
backend the in-memory record is all there is, and a server restart
downgrades the guarantee to whatever the clients' own ``resume_from``
claims make true.

The per-client record map is bounded by ``ServeConfig.client_record_cap``:
past the cap, records without a live session are evicted
least-recently-connected first (a durable backend loses nothing — the
WAL-backed frontier is re-read on the next HELLO).
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from ..core.errors import ReproError
from ..obs.metrics import MetricsRegistry
from .loopback import DEFAULT_MAX_BUFFER, LoopbackReader, LoopbackWriter, loopback_pair
from .protocol import (
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    Ack,
    Batch,
    Bye,
    DetectionBatch,
    DetectionFrame,
    ErrorFrame,
    Flush,
    Frame,
    FrameDecoder,
    FrameError,
    Hello,
    Ping,
    Pong,
    Submit,
    Subscribe,
    Welcome,
    codec_names,
    detection_payload,
    encode_frame_into,
    negotiate_codec,
)

__all__ = ["CepServer", "ServeConfig", "SlowConsumerPolicy", "ServeError"]


class ServeError(ReproError):
    """The serving layer was misused or hit an unrecoverable state."""


class SlowConsumerPolicy(str, Enum):
    """What to do when a subscriber's push buffer is full.

    ``DROP`` discards the oldest buffered detection (the subscriber
    keeps receiving the freshest data, and the drop is counted);
    ``DISCONNECT`` closes the session — the client's reconnect logic
    can then resubscribe and resume.
    """

    DROP = "drop"
    DISCONNECT = "disconnect"

    @classmethod
    def coerce(cls, value: "str | SlowConsumerPolicy") -> "SlowConsumerPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"bad slow-consumer policy: {value!r} "
                f"(expected one of {[policy.value for policy in cls]})"
            ) from None


@dataclass(frozen=True)
class ServeConfig:
    """Queue bounds and policies for one server."""

    #: Bound on the central submit queue (frames, not observations);
    #: readers block here, which is the ingestion backpressure point.
    submit_queue: int = 1024
    #: Per-session detection push buffer bound.
    push_queue: int = 256
    #: Overflow policy for the push buffer.
    push_policy: "str | SlowConsumerPolicy" = SlowConsumerPolicy.DROP
    #: Transport read chunk size.
    read_chunk: int = 64 * 1024
    #: Bound on retained per-client ack records; past it, records with no
    #: live session are evicted least-recently-connected first (0 = no
    #: bound).  With a durable backend eviction loses nothing — the
    #: frontier is re-read from ``backend.client_frontiers`` on HELLO.
    client_record_cap: int = 10_000
    #: Wire codecs offered at HELLO, server preference first; ``None``
    #: means every registered codec (binary preferred).  v1 clients
    #: always get ``json`` regardless.
    codecs: Optional[tuple] = None
    #: Advertised per-batch observation cap (``capabilities.max_batch``);
    #: cooperating v2 clients chunk their batches to it.
    max_batch: int = 8192
    #: Seconds of session inactivity before the server probes a
    #: heartbeat-capable peer with PING (0 disables).  Only sessions
    #: whose HELLO advertised ``"heartbeat": true`` are ever probed —
    #: v1 JSON peers never see a frame they cannot parse.
    heartbeat_interval: float = 0.0
    #: Seconds of inactivity (no frames, no PONG) after which a session
    #: is reaped: ``ERROR idle`` then disconnect (0 disables).  A live
    #: but quiet heartbeat peer answers PINGs, which counts as
    #: activity; a dead peer answers nothing and is collected here.
    #: With v1 fleets set this above the longest legitimate quiet
    #: period (v1 peers cannot be probed, only observed).
    idle_deadline: float = 0.0
    #: Overload shedding: when the submit queue is full, how long a
    #: reader waits for space before the session is shed with
    #: ``ERROR overloaded``.  ``None`` (default) disables shedding —
    #: readers block indefinitely, which is plain TCP backpressure.
    overload_grace: Optional[float] = None
    #: ``retry_after`` hint (seconds) carried on ``ERROR overloaded``.
    retry_after: float = 1.0

    def codec_preference(self) -> tuple:
        if self.codecs is not None:
            return tuple(self.codecs)
        names = codec_names()
        # Binary first when available: negotiation picks the earliest
        # server-side entry the client also offers.
        return tuple(
            sorted(names, key=lambda name: (name != "binary", name))
        )


@dataclass
class ServeStats:
    """Always-on counters (mirrored into metrics when attached)."""

    sessions_opened: int = 0
    sessions_closed: int = 0
    frames_in: int = 0
    frames_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    submitted: int = 0
    duplicates_skipped: int = 0
    acks_sent: int = 0
    detections_pushed: int = 0
    detections_dropped: int = 0
    disconnects: int = 0
    errors_sent: int = 0
    sessions_superseded: int = 0
    client_records_evicted: int = 0
    pings_sent: int = 0
    pongs_received: int = 0
    sessions_reaped: int = 0
    overloads_shed: int = 0
    subscribers_shed: int = 0
    reconnects: int = 0

    @property
    def sessions_active(self) -> int:
        return self.sessions_opened - self.sessions_closed


class _ClientRecord:
    """Across-reconnects per-client state: the ack frontier."""

    __slots__ = ("client_id", "last_acked", "active_session", "last_hello")

    def __init__(self, client_id: str) -> None:
        self.client_id = client_id
        #: Highest client sequence number applied to the backend.
        self.last_acked = -1
        self.active_session: Optional["_Session"] = None
        #: Monotonic handshake tick, for least-recently-connected eviction.
        self.last_hello = 0


class _Session:
    """One live connection: transport halves, outbound buffers, tasks."""

    def __init__(
        self,
        session_id: str,
        reader: Any,
        writer: Any,
    ) -> None:
        self.session_id = session_id
        self.reader = reader
        self.writer = writer
        self.record: Optional[_ClientRecord] = None
        #: Wire codec negotiated at HELLO (what the client *sends*;
        #: the server parses every batch shape regardless).
        self.codec = "json"
        #: Whether the peer understands DetectionBatch push frames
        #: (HELLO capability ``batch_push``); v1 peers never set it.
        self.batch_push = False
        #: Whether the peer answers PING (HELLO capability
        #: ``heartbeat``); gates whether the liveness loop probes it.
        self.heartbeat = False
        #: Whether the peer understands revision-tagged detections
        #: (HELLO capability ``revisions``).  Non-capable subscribers
        #: receive only ``final`` records, with the revision keys
        #: stripped so their payloads stay byte-identical to v1.
        self.revisions = False
        #: ``loop.time()`` of the last inbound data; the liveness loop
        #: measures idleness against this.
        self.last_activity = 0.0
        self.subscribed = False
        self.rule_filter: Optional[frozenset] = None
        self.alive = True
        #: Sentinels/control frames for the sender task ("ack", "push",
        #: "close", or a Frame instance to send verbatim).
        self.outbound: asyncio.Queue = asyncio.Queue()
        #: Bounded detection buffer (policy applies on overflow).
        self.push_buffer: deque = deque()
        #: Tail ack box (``["ack", seq]``) still coalescable in the
        #: outbound queue, or None.  Acks coalesce by bumping the boxed
        #: seq *in place*, but only while nothing else (a push, a
        #: control frame) has been queued behind the box — otherwise a
        #: later ack would overtake frames it must follow, and a peer
        #: could see Ack(n) before the detections of batch n.
        self.tail_ack: Optional[list] = None
        self.tasks: list[asyncio.Task] = []

    @property
    def client_id(self) -> Optional[str]:
        return self.record.client_id if self.record is not None else None


@dataclass
class _SubmitItem:
    session: _Session
    seq: int
    observations: list = field(default_factory=list)
    flush: bool = False
    #: Relay provenance: ``(client_id, (seq, ...))`` for a batch (one
    #: source seq per observation, gaps allowed), ``(client_id, seq)``
    #: for a flush.  None for directly-connected clients.
    prov: Optional[tuple] = None


class CepServer:
    """Serve a detection backend to remote ingestion/subscription clients.

    Parameters
    ----------
    backend:
        ``Engine``, ``ShardedEngine``, ``SupervisedEngine``,
        ``DurableEngine`` or ``DurableShardedEngine`` — anything with
        ``submit(observation) -> list[Detection]`` and ``flush()``.
        With a durable backend, acks imply the observation reached the
        write-ahead log (``DurableEngine.submit`` appends before it
        detects).
    config:
        Queue bounds and slow-consumer policy (:class:`ServeConfig`).
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; attaches a
        :class:`repro.obs.ServeInstruments` under ``metrics_label``.
    """

    def __init__(
        self,
        backend: Any,
        *,
        config: Optional[ServeConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        metrics_label: str = "serve",
    ) -> None:
        self.backend = backend
        self.config = config or ServeConfig()
        # A durable backend keeps per-client ack frontiers in its WAL and
        # exposes the recovered map; consult it so exactly-once survives
        # server restarts, not just client reconnects.
        self._durable = hasattr(backend, "client_frontiers")
        # The vectorized apply path needs a submit_many — and, when the
        # backend is durable, one that accepts per-batch client
        # provenance; anything else falls back to the per-observation
        # loop (same semantics, one backend call per observation).
        self._batch_submit = callable(getattr(backend, "submit_many", None))
        if self._durable and self._batch_submit:
            import inspect

            try:
                parameters = inspect.signature(backend.submit_many).parameters
            except (TypeError, ValueError):  # pragma: no cover - C callables
                self._batch_submit = False
            else:
                self._batch_submit = "client" in parameters
        self._push_policy = SlowConsumerPolicy.coerce(self.config.push_policy)
        self.stats = ServeStats()
        self._instr = None
        if metrics is not None:
            from ..obs.instrument import ServeInstruments

            self._instr = ServeInstruments(metrics, server_label=metrics_label)
        self._queue: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.submit_queue
        )
        self._clients: dict[str, _ClientRecord] = {}
        self._sessions: set[_Session] = set()
        self._writer_task: Optional[asyncio.Task] = None
        self._liveness_task: Optional[asyncio.Task] = None
        self._ping_token = 0
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._connection_tasks: set[asyncio.Task] = set()
        self._sender_tasks: set[asyncio.Task] = set()
        self._session_counter = 0
        self._hello_tick = 0
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Start the single writer task (idempotent)."""
        if self._closed:
            raise ServeError("server is closed")
        if self._writer_task is None:
            self._writer_task = asyncio.ensure_future(self._writer_loop())
        if self._liveness_task is None and (
            self.config.heartbeat_interval > 0 or self.config.idle_deadline > 0
        ):
            self._liveness_task = asyncio.ensure_future(self._liveness_loop())

    async def close(self) -> None:
        """Stop accepting, close every session, stop the writer."""
        if self._closed:
            return
        self._closed = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        if self._liveness_task is not None:
            self._liveness_task.cancel()
            try:
                await self._liveness_task
            except asyncio.CancelledError:
                pass
            self._liveness_task = None
        for session in list(self._sessions):
            self._disconnect(session)
        if self._writer_task is not None:
            await self._queue.put(None)
            await self._writer_task
            self._writer_task = None
        # Disconnected sessions close their transports from the sender
        # side; readers then exit on EOF.  Give them a beat before
        # cancelling stragglers — cancelling an asyncio-streams accept
        # task mid-read makes the event loop log a spurious
        # CancelledError — but still cancel: a sender can be parked in
        # ``drain()`` forever when its peer stopped reading, and
        # shutdown must not hang on a slow consumer.
        pending = list(self._connection_tasks) + list(self._sender_tasks)
        if pending:
            await asyncio.wait(pending, timeout=1.0)
        for task in pending:
            if not task.done():
                task.cancel()
        for task in pending:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    async def abort(self) -> None:
        """Hard stop: the in-process analogue of ``kill -9``, for drills.

        Unlike :meth:`close`, the submit queue is *not* drained — items
        read off the wire but not yet applied vanish exactly as they
        would in a crash (clients keep them in their unacked buffers and
        resend after reconnecting), sessions are dropped without a BYE,
        and a durable backend is left un-closed so the drill can hand
        its directory to ``DurableEngine.recover``.
        """
        if self._closed:
            return
        self._closed = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for task in (self._liveness_task, self._writer_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._liveness_task = None
        self._writer_task = None
        for session in list(self._sessions):
            session.alive = False
            self._sessions.discard(session)
            session.outbound.put_nowait("close")
            try:
                session.writer.close()
            except Exception:
                pass
        # Closed transports wake the reader/sender tasks with EOF; give
        # them a beat to exit on their own before cancelling stragglers
        # (cancelling an asyncio-streams accept task mid-read makes the
        # event loop log a spurious CancelledError).
        pending = list(self._connection_tasks) + list(self._sender_tasks)
        if pending:
            await asyncio.wait(pending, timeout=1.0)
        for task in pending:
            if not task.done():
                task.cancel()
        for task in pending:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    async def __aenter__(self) -> "CepServer":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # -- transports ---------------------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Listen on ``host:port`` (0 = ephemeral); returns the bound port."""
        await self.start()
        self._tcp_server = await asyncio.start_server(
            self._accept_tcp, host, port
        )
        return self._tcp_server.sockets[0].getsockname()[1]

    async def _accept_tcp(self, reader: Any, writer: Any) -> None:
        # Track the handler task so close() can cancel readers that are
        # blocked on clients which never hang up.
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        try:
            await self.handle_connection(reader, writer)
        finally:
            if task is not None:
                self._connection_tasks.discard(task)

    def connect_loopback(
        self, max_buffer: int = DEFAULT_MAX_BUFFER
    ) -> tuple[LoopbackReader, LoopbackWriter]:
        """Open an in-memory connection; returns the *client* endpoint.

        Must be called with the server's event loop running; the server
        side of the pair is handled exactly like a TCP connection.
        """
        if self._closed:
            raise ServeError("server is closed")
        client_end, server_end = loopback_pair(max_buffer)
        task = asyncio.ensure_future(self.handle_connection(*server_end))
        self._connection_tasks.add(task)
        task.add_done_callback(self._connection_tasks.discard)
        return client_end

    # -- connection handling ------------------------------------------------

    async def handle_connection(self, reader: Any, writer: Any) -> None:
        """Run one session to completion (also the TCP accept callback)."""
        await self.start()
        self._session_counter += 1
        session = _Session(f"s{self._session_counter}", reader, writer)
        session.last_activity = asyncio.get_running_loop().time()
        self._sessions.add(session)
        self.stats.sessions_opened += 1
        if self._instr is not None:
            self._instr.sessions.set(self.stats.sessions_active)
        sender = asyncio.ensure_future(self._sender_loop(session))
        session.tasks.append(sender)
        self._sender_tasks.add(sender)
        sender.add_done_callback(self._sender_tasks.discard)
        try:
            await self._reader_loop(session)
        finally:
            self._disconnect(session)
            try:
                await sender
            except asyncio.CancelledError:
                pass

    async def _reader_loop(self, session: _Session) -> None:
        decoder = FrameDecoder()
        reader = session.reader
        loop = asyncio.get_running_loop()
        greeted = False
        try:
            while session.alive:
                data = await reader.read(self.config.read_chunk)
                if not data:
                    return
                session.last_activity = loop.time()
                self.stats.bytes_in += len(data)
                if self._instr is not None:
                    self._instr.bytes_in.inc(len(data))
                for frame in decoder.feed(data):
                    self.stats.frames_in += 1
                    if self._instr is not None:
                        self._instr.frames_in.inc()
                    if not greeted:
                        if not isinstance(frame, Hello):
                            self._send_error(
                                session, "protocol", "expected HELLO first"
                            )
                            return
                        if not self._handshake(session, frame):
                            return
                        greeted = True
                        continue
                    if not await self._handle_frame(session, frame):
                        return
        except FrameError as exc:
            self._send_error(session, "frame", str(exc))
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
        ):
            return

    def _handshake(self, session: _Session, hello: Hello) -> bool:
        if not MIN_PROTOCOL_VERSION <= hello.version <= PROTOCOL_VERSION:
            self._send_error(
                session,
                "version",
                f"server speaks protocols {MIN_PROTOCOL_VERSION}"
                f"..{PROTOCOL_VERSION}, client spoke {hello.version}",
            )
            return False
        record = self._clients.get(hello.client_id)
        known = record is not None
        if record is None:
            record = _ClientRecord(hello.client_id)
            if self._durable:
                # A restarted server starts with an empty record map, but
                # the durable backend rebuilt the true frontier from WAL
                # provenance — without this, a client whose final ack was
                # lost in the crash would resend an already-applied seq
                # and the backend would apply it twice.
                record.last_acked = self.backend.client_frontiers.get(
                    hello.client_id, -1
                )
                known = record.last_acked >= 0
            self._clients[hello.client_id] = record
        if known or hello.resume_from >= 0:
            # A client id the server (or its WAL) has seen before, or one
            # claiming a prior ack frontier: this HELLO is a reconnect.
            self.stats.reconnects += 1
            if self._instr is not None:
                self._instr.reconnects.inc()
        stale = record.active_session
        if stale is not None:
            # Newest wins: the previous session is usually a peer that
            # died without a FIN and would otherwise block resume until
            # TCP times the corpse out.
            self.stats.sessions_superseded += 1
            self._send_error(
                stale,
                "superseded",
                f"client id {hello.client_id!r} opened a newer session",
            )
            self._disconnect(stale)
        # Whoever remembers more wins: the server's applied frontier or
        # the client's own ack record.
        record.last_acked = max(record.last_acked, hello.resume_from)
        record.active_session = session
        self._hello_tick += 1
        record.last_hello = self._hello_tick
        session.record = record
        codecs = self.config.codec_preference()
        session.codec = negotiate_codec(hello, codecs)
        session.batch_push = bool(hello.capabilities.get("batch_push"))
        # PING is capability-gated: only a peer that said it answers
        # heartbeats is ever probed (v1 peers never advertise it).
        session.heartbeat = hello.version >= 2 and bool(
            hello.capabilities.get("heartbeat")
        )
        session.revisions = hello.version >= 2 and bool(
            hello.capabilities.get("revisions")
        )
        self._prune_client_records()
        self._send_control(
            session,
            Welcome(
                session_id=session.session_id,
                next_seq=record.last_acked + 1,
                capabilities={
                    "codec": session.codec,
                    "codecs": list(codecs),
                    "resume": True,
                    "batch_push": True,
                    "max_batch": self.config.max_batch,
                    "heartbeat": self.config.heartbeat_interval,
                    "revisions": True,
                },
            ),
        )
        return True

    def _prune_client_records(self) -> None:
        """Keep ``_clients`` bounded: drop idle, least-recently-seen records.

        Short-lived auto-id clients would otherwise leak one record each
        for the life of the server.  Only records without a live session
        are candidates; if every record is live the map may exceed the
        cap (each live record is pinned by a real connection).
        """
        cap = self.config.client_record_cap
        if cap <= 0 or len(self._clients) <= cap:
            return
        idle = sorted(
            (
                record
                for record in self._clients.values()
                if record.active_session is None
            ),
            key=lambda record: record.last_hello,
        )
        for record in idle[: len(self._clients) - cap]:
            del self._clients[record.client_id]
            self.stats.client_records_evicted += 1

    async def _handle_frame(self, session: _Session, frame: Frame) -> bool:
        """Dispatch one post-handshake frame; False ends the session."""
        if isinstance(frame, Submit):
            prov = frame.prov
            if prov is not None:
                prov = (prov[0], (prov[1],))
            return await self._enqueue(
                session,
                _SubmitItem(
                    session, frame.seq, [frame.observation], prov=prov
                ),
            )
        if isinstance(frame, Batch):
            prov = frame.prov
            if prov is not None and len(prov[1]) != len(frame.observations):
                self._send_error(
                    session,
                    "protocol",
                    f"provenance lists {len(prov[1])} seqs for "
                    f"{len(frame.observations)} observations",
                )
                return False
            return await self._enqueue(
                session,
                _SubmitItem(
                    session, frame.seq, list(frame.observations), prov=prov
                ),
            )
        if isinstance(frame, Flush):
            return await self._enqueue(
                session,
                _SubmitItem(session, frame.seq, flush=True, prov=frame.prov),
            )
        if isinstance(frame, Ping):
            # Either side may probe; answer regardless of capability.
            self._send_control(session, Pong(token=frame.token))
            return True
        if isinstance(frame, Pong):
            self.stats.pongs_received += 1
            if self._instr is not None:
                self._instr.pongs.inc()
            return True
        if isinstance(frame, Subscribe):
            session.subscribed = True
            session.rule_filter = (
                frozenset(frame.rules) if frame.rules is not None else None
            )
            return True
        if isinstance(frame, Bye):
            return False
        self._send_error(
            session, "protocol", f"unexpected {type(frame).__name__} frame"
        )
        return False

    async def _enqueue(self, session: _Session, item: "_SubmitItem") -> bool:
        """Put one item on the submit queue, shedding load if configured.

        With ``overload_grace`` unset this is a plain blocking put — the
        reader stops reading its transport, which is TCP backpressure.
        With a grace period, saturation shed order is: first the
        deepest-buffered *subscriber* (push fan-out is the usual reason
        the writer cannot keep up), then — if the queue still has no
        room within the grace — the submitting session itself, with an
        explicit ``ERROR overloaded`` carrying ``retry_after`` so its
        backoff knows when to come back.
        """
        grace = self.config.overload_grace
        if grace is None:
            await self._queue.put(item)
            return True
        try:
            self._queue.put_nowait(item)
            return True
        except asyncio.QueueFull:
            pass
        self._shed_slowest_subscriber(session)
        try:
            await asyncio.wait_for(self._queue.put(item), grace)
            return True
        except asyncio.TimeoutError:
            self.stats.overloads_shed += 1
            if self._instr is not None:
                self._instr.overloads.inc()
            self._send_error(
                session,
                "overloaded",
                f"submit queue full; retry after {self.config.retry_after}s",
                retry_after=self.config.retry_after,
            )
            self._disconnect(session)
            return False

    def _shed_slowest_subscriber(self, submitter: _Session) -> None:
        """Drop the subscriber with the deepest push backlog (not the
        submitter): under overload, ingestion outranks fan-out."""
        victim = None
        for candidate in self._sessions:
            if (
                candidate.alive
                and candidate.subscribed
                and candidate is not submitter
            ):
                if victim is None or len(candidate.push_buffer) > len(
                    victim.push_buffer
                ):
                    victim = candidate
        if victim is None:
            return
        self.stats.subscribers_shed += 1
        self._send_error(
            victim,
            "overloaded",
            "server shedding subscribers under load",
            retry_after=self.config.retry_after,
        )
        self._disconnect(victim)

    # -- liveness ------------------------------------------------------------

    async def _liveness_loop(self) -> None:
        """Probe idle heartbeat peers; reap sessions past the deadline."""
        interval = self.config.heartbeat_interval
        deadline = self.config.idle_deadline
        periods = [p for p in (interval, deadline) if p > 0]
        tick = max(0.01, min(periods) / 2)
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(tick)
            now = loop.time()
            for session in list(self._sessions):
                # Pre-handshake sessions (record is None) are still
                # reaped: a peer whose HELLO was lost to corruption
                # would otherwise hold its connection open forever.
                if not session.alive:
                    continue
                idle = now - session.last_activity
                if deadline > 0 and idle > deadline:
                    self.stats.sessions_reaped += 1
                    if self._instr is not None:
                        self._instr.reaped.inc()
                    self._send_error(
                        session,
                        "idle",
                        f"no activity for {idle:.1f}s "
                        f"(deadline {deadline:g}s); reaping session",
                    )
                    self._disconnect(session)
                    # Give the sender a beat to flush the ERROR to a
                    # live-but-quiet peer, then force-close: a dead
                    # peer never drains or hangs up, and without the
                    # close its blocked reader task would leak.
                    def _force_close(target=session):
                        try:
                            target.writer.close()
                        except Exception:
                            pass

                    loop.call_later(1.0, _force_close)
                    continue
                if interval > 0 and session.heartbeat and idle >= interval:
                    self._ping_token += 1
                    self._send_control(session, Ping(token=self._ping_token))
                    self.stats.pings_sent += 1
                    if self._instr is not None:
                        self._instr.pings.inc()

    # -- the single writer --------------------------------------------------

    async def _writer_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is None:
                return
            session = item.session
            record = session.record
            if record is None or not session.alive:
                continue
            try:
                if item.flush:
                    self._apply_flush(session, record, item)
                else:
                    self._apply_submit(session, record, item)
            except Exception as exc:  # backend failure: isolate the session
                self._send_error(
                    session, "backend", f"{type(exc).__name__}: {exc}"
                )
                self._disconnect(session)

    def _apply_submit(
        self, session: _Session, record: _ClientRecord, item: _SubmitItem
    ) -> None:
        observations = item.observations
        first = item.seq
        expected = record.last_acked + 1
        if first > expected:
            self._send_error(
                session,
                "sequence",
                f"got seq {first}, expected {expected}",
            )
            self._disconnect(session)
            return
        # A batch is contiguous, so a resend overlap is always a prefix:
        # trim it in one step instead of testing every observation.
        skip = min(expected - first, len(observations))
        prov_seqs = item.prov[1] if item.prov is not None else None
        if skip:
            self.stats.duplicates_skipped += skip
            if self._instr is not None:
                self._instr.duplicates.inc(skip)
            observations = observations[skip:]
            if prov_seqs is not None:
                prov_seqs = prov_seqs[skip:]
            first += skip
        if observations:
            count = len(observations)
            if item.prov is not None and self._durable and self._batch_submit:
                detections = self._apply_relayed(
                    item.prov[0], observations, prov_seqs
                )
                record.last_acked = first + count - 1
                self.stats.submitted += count
                if self._instr is not None:
                    self._instr.submitted.inc(count)
                self._fan_out(detections, record.last_acked)
            elif self._batch_submit:
                if self._durable:
                    # Provenance rides in the WAL records themselves, so
                    # the ack frontier is durable exactly when the
                    # observations are — and the whole batch commits
                    # under one fsync.
                    detections = self.backend.submit_many(
                        observations, client=(record.client_id, first)
                    )
                else:
                    detections = self.backend.submit_many(observations)
                record.last_acked = first + count - 1
                self.stats.submitted += count
                if self._instr is not None:
                    self._instr.submitted.inc(count)
                self._fan_out(detections, record.last_acked)
            else:
                for index, observation in enumerate(observations):
                    seq = first + index
                    if self._durable:
                        detections = self.backend.submit(
                            observation, client=(record.client_id, seq)
                        )
                    else:
                        detections = self.backend.submit(observation)
                    record.last_acked = seq
                    self.stats.submitted += 1
                    if self._instr is not None:
                        self._instr.submitted.inc()
                    self._fan_out(detections, seq)
        self._queue_ack(session, record.last_acked)

    def _apply_relayed(
        self, origin: str, observations: list, prov_seqs: tuple
    ) -> list:
        """Apply relayed observations exactly once, keyed on source seqs.

        Sub-batches travel one ordered link per shard and are applied in
        order, so the source seqs this backend has already applied are
        always a prefix of the ordered subsequence routed here — one
        recovered frontier read suffices: at or below it is a replay,
        above it is new.  Source seqs may have gaps (the relay splits
        batches across shards); the durable backend takes the
        per-observation seq list directly, so the whole fresh tail
        commits as one batch — splitting it into contiguous runs would
        turn an interleaved shard's sub-batches into per-gap fragments
        and pay the per-call WAL/engine overhead once per fragment.
        """
        frontier = self.backend.client_frontiers.get(origin, -1)
        fresh: list = []
        fresh_seqs: list = []
        skipped = 0
        for observation, seq in zip(observations, prov_seqs):
            if seq <= frontier:
                skipped += 1
            else:
                fresh.append(observation)
                fresh_seqs.append(seq)
        detections: list = []
        if fresh:
            detections.extend(
                self.backend.submit_many(
                    fresh, client=(origin, tuple(fresh_seqs))
                )
            )
        if skipped:
            self.stats.duplicates_skipped += skipped
            if self._instr is not None:
                self._instr.duplicates.inc(skipped)
        return detections

    def _apply_flush(
        self, session: _Session, record: _ClientRecord, item: _SubmitItem
    ) -> None:
        seq = item.seq
        if seq > record.last_acked:
            if seq != record.last_acked + 1:
                self._send_error(
                    session,
                    "sequence",
                    f"got flush seq {seq}, expected {record.last_acked + 1}",
                )
                self._disconnect(session)
                return
            if self._durable and item.prov is not None:
                origin, source_seq = item.prov
                if source_seq <= self.backend.client_frontiers.get(origin, -1):
                    detections = []  # replayed flush: already applied
                else:
                    detections = self.backend.flush(
                        client=(origin, source_seq)
                    )
            elif self._durable:
                detections = self.backend.flush(
                    client=(record.client_id, seq)
                )
            else:
                detections = self.backend.flush()
            record.last_acked = seq
            self._fan_out(detections, seq)
        self._queue_ack(session, record.last_acked)

    def _fan_out(self, detections: list, seq: int) -> None:
        if not detections:
            return
        subscribers = [s for s in self._sessions if s.alive and s.subscribed]
        if not subscribers:
            return
        # Work in payload dicts, not DetectionFrame objects: a batch
        # frame carries the dicts verbatim, so frozen-dataclass
        # construction only happens for legacy per-frame subscribers.
        payloads = []
        for ordinal, detection in enumerate(detections):
            payload = detection_payload(detection)
            payload["seq"] = seq
            payload["ordinal"] = ordinal
            payloads.append(payload)
        for subscriber in subscribers:
            if subscriber.rule_filter is None:
                wanted = payloads
            else:
                wanted = [
                    payload
                    for payload in payloads
                    if payload["rule"] in subscriber.rule_filter
                ]
            if not subscriber.revisions:
                # Speculation is invisible to non-capable peers: finals
                # only, revision keys stripped — byte-identical to v1.
                wanted = [
                    {k: v for k, v in payload.items()
                     if k not in ("did", "rev", "status")}
                    for payload in wanted
                    if payload.get("status", "final") == "final"
                ]
            if not wanted:
                continue
            if subscriber.batch_push and len(wanted) > 1:
                self._push_detection(
                    subscriber, DetectionBatch(detections=tuple(wanted))
                )
            else:
                for payload in wanted:
                    self._push_detection(
                        subscriber, DetectionFrame.from_payload(payload)
                    )

    def _push_detection(self, session: _Session, frame: Frame) -> None:
        if len(session.push_buffer) >= self.config.push_queue:
            if self._push_policy is SlowConsumerPolicy.DISCONNECT:
                self.stats.disconnects += 1
                if self._instr is not None:
                    self._instr.disconnects.inc()
                self._disconnect(session)
                # The consumer is too far behind to receive anything
                # more (its sender may be parked in drain); close the
                # transport so that sender wakes up and exits.
                try:
                    session.writer.close()
                except Exception:
                    pass
                return
            # DROP: oldest out, newest in — buffer size and the number
            # of outstanding "push" sentinels both stay unchanged.
            victim = session.push_buffer.popleft()
            session.push_buffer.append(frame)
            dropped = (
                len(victim.detections)
                if isinstance(victim, DetectionBatch)
                else 1
            )
            self.stats.detections_dropped += dropped
            if self._instr is not None:
                self._instr.dropped.inc(dropped)
            return
        session.push_buffer.append(frame)
        # The push now sits behind any queued ack box; later acks must
        # queue behind this push, not coalesce ahead of it.
        session.tail_ack = None
        session.outbound.put_nowait("push")
        if self._instr is not None:
            self._instr.push_depth.set(len(session.push_buffer))

    def _queue_ack(self, session: _Session, seq: int) -> None:
        if not session.alive:
            return
        box = session.tail_ack
        if box is not None:
            # Still the newest queued item: safe to coalesce in place.
            box[1] = seq
            return
        box = ["ack", seq]
        session.tail_ack = box
        session.outbound.put_nowait(box)

    def _send_control(self, session: _Session, frame: Frame) -> None:
        if session.alive:
            session.tail_ack = None
            session.outbound.put_nowait(frame)

    def _send_error(
        self,
        session: _Session,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        self.stats.errors_sent += 1
        self._send_control(
            session,
            ErrorFrame(code=code, message=message, retry_after=retry_after),
        )

    # -- per-session sender --------------------------------------------------

    #: Coalescing budget for the sender loop: once a single write buffer
    #: grows past this many bytes it is flushed before more queue items
    #: are drained, bounding per-write latency and memory.
    _SEND_COALESCE_BYTES = 64 * 1024

    async def _sender_loop(self, session: _Session) -> None:
        writer = session.writer
        buffer = bytearray()
        try:
            while True:
                item = await session.outbound.get()
                # Coalesce everything already queued into one write +
                # drain: a burst of detection pushes costs one transport
                # round trip instead of one per frame.
                buffer.clear()
                frames = 0
                closing = False
                while True:
                    if item == "close":
                        closing = True
                    elif item.__class__ is list:  # ["ack", seq] box
                        if session.tail_ack is item:
                            session.tail_ack = None
                        encode_frame_into(Ack(seq=item[1]), buffer)
                        frames += 1
                        self.stats.acks_sent += 1
                        if self._instr is not None:
                            self._instr.acks.inc()
                    elif item == "push":
                        if session.push_buffer:
                            frame = session.push_buffer.popleft()
                            encode_frame_into(frame, buffer)
                            frames += 1
                            # Count detections, not frames: a batch
                            # carries several firings.
                            pushed = (
                                len(frame.detections)
                                if isinstance(frame, DetectionBatch)
                                else 1
                            )
                            self.stats.detections_pushed += pushed
                            if self._instr is not None:
                                self._instr.pushed.inc(pushed)
                                self._instr.push_depth.set(
                                    len(session.push_buffer)
                                )
                    else:
                        encode_frame_into(item, buffer)
                        frames += 1
                    if closing or len(buffer) >= self._SEND_COALESCE_BYTES:
                        break
                    try:
                        item = session.outbound.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                if buffer:
                    writer.write(bytes(buffer))
                    await writer.drain()
                    self.stats.frames_out += frames
                    self.stats.bytes_out += len(buffer)
                    if self._instr is not None:
                        self._instr.frames_out.inc(frames)
                        self._instr.bytes_out.inc(len(buffer))
                if closing:
                    break
        except (ConnectionError, RuntimeError):
            pass
        finally:
            self._disconnect(session)
            try:
                writer.close()
            except Exception:
                pass

    # -- teardown ------------------------------------------------------------

    def _disconnect(self, session: _Session) -> None:
        if not session.alive:
            return
        session.alive = False
        self._sessions.discard(session)
        record = session.record
        if record is not None and record.active_session is session:
            record.active_session = None
        session.outbound.put_nowait("close")
        self.stats.sessions_closed += 1
        if self._instr is not None:
            self._instr.sessions.set(self.stats.sessions_active)

    # -- introspection --------------------------------------------------------

    def client_frontier(self, client_id: str) -> int:
        """The highest applied client seq for ``client_id`` (-1 unknown)."""
        record = self._clients.get(client_id)
        if record is not None:
            return record.last_acked
        if self._durable:
            return self.backend.client_frontiers.get(client_id, -1)
        return -1

    def session_summary(self) -> dict:
        """Live serving state, one entry per active session."""
        return {
            "sessions": [
                {
                    "id": session.session_id,
                    "client": session.client_id,
                    "codec": session.codec,
                    "subscribed": session.subscribed,
                    "push_buffered": len(session.push_buffer),
                    "last_acked": (
                        session.record.last_acked
                        if session.record is not None
                        else -1
                    ),
                }
                for session in self._sessions
            ],
            "submit_queue_depth": self._queue.qsize(),
            "client_records": len(self._clients),
            "stats": self.stats.__dict__.copy(),
        }
