"""The skew drill: speculative consistency, demonstrated under disorder.

``python -m repro chaos skew`` (and the ``chaos``-marked CI test) runs
this scenario end to end:

* a durable :class:`~repro.serve.CepServer` whose engine runs
  ``OutOfOrderPolicy.REVISE`` (watermark speculation, see
  :mod:`repro.core.speculate`) and whose :class:`ActionOutbox` holds the
  ``confidence="final"`` line — side effects wait for sealed detections;
* a seeded :class:`~repro.resilience.chaos.ChaosInjector` perturbs a
  simulated packing stream with clock skew, out-of-order spikes and
  duplicate bursts *before* it reaches the wire, so the server sees the
  arrival order a skewed reader fleet would actually produce;
* the workload interleaves a packing line with a smart shelf whose
  outfield negation rule (paper Rule 2) watches periodic bulk re-reads,
  so held-back re-reads make the speculative engine emit provisionals
  that late data then genuinely retracts;
* mid-stream, the server is hard-killed (:meth:`CepServer.abort`) with
  speculation live — buffered readings, parked provisionals — and
  recovered with :meth:`DurableEngine.recover` on a new port.

Afterwards the drill audits the sink against the *in-order oracle*: the
same perturbed readings sorted by canonical stream order
(:func:`~repro.core.speculate.canonical_key`) and run through a plain
in-order engine.

1. the outbox sink received exactly the oracle's detections, in oracle
   order — REVISE converged despite skew, disorder and a crash;
2. every sink delivery was ``final``; no provisional leaked, and no
   detection that was later retracted ever reached the sink;
3. deliveries are exactly-once across the kill: no duplicate
   ``(seq, ordinal)`` keys, no duplicate ``detection_id``;
4. nothing fell outside the promised horizon
   (``stats.dropped_too_late == 0`` — the drill's horizon must cover
   its own fault mix, or the convergence claim is vacuous);
5. the fault plan actually fired *and* speculation actually revised:
   skewed/delayed/duplicated counts and the engine's
   retracted/revised counters are all positive — a drill that never
   retracts proves nothing.

The perturbation schedule is a pure function of ``(seed, cases)``, so a
failing run is reproducible from the seed echoed in its report.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
from typing import Any, Optional

from .client import AsyncClient, RetryConfig, tcp_connector
from .server import CepServer, ServeConfig

__all__ = ["run_chaos_skew_drill"]

#: Shelf bulk-read period (seconds).  The outfield rule's window equals
#: it, so a held-back re-read routinely arrives *after* the speculative
#: window close — the provisional-then-retract scenario.
SHELF_PERIOD = 2.0


def _outfield_rule():
    """Outfield negation over the shelf reader (paper Rule 2 pattern)."""
    from ..core.expressions import Not, Seq, Var, Within, obs
    from ..rules import AlertAction, Rule

    event = Within(
        Seq(
            obs("shelf1", Var("o"), t=Var("t1")),
            Not(obs("shelf1", Var("o"), t=Var("t2"))),
        ),
        SHELF_PERIOD,
    )
    return Rule(
        "outfield",
        "item left the shelf",
        event,
        actions=[AlertAction("item {o} left the shelf at {time}")],
    )


def _build_workload(cases: int, seed: int, horizon: float):
    """(factory, arrival_stream, oracle_detections) for one drill run."""
    import random

    from ..core.detector import Engine, FunctionRegistry, OutOfOrderPolicy
    from ..core.speculate import canonical_key
    from ..resilience.chaos import ChaosConfig, ChaosInjector
    from ..scenarios import get_pack
    from ..simulator import ShelfConfig, simulate_shelf
    from ..store import RfidStore

    # The packing half resolves through the scenario registry like every
    # other drill; its pack carries the containment + location rules.
    packing = get_pack("packing").build(seed=seed, size=cases)
    rules = lambda: list(packing.rules) + [_outfield_rule()]

    def factory():
        return Engine(
            rules(),
            store=RfidStore(),
            functions=FunctionRegistry(),
            out_of_order=OutOfOrderPolicy.REVISE,
            revise_horizon=horizon,
        )

    # Two interleaved sources: a packing line (TSeq containment windows)
    # and a smart shelf whose periodic bulk re-reads feed the outfield
    # negation — the workload where a held-back re-read makes the
    # speculative engine provisionally declare a removal it must then
    # take back.
    shelf = simulate_shelf(
        ShelfConfig(
            reader="shelf1",
            read_period=SHELF_PERIOD,
            items=max(8, cases),
            arrival_window=(0.0, 90.0),
            stay_range=(5.0, 25.0),
        ),
        rng=random.Random(seed + 1),
    )
    trace_observations = sorted(
        packing.observations + shelf.observations,
        key=lambda observation: observation.timestamp,
    )
    injector = ChaosInjector(
        ChaosConfig(
            seed=seed,
            skew_rate=0.15,
            max_skew=0.5,
            disorder_rate=0.25,
            max_lateness=2.0,
            duplicate_rate=0.10,
            duplicate_max_extra=2,
        )
    )
    arrival = list(injector.inject(trace_observations))

    # The in-order oracle: same readings, canonical stream order, plain
    # in-order engine.  REVISE's finals must converge to exactly this.
    oracle_engine = Engine(
        rules(), store=RfidStore(), functions=FunctionRegistry()
    )
    oracle = _canon(
        oracle_engine.run(sorted(arrival, key=canonical_key))
    )
    return factory, arrival, oracle, injector.counts


def _canon(detections) -> list:
    return [
        (
            d.rule.rule_id,
            round(d.time, 9),
            tuple(sorted(d.bindings.items())),
        )
        for d in detections
    ]


def _split(stream: list, parts: int) -> list:
    size = max(1, (len(stream) + parts - 1) // parts)
    return [stream[i : i + size] for i in range(0, len(stream), size)]


async def _submit_slice(client: AsyncClient, observations: list) -> None:
    for observation in observations:
        await client.submit(observation)
    await client.drain()


async def _drill(
    seed: int, cases: int, horizon: float, directory: str
) -> dict:
    from ..resilience.durability import DurableEngine

    factory, arrival, oracle, fault_counts = _build_workload(
        cases, seed, horizon
    )
    slices = _split(arrival, 4)
    while len(slices) < 4:
        slices.append([])

    deliveries: list[tuple[int, int, str, str, tuple]] = []

    def sink(detection, seq, ordinal):
        deliveries.append(
            (
                seq,
                ordinal,
                getattr(detection, "detection_id", ""),
                getattr(detection, "status", ""),
                _canon([detection])[0],
            )
        )

    durable_kwargs = dict(
        checkpoint_every=0, sink=sink, confidence="final"
    )
    durable = DurableEngine(factory, directory, **durable_kwargs)
    server = CepServer(durable, config=ServeConfig())
    port = await server.serve_tcp("127.0.0.1", 0)

    # The server is reborn on a fresh port mid-drill; the client's
    # reconnect path re-dials through this indirection.
    target = {"port": port}

    async def connector():
        return await tcp_connector("127.0.0.1", target["port"])()

    client = AsyncClient(
        connector,
        client_id=f"skew-{seed}",
        batch_size=8,
        retry=RetryConfig(
            max_attempts=80,
            backoff_base=0.01,
            backoff_max=0.2,
            op_timeout=30.0,
        ),
        codec="binary",
    )

    recovery = None
    server2 = server
    durable2 = durable
    try:
        await client.connect()
        await _submit_slice(client, slices[0])
        await _submit_slice(client, slices[1])

        # Hard-kill the server while a slice is in flight *and*
        # speculation is live: the reorder buffer holds readings, the
        # outbox holds parked provisionals.  Recovery must rebuild both
        # from the WAL alone.
        pump = asyncio.ensure_future(_submit_slice(client, slices[2]))
        await asyncio.sleep(0.05)
        await server.abort()
        durable2, recovery = DurableEngine.recover(
            factory, directory, **durable_kwargs
        )
        server2 = CepServer(durable2, config=ServeConfig())
        target["port"] = await server2.serve_tcp("127.0.0.1", 0)
        await pump

        await _submit_slice(client, slices[3])

        # End of stream: the flush seals every surviving speculation,
        # exactly like the oracle run's own flush.
        await client.flush()

        checks: list[tuple[str, bool, str]] = []

        def check(name: str, ok: bool, detail: str = "") -> None:
            checks.append((name, bool(ok), detail))

        delivered = [canon for _, _, _, _, canon in deliveries]
        check(
            "finals_match_inorder_oracle",
            delivered == oracle,
            f"delivered={len(delivered)} oracle={len(oracle)}",
        )
        statuses = {status for _, _, _, status, _ in deliveries}
        check(
            "only_finals_delivered",
            statuses <= {"final"},
            f"statuses={sorted(statuses)}",
        )
        keys = [(seq, ordinal) for seq, ordinal, _, _, _ in deliveries]
        dids = [did for _, _, did, _, _ in deliveries if did]
        check(
            "sink_exactly_once",
            len(keys) == len(set(keys)) and len(dids) == len(set(dids)),
            f"{len(keys)} deliveries, {len(set(keys))} unique keys, "
            f"{len(set(dids))} unique detection ids",
        )

        stats = durable2.engine.stats
        check(
            "nothing_outside_horizon",
            stats.dropped_too_late == 0,
            f"dropped_too_late={stats.dropped_too_late}",
        )
        check(
            "faults_fired",
            fault_counts["skewed"] > 0
            and fault_counts["delayed"] > 0
            and fault_counts["duplicated"] > 0,
            f"skewed={fault_counts['skewed']} "
            f"delayed={fault_counts['delayed']} "
            f"duplicated={fault_counts['duplicated']}",
        )
        check(
            "speculation_exercised",
            stats.speculative > 0 and stats.retracted > 0,
            f"speculative={stats.speculative} revised={stats.revised} "
            f"retracted={stats.retracted} sealed={stats.sealed}",
        )
        outbox = durable2.outbox
        check(
            "outbox_held_the_line",
            outbox.held > 0 and not outbox.pending,
            f"held={outbox.held} cancelled={outbox.cancelled} "
            f"still_pending={len(outbox.pending)}",
        )

        report = {
            "ok": all(ok for _, ok, _ in checks),
            "seed": seed,
            "cases": cases,
            "horizon": horizon,
            "observations": len(arrival),
            "checks": {
                name: {"ok": ok, "detail": detail}
                for name, ok, detail in checks
            },
            "faults": dict(fault_counts),
            "engine": {
                "speculative": stats.speculative,
                "revised": stats.revised,
                "retracted": stats.retracted,
                "sealed": stats.sealed,
                "dropped_too_late": stats.dropped_too_late,
            },
            "outbox": {
                "held": outbox.held,
                "cancelled": outbox.cancelled,
                "timed_out": outbox.timed_out,
            },
            "client": {
                "client_id": client.client_id,
                "reconnects": client.reconnects,
                "last_acked": client.last_acked,
            },
            "recovery": {
                "replayed_records": recovery.replayed_records,
                "suppressed_deliveries": recovery.suppressed_deliveries,
                "redelivered": recovery.redelivered,
                "torn_bytes_truncated": recovery.torn_bytes_truncated,
            },
        }
        return report
    finally:
        try:
            await asyncio.wait_for(client.close(), 2.0)
        except Exception:
            pass
        try:
            await server2.close()
        except Exception:
            pass
        durable2.close()


def run_chaos_skew_drill(
    seed: int = 11,
    cases: int = 16,
    *,
    horizon: float = 6.0,
    directory: Optional[str] = None,
    timeout: float = 120.0,
    report_path: Optional[str] = None,
) -> dict:
    """Run the skew drill; returns (and optionally writes) its report.

    ``report["ok"]`` is the verdict; ``report["checks"]`` itemizes each
    invariant with a human-readable detail line.  The same ``seed``
    replays the same perturbation schedule — echo it with every failure.
    ``horizon`` is the engine's ``revise_horizon``; it must exceed the
    fault mix's worst-case lateness (disorder ``max_lateness`` plus
    skew), or check 4 fails loudly rather than letting readings vanish.
    """
    if directory is None:
        directory = tempfile.mkdtemp(prefix="chaos-skew-")
    report = asyncio.run(
        asyncio.wait_for(_drill(seed, cases, horizon, directory), timeout)
    )
    report["directory"] = directory
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        report["report_path"] = report_path
    return report
