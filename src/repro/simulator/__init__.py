"""Supply-chain workload simulator (the paper's §5 test harness).

Scenario generators with ground truth:

* :mod:`~repro.simulator.packing` — conveyor packing (Rule 4),
* :mod:`~repro.simulator.movement` — location routes (Rule 3),
* :mod:`~repro.simulator.shelf` — smart shelves (Rule 2),
* :mod:`~repro.simulator.gate` — security gates (Rule 5),
* :mod:`~repro.simulator.checkout` — point-of-sale checkout (Rule 6),
* :mod:`~repro.simulator.supply_chain` — the composed system and the
  Fig. 9 scaling workloads.

Each simulator is also wrapped as a registrable scenario pack — see
:mod:`repro.scenarios` for name-based lookup and the seeded oracles.
"""

from .checkout import CheckoutConfig, CheckoutTrace, Sale, simulate_checkout
from .gate import GateConfig, GateExit, GateTrace, gate_type_function, simulate_gate
from .movement import (
    MovementConfig,
    MovementTrace,
    Visit,
    reader_placements,
    simulate_movement,
)
from .network import NetworkTrace, SupplyNetwork, default_network
from .packing import PackedCase, PackingConfig, PackingTrace, simulate_packing
from .shelf import ShelfConfig, ShelfStay, ShelfTrace, simulate_shelf
from .supply_chain import (
    MultiPackingTrace,
    SupplyChainConfig,
    SupplyChainTrace,
    simulate_multi_packing,
    simulate_supply_chain,
)

__all__ = [
    "CheckoutConfig",
    "CheckoutTrace",
    "Sale",
    "simulate_checkout",
    "gate_type_function",
    "GateConfig",
    "GateExit",
    "GateTrace",
    "default_network",
    "MovementConfig",
    "MovementTrace",
    "MultiPackingTrace",
    "NetworkTrace",
    "SupplyNetwork",
    "PackedCase",
    "PackingConfig",
    "PackingTrace",
    "reader_placements",
    "ShelfConfig",
    "ShelfStay",
    "ShelfTrace",
    "simulate_gate",
    "simulate_movement",
    "simulate_multi_packing",
    "simulate_packing",
    "simulate_shelf",
    "simulate_supply_chain",
    "SupplyChainConfig",
    "SupplyChainTrace",
    "Visit",
]
