"""Checkout scenario: point-of-sale readings closing the supply chain.

The paper's simulator covers "retail stores and sale to customers"; this
scenario generates point-of-sale readings for items that previously
arrived at the store, with ground truth of what was sold when.  The
matching application rule (:func:`repro.apps.sale_rule`) records the
sale, moves the object to the ``sold`` location and closes any open
containment (an item leaving in a customer's bag is no longer in its
case).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.instances import Observation
from ..epc import EpcFactory


@dataclass(frozen=True)
class Sale:
    """Ground truth for one sold item."""

    item_epc: str
    pos_reader: str
    time: float


@dataclass
class CheckoutTrace:
    observations: list[Observation] = field(default_factory=list)
    sales: list[Sale] = field(default_factory=list)
    end_time: float = 0.0


@dataclass
class CheckoutConfig:
    pos_readers: tuple[str, ...] = ("pos1", "pos2")
    sales: int = 12
    #: gap between consecutive sales across all lanes
    sale_gap: tuple[float, float] = (5.0, 60.0)
    item_reference: int = 660022

    def __post_init__(self) -> None:
        if not self.pos_readers:
            raise ValueError("need at least one POS reader")
        if self.sales < 0:
            raise ValueError("sales must be >= 0")


def simulate_checkout(
    config: CheckoutConfig,
    rng: Optional[random.Random] = None,
    factory: Optional[EpcFactory] = None,
    start_time: float = 0.0,
    items: Optional[Sequence[str]] = None,
) -> CheckoutTrace:
    """Generate point-of-sale readings.

    ``items`` optionally supplies the EPCs to sell (e.g. items that went
    through the packing line earlier); fresh EPCs are minted otherwise.
    """
    rng = rng if rng is not None else random.Random()
    factory = factory if factory is not None else EpcFactory()
    trace = CheckoutTrace()
    time = start_time
    for index in range(config.sales):
        time += rng.uniform(*config.sale_gap)
        if items is not None and index < len(items):
            item_epc = items[index]
        else:
            item_epc = factory.item(config.item_reference)
        pos = config.pos_readers[rng.randrange(len(config.pos_readers))]
        trace.observations.append(Observation(pos, item_epc, time))
        trace.sales.append(Sale(item_epc, pos, time))
    trace.end_time = time
    return trace
