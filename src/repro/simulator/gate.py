"""Security-gate scenario: the paper's Example 2 / Rule 5 workload.

A reader at the building exit sees asset tags (laptops) and employee
badges.  Taking a laptop out is authorized only when a superuser badge
is seen within τ of the laptop on either side (the Fig. 8 operational
semantics); otherwise the monitoring rule must raise an alarm.

The generator emits a mix of authorized and unauthorized exits and
records which laptops should alarm, at what detection time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.instances import Observation
from ..epc import EpcFactory


@dataclass(frozen=True)
class GateExit:
    """Ground truth for one laptop exit event."""

    laptop_epc: str
    laptop_time: float
    authorized: bool
    badge_epc: Optional[str]
    badge_time: Optional[float]
    #: when the alarm fires for unauthorized exits (laptop_time + tau)
    alarm_time: Optional[float]


@dataclass
class GateTrace:
    observations: list[Observation] = field(default_factory=list)
    exits: list[GateExit] = field(default_factory=list)
    end_time: float = 0.0

    def expected_alarms(self) -> list[tuple[str, float]]:
        return [
            (gate_exit.laptop_epc, gate_exit.alarm_time)
            for gate_exit in self.exits
            if not gate_exit.authorized and gate_exit.alarm_time is not None
        ]


@dataclass
class GateConfig:
    reader: str = "r4"
    tau: float = 5.0
    exits: int = 10
    authorized_fraction: float = 0.6
    #: gap between consecutive exits; must exceed 2*tau so that one
    #: exit's badge cannot accidentally authorize the next laptop.
    exit_gap: tuple[float, float] = (15.0, 40.0)
    #: badge offset relative to the laptop for authorized exits
    badge_offset: tuple[float, float] = (0.5, 4.0)
    laptop_asset_type: int = 7001
    badge_class: int = 42

    def __post_init__(self) -> None:
        if not 0.0 <= self.authorized_fraction <= 1.0:
            raise ValueError("authorized_fraction must be in [0, 1]")
        if self.exit_gap[0] <= 2 * self.tau:
            raise ValueError("exit_gap must exceed 2*tau to keep exits independent")
        if not 0 < self.badge_offset[0] <= self.badge_offset[1] < self.tau:
            raise ValueError("badge_offset must lie strictly inside (0, tau)")


def simulate_gate(
    config: GateConfig,
    rng: Optional[random.Random] = None,
    factory: Optional[EpcFactory] = None,
    start_time: float = 0.0,
) -> GateTrace:
    """Generate a run of gate exits with authorization ground truth."""
    rng = rng if rng is not None else random.Random()
    factory = factory if factory is not None else EpcFactory()
    trace = GateTrace()
    time = start_time
    for _ in range(config.exits):
        time += rng.uniform(*config.exit_gap)
        laptop = factory.asset(config.laptop_asset_type)
        authorized = rng.random() < config.authorized_fraction
        badge_epc: Optional[str] = None
        badge_time: Optional[float] = None
        if authorized:
            badge_epc = factory.badge(config.badge_class)
            offset = rng.uniform(*config.badge_offset)
            # The badge may precede or follow the laptop reading; both are
            # authorized under the two-sided negation window.
            badge_time = time + offset if rng.random() < 0.5 else time - offset
            trace.observations.append(
                Observation(config.reader, badge_epc, badge_time)
            )
        trace.observations.append(Observation(config.reader, laptop, time))
        trace.exits.append(
            GateExit(
                laptop_epc=laptop,
                laptop_time=time,
                authorized=authorized,
                badge_epc=badge_epc,
                badge_time=badge_time,
                alarm_time=None if authorized else time + config.tau,
            )
        )
    trace.observations.sort(key=lambda observation: observation.timestamp)
    trace.end_time = time + config.tau
    return trace


def gate_type_function(config: GateConfig, factory_hint: Optional[EpcFactory] = None):
    """A ``type()`` function mapping the gate's EPC schemes to type names.

    GRAI assets of the configured asset type are ``'laptop'``; GID badges
    of the configured class are ``'superuser'``.
    """
    from ..epc import Gid96, Grai96, TypeRegistry

    registry = TypeRegistry()
    prototype_company = (
        factory_hint.company_prefix if factory_hint is not None else 614141
    )
    prototype_digits = (
        factory_hint.company_digits if factory_hint is not None else 7
    )
    registry.register_class(
        Grai96(0, prototype_company, prototype_digits, config.laptop_asset_type, 0),
        "laptop",
    )
    registry.register_class(Gid96(0xBADE, config.badge_class, 0), "superuser")
    return registry
