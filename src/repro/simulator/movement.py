"""Object movement scenario: location transformation ground truth (Rule 3).

Objects travel through a route of reader-equipped locations (factory →
warehouse → truck → store …).  Each arrival produces a reading by that
location's portal reader; the location-transformation rule must rebuild
the exact location history in the RFID store.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.instances import Observation
from ..epc import EpcFactory


@dataclass(frozen=True)
class Visit:
    """Ground truth: one object at one location from ``arrive`` on."""

    obj_epc: str
    location: str
    reader: str
    arrive: float


@dataclass
class MovementTrace:
    observations: list[Observation] = field(default_factory=list)
    visits: list[Visit] = field(default_factory=list)
    end_time: float = 0.0

    def expected_history(self, obj_epc: str) -> list[tuple[str, float]]:
        """(location, arrival time) per visit for one object, in order."""
        return [
            (visit.location, visit.arrive)
            for visit in sorted(self.visits, key=lambda v: v.arrive)
            if visit.obj_epc == obj_epc
        ]


@dataclass
class MovementConfig:
    #: (reader EPC, location id) pairs in route order.
    route: tuple[tuple[str, str], ...] = (
        ("dock_f", "factory"),
        ("dock_w", "warehouse"),
        ("dock_t", "truck"),
        ("dock_s", "store"),
    )
    objects: int = 6
    #: dwell time at each location before moving on
    hop_time: tuple[float, float] = (30.0, 120.0)
    #: stagger between object departures from the first location
    launch_gap: tuple[float, float] = (5.0, 20.0)
    item_reference: int = 550077

    def __post_init__(self) -> None:
        if len(self.route) < 2:
            raise ValueError("a route needs at least two stops")


def simulate_movement(
    config: MovementConfig,
    rng: Optional[random.Random] = None,
    factory: Optional[EpcFactory] = None,
    start_time: float = 0.0,
) -> MovementTrace:
    """Move ``objects`` tagged objects through the route."""
    rng = rng if rng is not None else random.Random()
    factory = factory if factory is not None else EpcFactory()
    trace = MovementTrace()
    launch = start_time
    for _ in range(config.objects):
        launch += rng.uniform(*config.launch_gap)
        epc = factory.item(config.item_reference)
        time = launch
        for reader, location in config.route:
            trace.observations.append(Observation(reader, epc, time))
            trace.visits.append(Visit(epc, location, reader, time))
            time += rng.uniform(*config.hop_time)
        trace.end_time = max(trace.end_time, time)
    trace.observations.sort(key=lambda observation: observation.timestamp)
    return trace


def reader_placements(config: MovementConfig) -> Sequence[tuple[str, str]]:
    """(reader, location) pairs for :meth:`RfidStore.place_reader`."""
    return list(config.route)
