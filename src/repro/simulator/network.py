"""Supply-network simulation: objects flowing through a site graph.

The linear route of :mod:`repro.simulator.movement` covers the paper's
experiments; real deployments are networks — factories, distribution
centers, stores with multiple paths between them.  This module models
the network as a directed graph (via :mod:`networkx`): nodes are sites
with a portal reader each, edges carry transit-time ranges, and objects
flow from a source site to a destination along the fastest route,
producing portal readings plus ground truth at every hop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from ..core.instances import Observation
from ..epc import EpcFactory
from .movement import Visit


@dataclass
class NetworkTrace:
    observations: list[Observation] = field(default_factory=list)
    visits: list[Visit] = field(default_factory=list)
    #: object EPC -> list of site names along its realized route.
    routes: dict[str, list[str]] = field(default_factory=dict)
    end_time: float = 0.0


class SupplyNetwork:
    """A directed site graph with per-site portal readers.

    >>> network = SupplyNetwork()
    >>> network.add_site("factory")
    >>> network.add_site("store")
    >>> network.add_route("factory", "store", transit=(60, 120))
    >>> trace = network.flow("factory", "store", objects=2,
    ...                      rng=random.Random(1))
    >>> sorted(set(o.reader for o in trace.observations))
    ['portal_factory', 'portal_store']
    """

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self._factory = EpcFactory()

    # -- construction ---------------------------------------------------------

    def add_site(self, name: str, reader: Optional[str] = None,
                 dwell: tuple[float, float] = (10.0, 60.0)) -> None:
        """A site with its portal reader and a dwell-time range."""
        if dwell[0] < 0 or dwell[0] > dwell[1]:
            raise ValueError(f"bad dwell range {dwell}")
        self.graph.add_node(
            name, reader=reader or f"portal_{name}", dwell=dwell
        )

    def add_route(
        self, source: str, target: str, transit: tuple[float, float]
    ) -> None:
        """A directed leg with a transit-time range (seconds)."""
        for site in (source, target):
            if site not in self.graph:
                raise ValueError(f"unknown site {site!r}")
        if transit[0] <= 0 or transit[0] > transit[1]:
            raise ValueError(f"bad transit range {transit}")
        weight = (transit[0] + transit[1]) / 2.0
        self.graph.add_edge(source, target, transit=transit, weight=weight)

    def reader_of(self, site: str) -> str:
        return self.graph.nodes[site]["reader"]

    def reader_placements(self) -> list[tuple[str, str]]:
        """(reader, site) pairs for :meth:`RfidStore.place_reader`."""
        return [
            (data["reader"], site) for site, data in self.graph.nodes(data=True)
        ]

    # -- flows -------------------------------------------------------------------

    def route(self, source: str, destination: str) -> list[str]:
        """The fastest route by expected transit time."""
        try:
            return nx.shortest_path(
                self.graph, source, destination, weight="weight"
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise ValueError(
                f"no route from {source!r} to {destination!r}"
            ) from exc

    def flow(
        self,
        source: str,
        destination: str,
        objects: int,
        rng: Optional[random.Random] = None,
        start_time: float = 0.0,
        launch_gap: tuple[float, float] = (5.0, 30.0),
        item_reference: int = 770033,
    ) -> NetworkTrace:
        """Send ``objects`` tagged objects along the fastest route."""
        rng = rng if rng is not None else random.Random()
        path = self.route(source, destination)
        trace = NetworkTrace()
        launch = start_time
        for _ in range(objects):
            launch += rng.uniform(*launch_gap)
            epc = self._factory.item(item_reference)
            trace.routes[epc] = list(path)
            time = launch
            for index, site in enumerate(path):
                reader = self.reader_of(site)
                trace.observations.append(Observation(reader, epc, time))
                trace.visits.append(Visit(epc, site, reader, time))
                if index + 1 < len(path):
                    dwell = rng.uniform(*self.graph.nodes[site]["dwell"])
                    transit = rng.uniform(
                        *self.graph.edges[site, path[index + 1]]["transit"]
                    )
                    time += dwell + transit
            trace.end_time = max(trace.end_time, time)
        trace.observations.sort(key=lambda observation: observation.timestamp)
        return trace


def default_network() -> SupplyNetwork:
    """A small realistic network: factory → 2 DCs → 3 stores."""
    network = SupplyNetwork()
    network.add_site("factory", dwell=(30.0, 90.0))
    network.add_site("dc-east", dwell=(60.0, 240.0))
    network.add_site("dc-west", dwell=(60.0, 240.0))
    for store in ("store-1", "store-2", "store-3"):
        network.add_site(store, dwell=(30.0, 60.0))
    network.add_route("factory", "dc-east", transit=(3600.0, 7200.0))
    network.add_route("factory", "dc-west", transit=(7200.0, 10800.0))
    network.add_route("dc-east", "store-1", transit=(1800.0, 3600.0))
    network.add_route("dc-east", "store-2", transit=(1800.0, 3600.0))
    network.add_route("dc-west", "store-2", transit=(3600.0, 5400.0))
    network.add_route("dc-west", "store-3", transit=(1800.0, 3600.0))
    return network
