"""Packing conveyor scenario: the paper's Example 1 / Rule 4 workload.

A conveyor moves a run of tagged items past reader A, then the case they
are packed into passes reader B (Fig. 1).  Timing is drawn so that the
paper's containment event
``TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec)`` matches exactly one
chain per case: item gaps fall inside ``[0.1, 1]``, the case reading
falls ``[10, 20]`` seconds after the last item, and consecutive cases
are separated by more than the chain-closing gap.

The generator returns both the observation stream and the ground truth
(which items went into which case), so tests and benchmarks can verify
the engine's aggregation output row-for-row.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.instances import Observation
from ..epc import EpcFactory


@dataclass(frozen=True)
class PackedCase:
    """Ground truth for one packed case."""

    case_epc: str
    item_epcs: tuple[str, ...]
    case_time: float


@dataclass
class PackingTrace:
    """A packing-line run: observations plus ground truth."""

    observations: list[Observation] = field(default_factory=list)
    cases: list[PackedCase] = field(default_factory=list)
    end_time: float = 0.0

    def expected_containments(self) -> dict[str, tuple[str, ...]]:
        return {case.case_epc: case.item_epcs for case in self.cases}


@dataclass
class PackingConfig:
    """Timing and size parameters of a packing line.

    Defaults sit safely inside the bounds of the paper's Rule 4.
    """

    cases: int = 10
    items_per_case: int = 5
    item_reader: str = "r1"
    case_reader: str = "r2"
    item_gap: tuple[float, float] = (0.15, 0.9)
    case_delay: tuple[float, float] = (11.0, 19.0)
    inter_case_gap: tuple[float, float] = (4.0, 8.0)
    item_reference: int = 812345
    #: vary items_per_case uniformly by +/- this many items (>=1 enforced)
    items_jitter: int = 0

    def __post_init__(self) -> None:
        if self.cases < 0 or self.items_per_case < 1:
            raise ValueError("cases must be >= 0 and items_per_case >= 1")
        for name, (low, high) in (
            ("item_gap", self.item_gap),
            ("case_delay", self.case_delay),
            ("inter_case_gap", self.inter_case_gap),
        ):
            if low > high or low < 0:
                raise ValueError(f"bad {name} bounds: [{low}, {high}]")


def simulate_packing(
    config: PackingConfig,
    rng: Optional[random.Random] = None,
    factory: Optional[EpcFactory] = None,
    start_time: float = 0.0,
) -> PackingTrace:
    """Generate one packing-line run.

    >>> trace = simulate_packing(PackingConfig(cases=2, items_per_case=3),
    ...                          rng=random.Random(1))
    >>> len(trace.cases)
    2
    >>> len(trace.observations)
    8
    """
    rng = rng if rng is not None else random.Random()
    factory = factory if factory is not None else EpcFactory()
    trace = PackingTrace()
    time = start_time
    for _case_index in range(config.cases):
        item_count = config.items_per_case
        if config.items_jitter:
            item_count = max(
                1, item_count + rng.randint(-config.items_jitter, config.items_jitter)
            )
        item_epcs = []
        for item_index in range(item_count):
            if item_index:
                time += rng.uniform(*config.item_gap)
            epc = factory.item(config.item_reference)
            item_epcs.append(epc)
            trace.observations.append(Observation(config.item_reader, epc, time))
        case_time = time + rng.uniform(*config.case_delay)
        case_epc = factory.case()
        trace.observations.append(Observation(config.case_reader, case_epc, case_time))
        trace.cases.append(PackedCase(case_epc, tuple(item_epcs), case_time))
        # Next case's first item starts after the current chain has closed
        # (gap > the TSEQ+ upper bound) but before the case reading, which
        # is what makes instances of the complex event overlap — the
        # situation that forces the chronicle context (paper §4.2).
        time += rng.uniform(*config.inter_case_gap)
    # The case reading of line k lands *after* line k+1's first items have
    # started (overlapping complex event instances, Fig. 1b), so the raw
    # emission order is not time order.
    trace.observations.sort(key=lambda observation: observation.timestamp)
    trace.end_time = max(
        (observation.timestamp for observation in trace.observations),
        default=start_time,
    )
    return trace
