"""Smart-shelf scenario: infield/outfield semantic filtering (Rule 2).

A shelf reader bulk-reads every tag in its field on a fixed period (the
paper assumes 30-second frames).  Items are placed on and removed from
the shelf at arbitrary times; the application only cares about the
*infield* event (first reading after placement) and the *outfield* event
(no reading for a full period after removal).

The generator computes the ground-truth infield/outfield times from the
frame grid so tests can check the filtering rules exactly.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.instances import Observation
from ..epc import EpcFactory


@dataclass(frozen=True)
class ShelfStay:
    """Ground truth for one item's stay on the shelf."""

    item_epc: str
    placed_at: float
    removed_at: float
    #: first frame tick at which the item is read (infield detection time)
    infield_time: float
    #: frame tick by which the item has been missing for a full period
    outfield_time: float

    @property
    def was_read(self) -> bool:
        """False when the stay fell entirely between two frame ticks."""
        return self.infield_time <= self.removed_at


@dataclass
class ShelfTrace:
    observations: list[Observation] = field(default_factory=list)
    stays: list[ShelfStay] = field(default_factory=list)
    end_time: float = 0.0


@dataclass
class ShelfConfig:
    reader: str = "shelf1"
    read_period: float = 30.0
    items: int = 8
    #: each item appears at a uniform time in this window ...
    arrival_window: tuple[float, float] = (0.0, 300.0)
    #: ... and stays for a uniform duration in this range
    stay_range: tuple[float, float] = (60.0, 240.0)
    item_reference: int = 440011

    def __post_init__(self) -> None:
        if self.read_period <= 0:
            raise ValueError("read_period must be positive")
        if self.items < 0:
            raise ValueError("items must be >= 0")


def simulate_shelf(
    config: ShelfConfig,
    rng: Optional[random.Random] = None,
    factory: Optional[EpcFactory] = None,
    start_time: float = 0.0,
) -> ShelfTrace:
    """Generate bulk-read frames for a shelf with arriving/departing items."""
    rng = rng if rng is not None else random.Random()
    factory = factory if factory is not None else EpcFactory()
    period = config.read_period

    stays = []
    for _ in range(config.items):
        placed = start_time + rng.uniform(*config.arrival_window)
        removed = placed + rng.uniform(*config.stay_range)
        epc = factory.item(config.item_reference)
        first_tick = _next_tick(placed, start_time, period)
        last_tick = _last_tick(removed, start_time, period)
        stays.append(
            ShelfStay(
                epc,
                placed,
                removed,
                infield_time=first_tick,
                outfield_time=last_tick + period,
            )
        )

    trace = ShelfTrace(stays=stays)
    if not stays:
        return trace
    horizon = max(stay.removed_at for stay in stays) + period
    tick = start_time
    while tick <= horizon:
        for stay in stays:
            if stay.placed_at <= tick <= stay.removed_at:
                trace.observations.append(Observation(config.reader, stay.item_epc, tick))
        tick += period
    trace.end_time = horizon
    return trace


def _next_tick(time: float, origin: float, period: float) -> float:
    """The first frame tick at or after ``time``."""
    steps = math.ceil((time - origin) / period - 1e-9)
    return origin + max(steps, 0) * period


def _last_tick(time: float, origin: float, period: float) -> float:
    """The last frame tick at or before ``time``."""
    steps = math.floor((time - origin) / period + 1e-9)
    return origin + max(steps, 0) * period
