"""The RFID-enabled supply chain simulator of the paper's §5.

"To evaluate the performance of our approach, we developed a simulator
of an RFID-enabled supply chain system with warehouses, shipping, retail
stores and sale to customers."  This module rebuilds that generator by
composing the scenario modules:

* packing lines (items → cases, Rule 4),
* movement through warehouse/shipping/store locations (Rule 3),
* smart shelves at the store (Rule 2),
* security gates (Rule 5),

into one merged, time-ordered observation stream with full ground truth.
:func:`simulate_multi_packing` additionally scales the workload along
the two axes of Fig. 9 — number of primitive events and number of
independent reader pairs (one per rule).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.instances import Observation
from ..epc import EpcFactory
from ..readers import merge_streams
from .checkout import CheckoutConfig, CheckoutTrace, simulate_checkout
from .gate import GateConfig, GateTrace, simulate_gate
from .movement import MovementConfig, MovementTrace, simulate_movement
from .packing import PackingConfig, PackingTrace, simulate_packing
from .shelf import ShelfConfig, ShelfTrace, simulate_shelf


@dataclass
class SupplyChainConfig:
    """Knobs for a full supply-chain run (deterministic per seed)."""

    seed: int = 20060326  # EDBT 2006, Munich
    packing: PackingConfig = field(default_factory=PackingConfig)
    movement: MovementConfig = field(default_factory=MovementConfig)
    shelf: ShelfConfig = field(default_factory=ShelfConfig)
    gate: GateConfig = field(default_factory=GateConfig)
    checkout: CheckoutConfig = field(default_factory=CheckoutConfig)
    include_packing: bool = True
    include_movement: bool = True
    include_shelf: bool = True
    include_gate: bool = True
    include_checkout: bool = True


@dataclass
class SupplyChainTrace:
    """Merged observations plus per-scenario ground truth."""

    observations: list[Observation]
    packing: Optional[PackingTrace]
    movement: Optional[MovementTrace]
    shelf: Optional[ShelfTrace]
    gate: Optional[GateTrace]
    checkout: Optional[CheckoutTrace] = None

    def __len__(self) -> int:
        return len(self.observations)


def simulate_supply_chain(config: Optional[SupplyChainConfig] = None) -> SupplyChainTrace:
    """Run the composed supply-chain simulation.

    Scenarios share one EPC factory (no EPC collisions) but use
    independent, seed-derived random streams so that toggling one
    scenario does not perturb the others.
    """
    config = config if config is not None else SupplyChainConfig()
    factory = EpcFactory()
    seed = config.seed

    packing_trace = (
        simulate_packing(config.packing, random.Random(seed + 1), factory)
        if config.include_packing
        else None
    )
    movement_trace = (
        simulate_movement(config.movement, random.Random(seed + 2), factory)
        if config.include_movement
        else None
    )
    shelf_trace = (
        simulate_shelf(config.shelf, random.Random(seed + 3), factory)
        if config.include_shelf
        else None
    )
    gate_trace = (
        simulate_gate(config.gate, random.Random(seed + 4), factory)
        if config.include_gate
        else None
    )
    checkout_trace = None
    if config.include_checkout:
        # Sell items that actually flowed through the packing line, after
        # the last packing observation, so the whole chain is consistent.
        sold_items: list[str] = []
        start_time = 0.0
        if packing_trace is not None:
            for case in packing_trace.cases:
                sold_items.extend(case.item_epcs)
            start_time = packing_trace.end_time
        checkout_trace = simulate_checkout(
            config.checkout,
            random.Random(seed + 5),
            factory,
            start_time=start_time,
            items=sold_items or None,
        )

    streams = [
        trace.observations
        for trace in (
            packing_trace,
            movement_trace,
            shelf_trace,
            gate_trace,
            checkout_trace,
        )
        if trace is not None
    ]
    observations = list(merge_streams(*streams))
    return SupplyChainTrace(
        observations,
        packing_trace,
        movement_trace,
        shelf_trace,
        gate_trace,
        checkout_trace,
    )


@dataclass
class MultiPackingTrace:
    """Several independent packing lines (one per rule, Fig. 9b axis)."""

    observations: list[Observation]
    lines: list[PackingTrace]
    #: reader pair (item reader, case reader) per line
    reader_pairs: list[tuple[str, str]]


def simulate_multi_packing(
    lines: int,
    cases_per_line: int,
    items_per_case: int = 5,
    seed: int = 7,
    reader_prefix: str = "line",
) -> MultiPackingTrace:
    """Scale the packing workload along both axes of Fig. 9.

    ``lines`` controls how many independent reader pairs exist (pair one
    containment rule with each for the rules-axis sweep); ``cases_per_line``
    times ``items_per_case + 1`` controls the primitive-event count.
    Observation count is exact: ``lines * cases_per_line *
    (items_per_case + 1)``.
    """
    if lines < 1:
        raise ValueError("need at least one line")
    factory = EpcFactory()
    traces = []
    pairs = []
    for index in range(lines):
        item_reader = f"{reader_prefix}{index}_A"
        case_reader = f"{reader_prefix}{index}_B"
        pairs.append((item_reader, case_reader))
        config = PackingConfig(
            cases=cases_per_line,
            items_per_case=items_per_case,
            item_reader=item_reader,
            case_reader=case_reader,
        )
        traces.append(
            simulate_packing(config, random.Random(seed + index), factory)
        )
    observations = list(merge_streams(*(trace.observations for trace in traces)))
    return MultiPackingTrace(observations, traces, pairs)
