"""Mini-SQL substrate: the statement language of RFID rule actions.

The paper's rule actions are SQL statements executed against the RFID
data store (``INSERT INTO OBJECTLOCATION VALUES(o, "loc2", t, "UC")``).
This package provides the lexer, parser, AST and an in-memory executor
for exactly that dialect, including the paper's ``BULK INSERT``
extension (applied once per member of a matched sequence).
"""

from .ast import (
    Aggregate,
    BoolOp,
    Comparison,
    CreateIndex,
    CreateTable,
    Delete,
    Expr,
    Insert,
    Join,
    Literal,
    Name,
    NotOp,
    OrderItem,
    Select,
    Statement,
    Update,
)
from .executor import Database, Row, Table
from .lexer import SqlError, Token, tokenize
from .parser import parse, parse_script

__all__ = [
    "Aggregate",
    "BoolOp",
    "Comparison",
    "CreateIndex",
    "CreateTable",
    "Database",
    "Delete",
    "Expr",
    "Insert",
    "Join",
    "Literal",
    "Name",
    "NotOp",
    "OrderItem",
    "parse",
    "parse_script",
    "Row",
    "Select",
    "SqlError",
    "Statement",
    "Table",
    "Token",
    "tokenize",
    "Update",
]
