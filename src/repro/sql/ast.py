"""AST node classes for the mini-SQL dialect.

Expressions evaluate against a *row scope* (column values) plus a
*parameter scope* (the rule's variable bindings) — the paper's actions
freely mix both, e.g. ``WHERE object_epc = o AND tend = "UC"`` compares
the ``object_epc`` column against the event variable ``o``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..core.errors import UnknownVariableError
from .lexer import SqlError


class Expr:
    """Base class for scalar/boolean expressions."""

    def evaluate(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def evaluate(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        return self.value


@dataclass(frozen=True)
class Name(Expr):
    """An identifier: a column of the current row, else a bound parameter.

    Column resolution wins so that statements stay meaningful without
    parameters; rule variables conventionally don't collide with column
    names (the paper uses ``o``/``t`` vs ``object_epc``/``tstart``).
    """

    name: str

    def evaluate(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        if self.name in row:
            return row[self.name]
        if self.name in params:
            return params[self.name]
        raise UnknownVariableError(
            f"{self.name!r} is neither a column nor a bound variable"
        )


@dataclass(frozen=True)
class Comparison(Expr):
    operator: str
    left: Expr
    right: Expr

    def evaluate(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> bool:
        left = self.left.evaluate(row, params)
        right = self.right.evaluate(row, params)
        operator = self.operator
        if operator == "=":
            return left == right
        if operator in ("<>", "!="):
            return left != right
        if left is None or right is None:
            return False
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
        raise SqlError(f"unknown comparison operator {operator!r}")


@dataclass(frozen=True)
class BoolOp(Expr):
    operator: str  # "and" | "or"
    operands: tuple[Expr, ...]

    def evaluate(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> bool:
        if self.operator == "and":
            return all(op.evaluate(row, params) for op in self.operands)
        if self.operator == "or":
            return any(op.evaluate(row, params) for op in self.operands)
        raise SqlError(f"unknown boolean operator {self.operator!r}")


@dataclass(frozen=True)
class NotOp(Expr):
    operand: Expr

    def evaluate(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> bool:
        return not self.operand.evaluate(row, params)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for executable statements."""


@dataclass(frozen=True)
class CreateTable(Statement):
    table: str
    columns: tuple[str, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndex(Statement):
    table: str
    column: str


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    values: tuple[Expr, ...]
    columns: Optional[tuple[str, ...]] = None
    #: BULK INSERT: execute once per member of the matched sequence.
    bulk: bool = False


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class OrderItem:
    column: str
    descending: bool = False


@dataclass(frozen=True)
class Aggregate:
    """An aggregate select item: ``COUNT(*)``, ``SUM(col)``, ...

    ``column`` is None only for ``COUNT(*)``.
    """

    function: str  # count | sum | min | max | avg
    column: Optional[str]

    def label(self) -> str:
        target = self.column if self.column is not None else "*"
        return f"{self.function}({target})"


#: A select-list item: a plain column name or an aggregate.
SelectItem = "str | Aggregate"


@dataclass(frozen=True)
class Join:
    """An inner equi-join: ``JOIN <table> ON <left_col> = <right_col>``.

    Column references in the ON clause (and anywhere else in a joined
    SELECT) may be qualified as ``table.column``; unqualified names work
    when unambiguous.
    """

    table: str
    left_column: str
    right_column: str


@dataclass(frozen=True)
class Select(Statement):
    table: str
    columns: Optional[tuple]  # of str | Aggregate; None means ``*``
    where: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = field(default_factory=tuple)
    limit: Optional[int] = None
    distinct: bool = False
    group_by: tuple[str, ...] = field(default_factory=tuple)
    join: Optional[Join] = None

    def has_aggregates(self) -> bool:
        return self.columns is not None and any(
            isinstance(item, Aggregate) for item in self.columns
        )
