"""In-memory tables and the mini-SQL executor.

:class:`Table` stores rows as dicts with optional hash indexes on
equality-filtered columns; :class:`Database` holds the tables and
executes parsed statements (or SQL text directly).  Parameters — the
rule engine's variable bindings — are threaded through every expression
evaluation, so action templates like
``UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o`` work as the
paper writes them.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

from .ast import (
    Aggregate,
    Comparison,
    CreateIndex,
    CreateTable,
    Delete,
    Expr,
    Insert,
    Literal,
    Name,
    Select,
    Statement,
    Update,
)
from .lexer import SqlError
from .parser import parse

_NO_PARAMS: dict[str, Any] = {}

Row = dict[str, Any]


class Table:
    """One in-memory table: named columns, dict rows, hash indexes."""

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        if not columns:
            raise SqlError(f"table {name!r} needs at least one column")
        if len(set(columns)) != len(columns):
            raise SqlError(f"duplicate column in table {name!r}")
        self.name = name
        self.columns = tuple(columns)
        self.rows: list[Row] = []
        self._indexes: dict[str, dict[Any, list[Row]]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    # -- modification -------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> Row:
        if len(values) != len(self.columns):
            raise SqlError(
                f"table {self.name!r} has {len(self.columns)} columns but "
                f"{len(values)} values were supplied"
            )
        row = dict(zip(self.columns, values))
        self.rows.append(row)
        for column, index in self._indexes.items():
            index.setdefault(row[column], []).append(row)
        return row

    def insert_row(self, row: Mapping[str, Any]) -> Row:
        return self.insert([row.get(column) for column in self.columns])

    def delete_rows(self, predicate) -> int:
        keep = [row for row in self.rows if not predicate(row)]
        removed = len(self.rows) - len(keep)
        if removed:
            self.rows = keep
            self._rebuild_indexes()
        return removed

    def create_index(self, column: str) -> None:
        if column not in self.columns:
            raise SqlError(f"no column {column!r} in table {self.name!r}")
        index: dict[Any, list[Row]] = {}
        for row in self.rows:
            index.setdefault(row[column], []).append(row)
        self._indexes[column] = index

    def _rebuild_indexes(self) -> None:
        for column in list(self._indexes):
            self.create_index(column)

    def reindex_value(self, row: Row, column: str, old_value: Any) -> None:
        index = self._indexes.get(column)
        if index is None:
            return
        bucket = index.get(old_value, [])
        if row in bucket:
            bucket.remove(row)
        index.setdefault(row[column], []).append(row)

    # -- scanning ---------------------------------------------------------------

    def lookup(self, column: str, value: Any) -> list[Row]:
        """Equality lookup on ``column``, building its hash index on demand.

        The first call pays one scan to build the index; every later
        call is O(1).  This is the fast path for rule conditions that
        probe a table per event (e.g. "was this EPC ever sold?") where
        issuing SQL per observation would rescan the table each time.
        """
        if column not in self._indexes:
            self.create_index(column)
        return list(self._indexes[column].get(value, ()))

    def candidate_rows(
        self, where: Optional[Expr], params: Mapping[str, Any]
    ) -> Iterable[Row]:
        """Use a hash index when the WHERE allows it; else scan."""
        probe = self._index_probe(where, params)
        if probe is not None:
            column, value = probe
            return list(self._indexes[column].get(value, ()))
        return self.rows

    def _index_probe(
        self, where: Optional[Expr], params: Mapping[str, Any]
    ) -> Optional[tuple[str, Any]]:
        """Find ``indexed_column = constant`` anywhere in a conjunction."""
        if where is None or not self._indexes:
            return None
        for comparison in _conjuncts(where):
            if not isinstance(comparison, Comparison) or comparison.operator != "=":
                continue
            for column_side, value_side in (
                (comparison.left, comparison.right),
                (comparison.right, comparison.left),
            ):
                if (
                    isinstance(column_side, Name)
                    and column_side.name in self._indexes
                    and _is_constant(value_side, column_side.name, params)
                ):
                    value = value_side.evaluate(_NO_PARAMS, params)
                    return column_side.name, value
        return None


def _conjuncts(expr: Expr) -> Iterable[Expr]:
    from .ast import BoolOp

    if isinstance(expr, BoolOp) and expr.operator == "and":
        for operand in expr.operands:
            yield from _conjuncts(operand)
    else:
        yield expr


def _is_constant(expr: Expr, column: str, params: Mapping[str, Any]) -> bool:
    if isinstance(expr, Literal):
        return True
    return isinstance(expr, Name) and expr.name != column and expr.name in params


class Database:
    """A named collection of tables plus statement execution.

    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t (a, b)")
    >>> _ = db.execute("INSERT INTO t VALUES (1, 'x')")
    >>> db.query("SELECT a FROM t")
    [(1,)]
    """

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}

    # -- schema -------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        if name in self.tables:
            raise SqlError(f"table {name!r} already exists")
        table = Table(name, columns)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SqlError(f"no such table: {name!r}") from None

    # -- persistence -----------------------------------------------------------

    def dump(self) -> dict:
        """A JSON-compatible snapshot of schema, rows, indexes and aliases."""
        tables: dict[str, Any] = {}
        aliases: dict[str, str] = {}
        seen: dict[int, str] = {}
        for name, table in self.tables.items():
            if id(table) in seen:
                aliases[name] = seen[id(table)]
                continue
            seen[id(table)] = name
            tables[name] = {
                "columns": list(table.columns),
                "rows": [
                    [row[column] for column in table.columns]
                    for row in table.rows
                ],
                "indexes": sorted(table._indexes),
            }
        return {"tables": tables, "aliases": aliases}

    @classmethod
    def load(cls, payload: Mapping[str, Any]) -> "Database":
        """Rebuild a database from :meth:`dump` output."""
        database = cls()
        for name, spec in payload.get("tables", {}).items():
            table = database.create_table(name, spec["columns"])
            for values in spec["rows"]:
                table.insert(values)
            for column in spec.get("indexes", ()):
                table.create_index(column)
        for alias, target in payload.get("aliases", {}).items():
            database.tables[alias] = database.table(target)
        return database

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        statement: "Statement | str",
        params: Optional[Mapping[str, Any]] = None,
    ) -> Any:
        """Execute a statement; SELECT returns a list of tuples.

        INSERT returns the inserted row; UPDATE/DELETE return the number
        of affected rows.
        """
        if isinstance(statement, str):
            statement = parse(statement)
        params = params if params is not None else _NO_PARAMS

        if isinstance(statement, CreateTable):
            return self.create_table(statement.table, statement.columns)
        if isinstance(statement, CreateIndex):
            self.table(statement.table).create_index(statement.column)
            return None
        if isinstance(statement, Insert):
            return self._execute_insert(statement, params)
        if isinstance(statement, Update):
            return self._execute_update(statement, params)
        if isinstance(statement, Delete):
            return self._execute_delete(statement, params)
        if isinstance(statement, Select):
            return self._execute_select(statement, params)
        raise SqlError(f"cannot execute {type(statement).__name__}")

    def query(
        self, text: "Statement | str", params: Optional[Mapping[str, Any]] = None
    ) -> list[tuple]:
        """Execute a SELECT and return its rows (alias of execute)."""
        result = self.execute(text, params)
        if not isinstance(result, list):
            raise SqlError("query() expects a SELECT statement")
        return result

    def explain(
        self, statement: "Statement | str", params: Optional[Mapping[str, Any]] = None
    ) -> str:
        """A one-line access-plan description for a SELECT.

        ``index probe t(k)`` when a hash index satisfies an equality in
        the WHERE conjunction, ``scan t`` otherwise, ``hash join`` for
        joined selects — so tests (and users) can confirm the index they
        created is actually used.
        """
        if isinstance(statement, str):
            statement = parse(statement)
        if not isinstance(statement, Select):
            raise SqlError("explain() expects a SELECT statement")
        params = params if params is not None else _NO_PARAMS
        if statement.join is not None:
            return (
                f"hash join {statement.table} x {statement.join.table} "
                f"then filter"
            )
        table = self.table(statement.table)
        probe = table._index_probe(statement.where, params)
        if probe is not None:
            column, _value = probe
            return f"index probe {statement.table}({column})"
        return f"scan {statement.table}"

    # -- statement handlers ------------------------------------------------------

    def _execute_insert(self, statement: Insert, params: Mapping[str, Any]) -> Row:
        table = self.table(statement.table)
        values = [expr.evaluate(_NO_PARAMS, params) for expr in statement.values]
        if statement.columns is not None:
            if len(statement.columns) != len(values):
                raise SqlError("column list and VALUES arity mismatch")
            row = dict.fromkeys(table.columns)
            row.update(dict(zip(statement.columns, values)))
            return table.insert([row[column] for column in table.columns])
        return table.insert(values)

    def _execute_update(self, statement: Update, params: Mapping[str, Any]) -> int:
        table = self.table(statement.table)
        for column, _expr in statement.assignments:
            if column not in table.columns:
                raise SqlError(
                    f"no column {column!r} in table {statement.table!r}"
                )
        affected = 0
        for row in list(table.candidate_rows(statement.where, params)):
            if statement.where is not None and not statement.where.evaluate(
                row, params
            ):
                continue
            for column, expr in statement.assignments:
                old_value = row[column]
                row[column] = expr.evaluate(row, params)
                table.reindex_value(row, column, old_value)
            affected += 1
        return affected

    def _execute_delete(self, statement: Delete, params: Mapping[str, Any]) -> int:
        table = self.table(statement.table)
        if statement.where is None:
            removed = len(table.rows)
            table.rows.clear()
            table._rebuild_indexes()
            return removed
        where = statement.where
        return table.delete_rows(lambda row: where.evaluate(row, params))

    def _execute_select(
        self, statement: Select, params: Mapping[str, Any]
    ) -> list[tuple]:
        if statement.join is not None:
            candidates, available, default_columns = self._joined_rows(statement)
        else:
            table = self.table(statement.table)
            candidates = table.candidate_rows(statement.where, params)
            available = set(table.columns)
            default_columns = table.columns
        rows = [
            row
            for row in candidates
            if statement.where is None or statement.where.evaluate(row, params)
        ]
        if statement.has_aggregates() or statement.group_by:
            return self._execute_aggregate_select(
                statement, available, default_columns, rows
            )
        columns = statement.columns or default_columns
        for column in columns:
            if column not in available:
                raise SqlError(f"no column {column!r} in table {statement.table!r}")
        for item in reversed(statement.order_by):
            rows.sort(key=lambda row: row[item.column], reverse=item.descending)
        result = [tuple(row[column] for column in columns) for row in rows]
        if statement.distinct:
            seen: set[tuple] = set()
            unique = []
            for row in result:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            result = unique
        if statement.limit is not None:
            result = result[: statement.limit]
        return result

    def _joined_rows(
        self, statement: Select
    ) -> tuple[list[Row], set, tuple]:
        """Inner equi-join rows with qualified (and unambiguous plain) keys."""
        join = statement.join
        assert join is not None
        left_name, right_name = statement.table, join.table
        if left_name == right_name:
            raise SqlError("self-joins are not supported (no aliases)")
        left, right = self.table(left_name), self.table(right_name)

        def resolve(reference: str) -> tuple[str, str]:
            if "." in reference:
                table_name, column = reference.split(".", 1)
                if table_name not in (left_name, right_name):
                    raise SqlError(f"unknown table in reference {reference!r}")
                target = left if table_name == left_name else right
                if column not in target.columns:
                    raise SqlError(f"no column {column!r} in {table_name!r}")
                return table_name, column
            in_left = reference in left.columns
            in_right = reference in right.columns
            if in_left and in_right:
                raise SqlError(f"ambiguous join column {reference!r}")
            if in_left:
                return left_name, reference
            if in_right:
                return right_name, reference
            raise SqlError(f"unknown join column {reference!r}")

        first = resolve(join.left_column)
        second = resolve(join.right_column)
        if {first[0], second[0]} != {left_name, right_name}:
            raise SqlError("JOIN ... ON must relate one column from each table")
        left_column = first[1] if first[0] == left_name else second[1]
        right_column = first[1] if first[0] == right_name else second[1]

        ambiguous = set(left.columns) & set(right.columns)
        right_index: dict[Any, list[Row]] = {}
        for row in right.rows:
            right_index.setdefault(row[right_column], []).append(row)
        joined: list[Row] = []
        for left_row in left.rows:
            for right_row in right_index.get(left_row[left_column], ()):
                merged: Row = {}
                for column in left.columns:
                    merged[f"{left_name}.{column}"] = left_row[column]
                    if column not in ambiguous:
                        merged[column] = left_row[column]
                for column in right.columns:
                    merged[f"{right_name}.{column}"] = right_row[column]
                    if column not in ambiguous:
                        merged[column] = right_row[column]
                joined.append(merged)
        default_columns = tuple(
            [f"{left_name}.{column}" for column in left.columns]
            + [f"{right_name}.{column}" for column in right.columns]
        )
        available = set(default_columns)
        available.update(
            column
            for column in tuple(left.columns) + tuple(right.columns)
            if column not in ambiguous
        )
        return joined, available, default_columns

    def _execute_aggregate_select(
        self,
        statement: Select,
        available: set,
        _default_columns: tuple,
        rows: list[Row],
    ) -> list[tuple]:
        """SELECT with aggregates and/or GROUP BY over pre-filtered rows."""
        if statement.columns is None:
            raise SqlError("SELECT * cannot be combined with GROUP BY")
        group_columns = statement.group_by
        for column in group_columns:
            if column not in available:
                raise SqlError(
                    f"no column {column!r} in table {statement.table!r}"
                )
        for item in statement.columns:
            if isinstance(item, Aggregate):
                if item.column is not None and item.column not in available:
                    raise SqlError(
                        f"no column {item.column!r} in table {statement.table!r}"
                    )
            elif item not in group_columns:
                raise SqlError(
                    f"column {item!r} must appear in GROUP BY to be selected "
                    "alongside aggregates"
                )

        grouped: dict[tuple, list[Row]] = {}
        if group_columns:
            for row in rows:
                key = tuple(row[column] for column in group_columns)
                grouped.setdefault(key, []).append(row)
        else:
            grouped[()] = rows  # one global group (may be empty)

        result = []
        for key, members in grouped.items():
            key_by_column = dict(zip(group_columns, key))
            record = []
            for item in statement.columns:
                if isinstance(item, Aggregate):
                    record.append(_aggregate(item, members))
                else:
                    record.append(key_by_column[item])
            result.append(tuple(record))
        if statement.order_by:
            index_of = {
                item if isinstance(item, str) else item.label(): position
                for position, item in enumerate(statement.columns)
            }
            for order in reversed(statement.order_by):
                if order.column not in index_of:
                    raise SqlError(
                        f"ORDER BY {order.column!r} is not in the select list"
                    )
                position = index_of[order.column]
                result.sort(key=lambda row: row[position], reverse=order.descending)
        if statement.limit is not None:
            result = result[: statement.limit]
        return result


def _aggregate(item: Aggregate, rows: list[Row]) -> Any:
    if item.function == "count":
        if item.column is None:
            return len(rows)
        return sum(1 for row in rows if row[item.column] is not None)
    values = [row[item.column] for row in rows if row[item.column] is not None]
    if not values:
        return None
    if item.function == "sum":
        return sum(values)
    if item.function == "min":
        return min(values)
    if item.function == "max":
        return max(values)
    if item.function == "avg":
        return sum(values) / len(values)
    raise SqlError(f"unknown aggregate {item.function!r}")
