"""Tokenizer for the mini-SQL dialect used by RFID rule actions.

The dialect covers exactly what the paper's rules need — CREATE TABLE,
INSERT, BULK INSERT, UPDATE, DELETE and SELECT with conjunctive WHERE
clauses — so the lexer is deliberately small: identifiers, single- or
double-quoted string literals, numbers, comparison operators and
punctuation.  Keywords are case-insensitive; identifiers preserve case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.errors import ReproError


class SqlError(ReproError):
    """Any failure while parsing or executing a mini-SQL statement."""


#: Token kinds.
IDENT = "IDENT"
KEYWORD = "KEYWORD"
STRING = "STRING"
NUMBER = "NUMBER"
OP = "OP"
PUNCT = "PUNCT"
END = "END"

KEYWORDS = frozenset(
    """
    create table index insert bulk into values update set delete select
    from where and or not order by asc desc limit distinct null true false
    primary key group join on
    """.split()
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_PUNCTUATION = "(),;*."


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    position: int

    def matches(self, kind: str, value: "str | None" = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`SqlError` on stray characters."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if char in ("'", '"'):
            end = text.find(char, position + 1)
            if end < 0:
                raise SqlError(f"unterminated string literal at offset {position}")
            yield Token(STRING, text[position + 1 : end], position)
            position = end + 1
            continue
        if char.isdigit() or (
            char == "." and position + 1 < length and text[position + 1].isdigit()
        ):
            end = position + 1
            seen_dot = char == "."
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            yield Token(NUMBER, text[position:end], position)
            position = end
            continue
        if char.isalpha() or char == "_":
            end = position + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[position:end]
            kind = KEYWORD if word.lower() in KEYWORDS else IDENT
            value = word.lower() if kind == KEYWORD else word
            yield Token(kind, value, position)
            position = end
            continue
        matched = False
        for operator in _OPERATORS:
            if text.startswith(operator, position):
                yield Token(OP, operator, position)
                position += len(operator)
                matched = True
                break
        if matched:
            continue
        if char in _PUNCTUATION:
            yield Token(PUNCT, char, position)
            position += 1
            continue
        raise SqlError(f"unexpected character {char!r} at offset {position}")
    yield Token(END, "", length)
