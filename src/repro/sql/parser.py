"""Recursive-descent parser for the mini-SQL dialect.

Grammar (informal)::

    statement   := create_table | create_index | insert | update
                 | delete | select
    create_table:= CREATE TABLE name '(' column (',' column)* ')'
    create_index:= CREATE INDEX ON name '(' column ')'
    insert      := [BULK] INSERT INTO name ['(' columns ')']
                   VALUES '(' expr (',' expr)* ')'
    update      := UPDATE name SET col '=' expr (',' col '=' expr)*
                   [WHERE condition]
    delete      := DELETE FROM name [WHERE condition]
    select      := SELECT [DISTINCT] ('*' | columns) FROM name
                   [WHERE condition] [ORDER BY col [ASC|DESC], ...]
                   [LIMIT n]
    condition   := or_expr ;  or_expr := and_expr (OR and_expr)*
    and_expr    := unary (AND unary)* ; unary := [NOT] primary
    primary     := '(' condition ')' | operand cmp operand
    operand     := string | number | TRUE | FALSE | NULL | identifier

Identifiers in value positions become :class:`~repro.sql.ast.Name`
references, resolved at execution time against the row first and the
rule's variable bindings second.
"""

from __future__ import annotations

from typing import Optional

from .ast import (
    Aggregate,
    BoolOp,
    Comparison,
    CreateIndex,
    CreateTable,
    Delete,
    Expr,
    Insert,
    Join,
    Literal,
    Name,
    NotOp,
    OrderItem,
    Select,
    Statement,
    Update,
)

_AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")
from .lexer import END, IDENT, KEYWORD, NUMBER, OP, PUNCT, STRING, SqlError, Token, tokenize


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.current.matches(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            want = value or kind
            found = self.current.value or self.current.kind
            raise SqlError(
                f"expected {want!r} but found {found!r} at offset "
                f"{self.current.position} in: {self.text!r}"
            )
        return token

    def expect_name(self) -> str:
        token = self.current
        if token.kind in (IDENT, KEYWORD):
            self.advance()
            return token.value
        raise SqlError(
            f"expected a name at offset {token.position} in: {self.text!r}"
        )

    def qualified_name(self) -> str:
        """A column reference: ``col`` or ``table.col``."""
        name = self.expect_name()
        if self.accept(PUNCT, "."):
            name = f"{name}.{self.expect_name()}"
        return name

    # -- statements ----------------------------------------------------------

    def statement(self) -> Statement:
        if self.accept(KEYWORD, "create"):
            if self.accept(KEYWORD, "table"):
                return self.create_table()
            if self.accept(KEYWORD, "index"):
                return self.create_index()
            raise SqlError("expected TABLE or INDEX after CREATE")
        if self.accept(KEYWORD, "bulk"):
            self.expect(KEYWORD, "insert")
            return self.insert(bulk=True)
        if self.accept(KEYWORD, "insert"):
            return self.insert(bulk=False)
        if self.accept(KEYWORD, "update"):
            return self.update()
        if self.accept(KEYWORD, "delete"):
            return self.delete()
        if self.accept(KEYWORD, "select"):
            return self.select()
        raise SqlError(f"unrecognized statement: {self.text!r}")

    def finish(self, statement: Statement) -> Statement:
        self.accept(PUNCT, ";")
        if not self.current.matches(END):
            raise SqlError(
                f"unexpected trailing input at offset {self.current.position} "
                f"in: {self.text!r}"
            )
        return statement

    def create_table(self) -> Statement:
        table = self.expect_name()
        self.expect(PUNCT, "(")
        columns = [self.expect_name()]
        while self.accept(PUNCT, ","):
            columns.append(self.expect_name())
        self.expect(PUNCT, ")")
        return CreateTable(table, tuple(columns))

    def create_index(self) -> Statement:
        # CREATE INDEX [name] ON table (column)
        if self.current.kind == IDENT:
            self.advance()  # optional index name
        self.expect(KEYWORD, "on")
        table = self.expect_name()
        self.expect(PUNCT, "(")
        column = self.expect_name()
        self.expect(PUNCT, ")")
        return CreateIndex(table, column)

    def insert(self, bulk: bool) -> Statement:
        self.expect(KEYWORD, "into")
        table = self.expect_name()
        columns: Optional[tuple[str, ...]] = None
        if self.accept(PUNCT, "("):
            names = [self.expect_name()]
            while self.accept(PUNCT, ","):
                names.append(self.expect_name())
            self.expect(PUNCT, ")")
            columns = tuple(names)
        self.expect(KEYWORD, "values")
        self.expect(PUNCT, "(")
        values = [self.operand()]
        while self.accept(PUNCT, ","):
            values.append(self.operand())
        self.expect(PUNCT, ")")
        return Insert(table, tuple(values), columns, bulk)

    def update(self) -> Statement:
        table = self.expect_name()
        self.expect(KEYWORD, "set")
        assignments = [self.assignment()]
        while self.accept(PUNCT, ","):
            assignments.append(self.assignment())
        where = self.optional_where()
        return Update(table, tuple(assignments), where)

    def assignment(self) -> tuple[str, Expr]:
        column = self.expect_name()
        self.expect(OP, "=")
        return column, self.operand()

    def delete(self) -> Statement:
        self.expect(KEYWORD, "from")
        table = self.expect_name()
        where = self.optional_where()
        return Delete(table, where)

    def select(self) -> Statement:
        distinct = bool(self.accept(KEYWORD, "distinct"))
        columns: Optional[tuple] = None
        if not self.accept(PUNCT, "*"):
            items = [self.select_item()]
            while self.accept(PUNCT, ","):
                items.append(self.select_item())
            columns = tuple(items)
        self.expect(KEYWORD, "from")
        table = self.expect_name()
        join = None
        if self.accept(KEYWORD, "join"):
            join_table = self.expect_name()
            self.expect(KEYWORD, "on")
            left = self.qualified_name()
            self.expect(OP, "=")
            right = self.qualified_name()
            join = Join(join_table, left, right)
        where = self.optional_where()
        group_by: list[str] = []
        if self.accept(KEYWORD, "group"):
            self.expect(KEYWORD, "by")
            group_by.append(self.qualified_name())
            while self.accept(PUNCT, ","):
                group_by.append(self.qualified_name())
        order: list[OrderItem] = []
        if self.accept(KEYWORD, "order"):
            self.expect(KEYWORD, "by")
            order.append(self.order_item())
            while self.accept(PUNCT, ","):
                order.append(self.order_item())
        limit: Optional[int] = None
        if self.accept(KEYWORD, "limit"):
            token = self.expect(NUMBER)
            limit = int(token.value)
        return Select(
            table,
            columns,
            where,
            tuple(order),
            limit,
            distinct,
            tuple(group_by),
            join,
        )

    def select_item(self):
        """A plain column or an aggregate: ``col`` | ``SUM(col)`` | ``COUNT(*)``."""
        token = self.current
        if (
            token.kind in (IDENT, KEYWORD)
            and token.value.lower() in _AGGREGATE_FUNCTIONS
            and self.tokens[self.position + 1].matches(PUNCT, "(")
        ):
            function = token.value.lower()
            self.advance()
            self.expect(PUNCT, "(")
            if self.accept(PUNCT, "*"):
                if function != "count":
                    raise SqlError(f"{function.upper()}(*) is not supported")
                column = None
            else:
                column = self.qualified_name()
            self.expect(PUNCT, ")")
            return Aggregate(function, column)
        return self.qualified_name()

    def order_item(self) -> OrderItem:
        column = self.qualified_name()
        if self.accept(KEYWORD, "desc"):
            return OrderItem(column, descending=True)
        self.accept(KEYWORD, "asc")
        return OrderItem(column)

    def optional_where(self) -> Optional[Expr]:
        if self.accept(KEYWORD, "where"):
            return self.condition()
        return None

    # -- expressions -------------------------------------------------------------

    def condition(self) -> Expr:
        operands = [self.and_condition()]
        while self.accept(KEYWORD, "or"):
            operands.append(self.and_condition())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("or", tuple(operands))

    def and_condition(self) -> Expr:
        operands = [self.unary_condition()]
        while self.accept(KEYWORD, "and"):
            operands.append(self.unary_condition())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("and", tuple(operands))

    def unary_condition(self) -> Expr:
        if self.accept(KEYWORD, "not"):
            return NotOp(self.unary_condition())
        if self.accept(PUNCT, "("):
            inner = self.condition()
            self.expect(PUNCT, ")")
            return inner
        left = self.operand()
        operator = self.expect(OP)
        right = self.operand()
        return Comparison(operator.value, left, right)

    def operand(self) -> Expr:
        token = self.current
        if token.matches(STRING):
            self.advance()
            return Literal(token.value)
        if token.matches(NUMBER):
            self.advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.matches(KEYWORD, "null"):
            self.advance()
            return Literal(None)
        if token.matches(KEYWORD, "true"):
            self.advance()
            return Literal(True)
        if token.matches(KEYWORD, "false"):
            self.advance()
            return Literal(False)
        if token.matches(IDENT):
            return Name(self.qualified_name())
        raise SqlError(
            f"expected a value at offset {token.position} in: {self.text!r}"
        )


def parse(text: str) -> Statement:
    """Parse one mini-SQL statement.

    >>> stmt = parse("SELECT * FROM OBJECTLOCATION WHERE tend = 'UC'")
    >>> stmt.table
    'OBJECTLOCATION'
    """
    parser = _Parser(text)
    return parser.finish(parser.statement())


def parse_script(text: str) -> list[Statement]:
    """Parse a semicolon-separated sequence of statements."""
    statements = []
    for chunk in _split_statements(text):
        if chunk.strip():
            statements.append(parse(chunk))
    return statements


def _split_statements(text: str) -> list[str]:
    """Split on top-level semicolons, respecting string literals."""
    chunks: list[str] = []
    current: list[str] = []
    quote: Optional[str] = None
    for char in text:
        if quote is not None:
            current.append(char)
            if char == quote:
                quote = None
            continue
        if char in ("'", '"'):
            quote = char
            current.append(char)
            continue
        if char == ";":
            chunks.append("".join(current))
            current = []
            continue
        current.append(char)
    chunks.append("".join(current))
    return chunks
