"""RFID data store substrate: temporal tables for the virtual world.

Holds location histories, containment relationships (with the paper's
``"UC"`` until-changed convention), filtered observations and alerts,
on top of the mini-SQL database in :mod:`repro.sql`.
"""

from .analytics import StoreAnalytics
from .render import render_summary, render_timeline
from .rfid_store import RfidStore
from .schema import ALIASES, INDEXES, SCHEMA, UC, create_schema

__all__ = [
    "ALIASES",
    "create_schema",
    "INDEXES",
    "render_summary",
    "render_timeline",
    "RfidStore",
    "SCHEMA",
    "StoreAnalytics",
    "UC",
]
