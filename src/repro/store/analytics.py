"""Analytics over the RFID store: history-oriented tracking queries.

The paper's first application class is "history-oriented object
tracking"; once the rules have transformed raw readings into temporal
location/containment periods, these queries answer the questions such a
deployment actually asks — trajectories, dwell times, throughput per
location, inventory levels over time and sales summaries.
"""

from __future__ import annotations

from typing import Optional

from .rfid_store import RfidStore
from .schema import UC


class StoreAnalytics:
    """Read-only analytical queries over one :class:`RfidStore`."""

    def __init__(self, store: RfidStore) -> None:
        self.store = store

    # -- trajectories ------------------------------------------------------

    def trajectory(self, obj: str) -> list[tuple[str, float, object]]:
        """The object's (location, tstart, tend) periods, chronological."""
        return self.store.location_history(obj)

    def dwell_times(self, obj: str, now: Optional[float] = None) -> dict[str, float]:
        """Total seconds the object spent per location.

        Open periods are counted up to ``now`` (and skipped if ``now`` is
        not given).
        """
        totals: dict[str, float] = {}
        for location, tstart, tend in self.store.location_history(obj):
            if tend == UC:
                if now is None:
                    continue
                tend = now
            totals[location] = totals.get(location, 0.0) + (tend - tstart)
        return totals

    def path_of(self, obj: str) -> list[str]:
        """The sequence of locations the object visited."""
        return [location for location, _s, _e in self.store.location_history(obj)]

    # -- per-location statistics -----------------------------------------------

    def objects_through(self, location: str) -> list[str]:
        """Every object that ever had a period at the location."""
        seen = {
            row["object_epc"]
            for row in self.store.database.table("OBJECTLOCATION").rows
            if row["loc_id"] == location
        }
        return sorted(seen)

    def average_dwell(self, location: str, now: Optional[float] = None) -> Optional[float]:
        """Mean seconds spent at the location across closed (or ``now``-
        clipped) periods; None when nothing ever dwelled there."""
        durations = []
        for row in self.store.database.table("OBJECTLOCATION").rows:
            if row["loc_id"] != location:
                continue
            tend = row["tend"]
            if tend == UC:
                if now is None:
                    continue
                tend = now
            durations.append(tend - row["tstart"])
        if not durations:
            return None
        return sum(durations) / len(durations)

    def inventory_at(self, location: str, at: float) -> int:
        """How many objects were at the location at one instant."""
        return len(self.store.objects_at(location, at=at))

    def inventory_timeline(
        self, location: str, times: list[float]
    ) -> list[tuple[float, int]]:
        """(time, inventory count) samples for charting."""
        return [(time, self.inventory_at(location, time)) for time in times]

    # -- containment statistics ---------------------------------------------------

    def packing_summary(self) -> dict[str, int]:
        """Items packed per container across all time."""
        counts: dict[str, int] = {}
        for row in self.store.database.table("OBJECTCONTAINMENT").rows:
            parent = row["parent_epc"]
            counts[parent] = counts.get(parent, 0) + 1
        return counts

    def open_containments(self) -> int:
        """Currently open containment periods."""
        rows = self.store.database.query(
            "SELECT COUNT(*) FROM OBJECTCONTAINMENT WHERE tend = 'UC'"
        )
        return rows[0][0]

    def container_history(self, obj: str) -> list[tuple[str, float, object]]:
        """Every container the object was ever in, chronological."""
        rows = [
            (row["parent_epc"], row["tstart"], row["tend"])
            for row in self.store.database.table("OBJECTCONTAINMENT").rows
            if row["object_epc"] == obj
        ]
        return sorted(rows, key=lambda item: item[1])

    # -- sales -------------------------------------------------------------------------

    def sales_by_reader(self) -> list[tuple[str, int]]:
        """(POS reader, sale count), busiest first."""
        rows = self.store.database.query(
            "SELECT pos_reader, COUNT(*) FROM SALE GROUP BY pos_reader"
        )
        return sorted(rows, key=lambda row: (-row[1], row[0]))

    def total_sales(self) -> int:
        return self.store.database.query("SELECT COUNT(*) FROM SALE")[0][0]
