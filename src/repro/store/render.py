"""Textual rendering of store state: timelines and summaries.

Terminal-friendly views for debugging and the ``inspect`` CLI command:
an object's location history as a scaled timeline bar, and a compact
whole-store summary.
"""

from __future__ import annotations

from typing import Optional

from .rfid_store import RfidStore
from .schema import UC


def render_timeline(
    store: RfidStore,
    obj: str,
    width: int = 60,
    now: Optional[float] = None,
) -> str:
    """The object's location history as a proportional text timeline.

    >>> store = RfidStore()
    >>> store.update_location("box", "factory", 0.0)
    >>> store.update_location("box", "store", 75.0)
    >>> print(render_timeline(store, "box", width=20, now=100.0))
    box
      [factory          0.0 ..    75.0] ===============
      [store           75.0 ..      UC] =====
    """
    history = store.location_history(obj)
    if not history:
        return f"{obj}\n  (no location history)"
    start = history[0][1]
    open_end = now if now is not None else max(
        (end for _l, _s, end in history if end != UC), default=start
    )
    end = max(
        open_end,
        max((e for _l, _s, e in history if e != UC), default=start),
    )
    span = max(end - start, 1e-9)
    lines = [obj]
    for location, tstart, tend in history:
        effective_end = open_end if tend == UC else tend
        bar_length = max(
            1, round((effective_end - tstart) / span * width)
        ) if effective_end > tstart else 1
        end_text = "UC" if tend == UC else f"{tend:.1f}"
        lines.append(
            f"  [{location:<12} {tstart:>7.1f} .. {end_text:>7}] "
            + "=" * bar_length
        )
    return "\n".join(lines)


def render_summary(store: RfidStore) -> str:
    """A compact whole-store summary: table sizes and recent alerts."""
    lines = ["store summary:"]
    for name, count in sorted(store.counts().items()):
        lines.append(f"  {name:<18} {count:>6} rows")
    if store.alerts:
        lines.append("recent alerts:")
        for rule_id, message, timestamp in store.alerts[-5:]:
            lines.append(f"  [{rule_id}] t={timestamp:g} {message}")
    return "\n".join(lines)
