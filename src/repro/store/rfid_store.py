"""The RFID data store: temporal state of the virtual world (paper §3.2).

:class:`RfidStore` wraps a mini-SQL :class:`~repro.sql.Database` with the
standard schema and a typed API over it.  It preserves the *history* of
object movement and relationships — closing a location or containment
period writes its ``tend`` rather than deleting the row — exactly the
temporal model of the paper's reference [2] (Wang & Liu, VLDB 2005).

Rule actions may use either interface: SQL templates execute against
``store.database``; condition callables and applications usually prefer
the typed methods (:meth:`location_of`, :meth:`contents_of`, ...).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..sql import Database
from .schema import UC, create_schema


def _covers(tstart: float, tend, at: float) -> bool:
    """Does the period [tstart, tend) — tend possibly ``UC`` — cover ``at``?"""
    return tstart <= at and (tend == UC or at < tend)


class RfidStore:
    """In-memory temporal store for RFID semantic data."""

    def __init__(self) -> None:
        self.database = Database()
        create_schema(self.database)
        #: alerts captured as (rule_id, message, timestamp) for quick access.
        self.alerts: list[tuple[str, str, float]] = []

    # -- reader deployment ----------------------------------------------------

    def place_reader(self, reader: str, location: str) -> None:
        """Record (or move) a reader's physical location."""
        table = self.database.table("READERLOCATION")
        for row in table.rows:
            if row["reader_epc"] == reader:
                row["loc_id"] = location  # not indexed; plain update suffices
                return
        table.insert([reader, location])

    def reader_location(self, reader: str) -> Optional[str]:
        rows = self.database.query(
            "SELECT loc_id FROM READERLOCATION WHERE reader_epc = r", {"r": reader}
        )
        return rows[0][0] if rows else None

    # -- observations -----------------------------------------------------------

    def record_observation(self, reader: str, obj: str, timestamp: float) -> None:
        self.database.table("OBSERVATION").insert([reader, obj, timestamp])

    def observations_of(self, obj: str) -> list[tuple[str, float]]:
        """(reader, timestamp) pairs for one object, in insertion order."""
        return [
            (reader, timestamp)
            for reader, timestamp in self.database.query(
                "SELECT reader_epc, timestamp FROM OBSERVATION "
                "WHERE object_epc = o",
                {"o": obj},
            )
        ]

    # -- locations (Rule 3 semantics) -------------------------------------------

    def update_location(self, obj: str, location: str, timestamp: float) -> None:
        """Close the object's current location and open the new one.

        Implements the paper's Rule 3: ``UPDATE ... SET tend = t WHERE
        object_epc = o AND tend = 'UC'`` followed by an INSERT of the new
        period ``[t, UC)``.  Re-observation at the current location is a
        no-op (the period simply continues).
        """
        current = self._current_location_row(obj)
        if current is not None:
            if current["loc_id"] == location:
                return
            current["tend"] = timestamp
        self.database.table("OBJECTLOCATION").insert([obj, location, timestamp, UC])

    def _current_location_row(self, obj: str):
        table = self.database.table("OBJECTLOCATION")
        where = None
        for row in table.candidate_rows(_EQ_OBJECT, {"o": obj}):
            if row["object_epc"] == obj and row["tend"] == UC:
                return row
        return None

    def location_of(self, obj: str, at: Optional[float] = None) -> Optional[str]:
        """The object's location now (``at=None``) or at a past instant."""
        table = self.database.table("OBJECTLOCATION")
        for row in table.candidate_rows(_EQ_OBJECT, {"o": obj}):
            if row["object_epc"] != obj:
                continue
            if at is None:
                if row["tend"] == UC:
                    return row["loc_id"]
            elif _covers(row["tstart"], row["tend"], at):
                return row["loc_id"]
        return None

    def location_history(self, obj: str) -> list[tuple[str, float, object]]:
        """(location, tstart, tend) periods for an object, chronological."""
        rows = self.database.query(
            "SELECT loc_id, tstart, tend FROM OBJECTLOCATION WHERE object_epc = o "
            "ORDER BY tstart",
            {"o": obj},
        )
        return list(rows)

    def objects_at(self, location: str, at: Optional[float] = None) -> list[str]:
        """Objects at a location now or at a past instant."""
        found = []
        for row in self.database.table("OBJECTLOCATION").rows:
            if row["loc_id"] != location:
                continue
            if at is None:
                if row["tend"] == UC:
                    found.append(row["object_epc"])
            elif _covers(row["tstart"], row["tend"], at):
                found.append(row["object_epc"])
        return sorted(set(found))

    # -- containment (Rule 4 semantics) -----------------------------------------

    def add_containment(
        self, children: Iterable[str], parent: str, timestamp: float
    ) -> None:
        """Open containment periods: children packed into parent at t."""
        table = self.database.table("OBJECTCONTAINMENT")
        for child in children:
            table.insert([child, parent, timestamp, UC])

    def end_containment(self, child: str, timestamp: float) -> bool:
        """Close the child's open containment period, if any."""
        table = self.database.table("OBJECTCONTAINMENT")
        for row in table.candidate_rows(_EQ_OBJECT, {"o": child}):
            if row["object_epc"] == child and row["tend"] == UC:
                row["tend"] = timestamp
                return True
        return False

    def unpack(self, parent: str, timestamp: float) -> int:
        """Close every open containment period under ``parent``."""
        closed = 0
        for row in self.database.table("OBJECTCONTAINMENT").rows:
            if row["parent_epc"] == parent and row["tend"] == UC:
                row["tend"] = timestamp
                closed += 1
        return closed

    def parent_of(self, obj: str, at: Optional[float] = None) -> Optional[str]:
        for row in self.database.table("OBJECTCONTAINMENT").rows:
            if row["object_epc"] != obj:
                continue
            if at is None:
                if row["tend"] == UC:
                    return row["parent_epc"]
            elif _covers(row["tstart"], row["tend"], at):
                return row["parent_epc"]
        return None

    def contents_of(self, parent: str, at: Optional[float] = None) -> list[str]:
        """Direct children of a container now or at a past instant."""
        found = []
        for row in self.database.table("OBJECTCONTAINMENT").rows:
            if row["parent_epc"] != parent:
                continue
            if at is None:
                if row["tend"] == UC:
                    found.append(row["object_epc"])
            elif _covers(row["tstart"], row["tend"], at):
                found.append(row["object_epc"])
        return sorted(set(found))

    def containment_tree(self, root: str, at: Optional[float] = None) -> dict:
        """Nested dict of the containment hierarchy below ``root``."""
        return {
            child: self.containment_tree(child, at) for child in self.contents_of(root, at)
        }

    # -- alerts -------------------------------------------------------------------

    def send_alert(self, rule_id: str, message: str, timestamp: float) -> None:
        self.alerts.append((rule_id, message, timestamp))
        self.database.table("ALERT").insert([rule_id, message, timestamp])

    # -- detections (paper Fig. 2: complex events feed the store) -----------------

    def record_detection(self, detection) -> None:
        """Persist a complex-event detection into the DETECTION table.

        ``primary_epc`` is the first leaf observation's object — enough
        to anchor history queries; the full constituent structure lives
        with the application if it needs it.
        """
        observations = list(detection.instance.observations())
        primary = observations[0].obj if observations else None
        self.database.table("DETECTION").insert(
            [
                detection.rule.rule_id,
                detection.instance.t_begin,
                detection.instance.t_end,
                detection.time,
                primary,
            ]
        )

    def detections_of(self, rule_id: str) -> list[tuple]:
        """(t_begin, t_end, detected_at, primary_epc) rows for one rule."""
        return self.database.query(
            "SELECT t_begin, t_end, detected_at, primary_epc FROM DETECTION "
            "WHERE rule_id = r ORDER BY detected_at",
            {"r": rule_id},
        )

    # -- persistence ------------------------------------------------------------------

    def save_json(self, path: str) -> None:
        """Write the whole store (all tables) to a JSON file."""
        import json

        with open(path, "w") as handle:
            json.dump(self.database.dump(), handle)

    @classmethod
    def load_json(cls, path: str) -> "RfidStore":
        """Rebuild a store — tables, indexes and the alert log — from disk."""
        import json

        from ..sql import Database

        with open(path) as handle:
            payload = json.load(handle)
        store = cls.__new__(cls)
        store.database = Database.load(payload)
        store.alerts = [
            (row["rule_id"], row["message"], row["timestamp"])
            for row in store.database.table("ALERT").rows
        ]
        return store

    # -- convenience ---------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Row counts per table (diagnostics)."""
        return {
            name: len(table)
            for name, table in self.database.tables.items()
            if name not in ("CONTAINMENT",)  # alias, not a second table
        }


# A tiny pre-parsed WHERE used for index probes of object_epc = o.
from ..sql import parse as _parse  # noqa: E402  (kept at bottom intentionally)

_EQ_OBJECT = _parse("SELECT * FROM OBSERVATION WHERE object_epc = o").where
