"""The RFID data store schema (paper §3.2 and reference [2]).

Tables mirror the paper exactly:

* ``OBSERVATION(reader_epc, object_epc, timestamp)`` — filtered raw
  readings kept for history-oriented tracking;
* ``OBJECTLOCATION(object_epc, loc_id, tstart, tend)`` — location
  history with the open end marked ``"UC"`` (until changed);
* ``OBJECTCONTAINMENT(object_epc, parent_epc, tstart, tend)`` —
  containment relationships over time, same ``"UC"`` convention;
* ``READERLOCATION(reader_epc, loc_id)`` — where each reader resides,
  used by the location-transformation rule to resolve "the reader's new
  location";
* ``ALERT(rule_id, message, timestamp)`` — real-time monitoring output.

``CONTAINMENT`` is registered as an alias of ``OBJECTCONTAINMENT``
because the paper's Rule 4 abbreviates the name in its BULK INSERT.
"""

from __future__ import annotations

from ..sql import Database

#: The paper's "until changed" marker for open-ended periods.
UC = "UC"

SCHEMA: dict[str, tuple[str, ...]] = {
    "OBSERVATION": ("reader_epc", "object_epc", "timestamp"),
    "OBJECTLOCATION": ("object_epc", "loc_id", "tstart", "tend"),
    "OBJECTCONTAINMENT": ("object_epc", "parent_epc", "tstart", "tend"),
    "READERLOCATION": ("reader_epc", "loc_id"),
    "ALERT": ("rule_id", "message", "timestamp"),
    "SALE": ("object_epc", "pos_reader", "timestamp"),
    # Detected complex events flowing back into the store (paper Fig. 2:
    # "Semantic Data / New Events" feed the RFID data store).
    "DETECTION": ("rule_id", "t_begin", "t_end", "detected_at", "primary_epc"),
}

INDEXES: tuple[tuple[str, str], ...] = (
    ("OBSERVATION", "object_epc"),
    ("OBJECTLOCATION", "object_epc"),
    ("OBJECTCONTAINMENT", "object_epc"),
    ("OBJECTCONTAINMENT", "parent_epc"),
    ("READERLOCATION", "reader_epc"),
)

ALIASES: dict[str, str] = {"CONTAINMENT": "OBJECTCONTAINMENT"}


def create_schema(database: Database) -> None:
    """Create the standard tables, indexes and aliases in ``database``."""
    for name, columns in SCHEMA.items():
        table = database.create_table(name, columns)
        for alias, target in ALIASES.items():
            if target == name:
                database.tables[alias] = table
    for table_name, column in INDEXES:
        database.table(table_name).create_index(column)
