"""Open-world workload generation over scenario packs.

Where :mod:`repro.simulator` replays one seeded trace with exact ground
truth, this package generates **unbounded** production-shaped streams
over any workload-capable scenario pack (see
:mod:`repro.scenarios`) — and keeps the ground truth exact anyway:

* :mod:`~repro.workload.zipf` — seeded Zipf tag popularity (YCSB-style
  O(1) rank sampling);
* :mod:`~repro.workload.shaping` — diurnal sinusoid + seeded burst
  storms over a thinned non-homogeneous Poisson arrival process;
* :mod:`~repro.workload.tags` — tag pools holding millions of distinct
  EPCs in O(active tags) memory;
* :mod:`~repro.workload.episodes` — the episode contract packs
  implement to power generation;
* :mod:`~repro.workload.generator` — episode scheduling with line
  backpressure, heap-merged into one time-ordered stream;
* :mod:`~repro.workload.smoke` — ``python -m repro smoke``, the
  standing production drill (exactly-once + oracle + cardinality
  through the durable serving stack).
"""

from .episodes import Episode, EpisodeSource, TagStreams
from .generator import GeneratedWorkload, WorkloadConfig, WorkloadStats
from .shaping import ArrivalShaper, ShapingConfig
from .smoke import SMOKE_PROFILES, SmokeProfile, run_smoke_drill
from .tags import TagUniverse
from .zipf import ZipfSampler, zeta

__all__ = [
    "ArrivalShaper",
    "Episode",
    "EpisodeSource",
    "GeneratedWorkload",
    "SMOKE_PROFILES",
    "ShapingConfig",
    "SmokeProfile",
    "TagStreams",
    "TagUniverse",
    "WorkloadConfig",
    "WorkloadStats",
    "ZipfSampler",
    "run_smoke_drill",
    "zeta",
]
