"""The episode contract between scenario packs and the generator.

The open-world generator does not replay one canned trace — it
schedules an unbounded stream of short, self-contained **episodes**
(one checkout sale, one packed case, one return) whose arrival times
follow the diurnal/burst process and whose tag identities come from
the shared tag pools.  A pack that wants to power generated workloads
returns an :class:`EpisodeSource` from
:meth:`~repro.scenarios.pack.ScenarioPack.episode_source`; packs whose
ground truth cannot be composed episode-by-episode simply return
``None`` and stay replay-only.

The contract is deliberately small:

* ``rules()`` / ``placements()`` describe the deployment once, for all
  lines (stations) the source spans;
* ``episode(line, start, rng, tags)`` produces one episode at ``start``
  on ``line``: its time-ordered observations, the per-rule detection
  counts the ground truth promises, and ``hold_until`` — the stream
  time until which that line is busy (the generator never overlaps two
  episodes on one line, which is what keeps chain rules' oracles
  exact under arbitrary arrival rates);
* ``program`` optionally renders the same rules as rule-language
  source, which is what lets the smoke drill ship the scenario across
  process boundaries to a :class:`~repro.serve.CepRouter` cluster.

``tags`` is the generator's :class:`TagStreams` view: ``fresh()`` mints
a never-seen item EPC (unique by construction — these are what push
distinct-EPC cardinality into the millions), ``popular()`` draws a
Zipf-ranked EPC from the configured universe, and ``fresh_case()``
mints logistic-unit tags for containment episodes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence

from ..core.instances import Observation

__all__ = ["Episode", "EpisodeSource", "TagStreams"]


class TagStreams(Protocol):
    """What an episode may draw tags from (implemented by the generator)."""

    def fresh(self) -> str:
        """A brand-new item EPC, never returned before."""
        ...

    def fresh_case(self) -> str:
        """A brand-new logistic-unit (SSCC) EPC."""
        ...

    def popular(self) -> str:
        """A Zipf-distributed draw from the popular-tag universe."""
        ...


@dataclass
class Episode:
    """One scheduled scenario occurrence.

    ``observations`` must be time-ordered and start no earlier than the
    ``start`` the source was called with; ``expected`` maps rule ids to
    the detections this episode adds to the oracle.
    """

    observations: list[Observation]
    expected: dict[str, int] = field(default_factory=dict)
    #: Stream time until which this episode's line stays busy.
    hold_until: float = 0.0


class EpisodeSource:
    """Base class for pack episode sources.

    Subclasses set :attr:`lines` (how many independent stations the
    source spans) and implement :meth:`rules` and :meth:`episode`.
    """

    #: Number of independent stations episodes are scheduled onto.
    lines: int = 1
    #: Rule-language rendering of :meth:`rules`, when the scenario can
    #: cross a process boundary (cluster smoke); ``None`` otherwise.
    program: Optional[str] = None

    def rules(self) -> list:
        raise NotImplementedError

    def placements(self) -> Sequence[tuple[str, str]]:
        """(reader, location) pairs for the store, default none."""
        return ()

    def episode(
        self,
        line: int,
        start: float,
        rng: random.Random,
        tags: TagStreams,
    ) -> Episode:
        raise NotImplementedError
