"""The open-world workload generator: unbounded streams over any pack.

Layers, bottom to top:

* a scenario pack's :class:`~repro.workload.episodes.EpisodeSource`
  supplies self-contained episodes with per-rule ground truth;
* :class:`~repro.workload.tags.TagUniverse` supplies tag identity —
  Zipf-skewed popular tags plus fresh mints that push distinct-EPC
  cardinality into the millions;
* :class:`~repro.workload.shaping.ArrivalShaper` supplies arrival
  times (diurnal sinusoid, seeded burst storms);
* this module schedules episodes onto lines and merges their
  observations into one globally time-ordered stream.

Everything is **streamed**: the generator never materializes the
workload.  Scheduling applies line backpressure (an episode cannot
start while its line is busy, and the arrival clock never runs ahead
of the start it produced), so the pending-observation heap holds only
in-flight episodes — O(lines), however many billion events flow
through.  Exact expected detection counts accumulate as episodes are
scheduled, which is what the smoke drill audits delivery against.

An optional :class:`~repro.resilience.chaos.ChaosConfig` wraps the
output in the same duplicate/disorder faults the chaos drills use;
counts of applied faults land in :attr:`GeneratedWorkload.chaos_counts`.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..core.instances import Observation
from ..resilience.chaos import ChaosConfig, ChaosInjector
from .episodes import EpisodeSource
from .shaping import ArrivalShaper, ShapingConfig
from .tags import TagUniverse

__all__ = ["GeneratedWorkload", "WorkloadConfig", "WorkloadStats"]


@dataclass
class WorkloadConfig:
    """Knobs for one generated workload."""

    pack: str = "returns-fraud"
    seed: int = 7
    #: stop scheduling new episodes once this many observations exist
    target_observations: int = 10_000
    lines: int = 4
    #: distinct-EPC cardinality of the popular-tag universe
    cardinality: int = 100_000
    #: Zipf skew of popular draws, in [0, 1)
    theta: float = 0.9
    #: fraction of eligible tag draws that hit the popular universe
    popular_fraction: float = 0.35
    shaping: ShapingConfig = field(default_factory=ShapingConfig)
    #: optional duplicate/disorder fault injection on the output
    chaos: Optional[ChaosConfig] = None

    def __post_init__(self) -> None:
        if self.target_observations < 1:
            raise ValueError("target_observations must be >= 1")
        if self.lines < 1:
            raise ValueError("lines must be >= 1")


@dataclass
class WorkloadStats:
    episodes: int = 0
    observations: int = 0
    #: rule id -> detections the ground truth promises
    expected: dict[str, int] = field(default_factory=dict)
    #: episodes whose start was pushed back by a busy line
    deferred: int = 0
    #: peak size of the pending-observation heap (memory proxy)
    max_in_flight: int = 0
    end_time: float = 0.0

    def merge_expected(self, expected: dict[str, int]) -> None:
        for rule_id, count in expected.items():
            if count:
                self.expected[rule_id] = self.expected.get(rule_id, 0) + count


class GeneratedWorkload:
    """One seeded open-world workload: iterate it to stream observations.

    The instance is single-use (it is a generator with accounting
    attached).  ``stats`` is meaningful once iteration completes;
    ``tags.distinct_epcs()`` is the exact distinct-EPC count.
    """

    def __init__(self, source: EpisodeSource, config: WorkloadConfig) -> None:
        if source.lines != config.lines:
            raise ValueError(
                f"episode source spans {source.lines} lines but the config "
                f"asked for {config.lines}"
            )
        self.source = source
        self.config = config
        self.rng = random.Random(config.seed)
        self.tags = TagUniverse(
            cardinality=config.cardinality,
            theta=config.theta,
            rng=random.Random(config.seed + 1),
        )
        self.shaper = ArrivalShaper(
            config.shaping, rng=random.Random(config.seed + 2)
        )
        self.stats = WorkloadStats()
        self.injector = (
            ChaosInjector(config.chaos) if config.chaos is not None else None
        )
        self._consumed = False

    @property
    def chaos_counts(self) -> Optional[dict]:
        return self.injector.counts if self.injector is not None else None

    def rules(self) -> list:
        return self.source.rules()

    def __iter__(self) -> Iterator[Observation]:
        if self._consumed:
            raise RuntimeError(
                "GeneratedWorkload is single-use; build a new one to replay"
            )
        self._consumed = True
        if self.injector is not None:
            return self.injector.inject(self._generate())
        return self._generate()

    def _generate(self) -> Iterator[Observation]:
        config, stats, rng = self.config, self.stats, self.rng
        free_at = [0.0] * config.lines
        #: (timestamp, tie-break, observation) — the in-flight frontier
        pending: list[tuple[float, int, Observation]] = []
        tie = 0
        clock = 0.0
        scheduled_observations = 0

        while scheduled_observations < config.target_observations:
            arrival = self.shaper.next_arrival(clock)
            # Backpressure: the least-loaded line takes the episode; if
            # even that line is busy, the start slips and the arrival
            # clock slips with it, so unstarted episodes never pile up.
            line = min(range(config.lines), key=free_at.__getitem__)
            start = max(arrival, free_at[line])
            if start > arrival:
                stats.deferred += 1
            # Every future episode starts strictly after `start`, so
            # everything pending at or before it is safe to emit.
            while pending and pending[0][0] <= start:
                yield heapq.heappop(pending)[2]
            episode = self.source.episode(line, start, rng, self.tags)
            free_at[line] = max(episode.hold_until, start)
            for observation in episode.observations:
                heapq.heappush(
                    pending, (observation.timestamp, tie, observation)
                )
                tie += 1
                if observation.timestamp > stats.end_time:
                    stats.end_time = observation.timestamp
            scheduled_observations += len(episode.observations)
            stats.episodes += 1
            stats.observations += len(episode.observations)
            stats.merge_expected(episode.expected)
            stats.max_in_flight = max(stats.max_in_flight, len(pending))
            clock = start

        while pending:
            yield heapq.heappop(pending)[2]
