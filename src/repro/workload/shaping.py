"""Arrival-time shaping: diurnal rhythm plus seeded burst storms.

Episode arrivals follow a non-homogeneous Poisson process whose rate
function composes two real-world effects:

* a **diurnal sinusoid** — stores and docks are busy at noon and quiet
  at night: ``base * (1 + amplitude * sin(2*pi*t/period + phase))``;
* **bursts** — promotions, truck arrivals, shift changes: seeded
  intervals during which the rate is multiplied by ``burst_factor``.

Sampling uses Lewis-Shedler thinning: draw exponential gaps at the
peak rate, accept each candidate with ``rate(t)/peak``.  The burst
schedule is generated lazily ahead of the simulation clock, so the
shaper is O(1) memory no matter how long the stream runs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["ArrivalShaper", "ShapingConfig"]


@dataclass(frozen=True)
class ShapingConfig:
    """Rate-function knobs; rates are episodes per second."""

    base_rate: float = 50.0
    #: diurnal modulation depth in [0, 1); 0 disables the sinusoid
    diurnal_amplitude: float = 0.4
    #: seconds per diurnal cycle (a compressed "day" by default)
    diurnal_period: float = 3600.0
    diurnal_phase: float = 0.0
    #: expected seconds between burst starts; 0 disables bursts
    burst_every: float = 600.0
    burst_duration: tuple[float, float] = (20.0, 60.0)
    #: rate multiplier while a burst is active
    burst_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        if self.burst_every < 0:
            raise ValueError("burst_every must be >= 0")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if self.burst_duration[0] <= 0 or self.burst_duration[0] > self.burst_duration[1]:
            raise ValueError("burst_duration bounds must satisfy 0 < low <= high")


class ArrivalShaper:
    """Seeded arrival-time generator over the shaped rate function."""

    def __init__(
        self,
        config: Optional[ShapingConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config if config is not None else ShapingConfig()
        self.rng = rng if rng is not None else random.Random()
        self._peak = (
            self.config.base_rate
            * (1.0 + self.config.diurnal_amplitude)
            * (self.config.burst_factor if self.config.burst_every else 1.0)
        )
        # Lazy burst schedule: the currently active/next burst interval.
        self._burst_start = math.inf
        self._burst_end = -math.inf
        if self.config.burst_every:
            self._burst_start = self.rng.expovariate(
                1.0 / self.config.burst_every
            )
            self._burst_end = self._burst_start + self.rng.uniform(
                *self.config.burst_duration
            )

    def _advance_bursts(self, time: float) -> None:
        while self.config.burst_every and time > self._burst_end:
            self._burst_start = self._burst_end + self.rng.expovariate(
                1.0 / self.config.burst_every
            )
            self._burst_end = self._burst_start + self.rng.uniform(
                *self.config.burst_duration
            )

    def in_burst(self, time: float) -> bool:
        self._advance_bursts(time)
        return self._burst_start <= time <= self._burst_end

    def rate(self, time: float) -> float:
        """Instantaneous episode rate at ``time``."""
        config = self.config
        diurnal = 1.0 + config.diurnal_amplitude * math.sin(
            2.0 * math.pi * time / config.diurnal_period + config.diurnal_phase
        )
        rate = config.base_rate * diurnal
        if self.in_burst(time):
            rate *= config.burst_factor
        return rate

    def next_arrival(self, after: float) -> float:
        """The next arrival strictly after ``after`` (thinning)."""
        time = after
        while True:
            time += self.rng.expovariate(self._peak)
            if self.rng.random() * self._peak <= self.rate(time):
                return time
