"""``python -m repro smoke`` — the standing production smoke drill.

One command answers "would production hold?": generate an open-world
workload (Zipf tag skew, diurnal/burst arrivals, distinct-EPC
cardinality up to millions), stream it through a **durable**
:class:`~repro.serve.CepServer` over the real wire protocol — or a
multi-process :class:`~repro.serve.cluster.Cluster` — and audit the
other end:

* **exactly-once delivery** — sink ``(seq, ordinal)`` keys strictly
  increase (checked in O(1) memory; at millions of events a seen-set
  would dwarf the engine);
* **oracle consistency** — per-rule delivered detection counts equal
  what the generator's ground truth promised (clean runs; fault-
  injected runs skip this, duplicates legitimately re-detect);
* **cardinality** — the stream really carried the distinct-EPC load
  the profile claims;
* **frontier agreement** — client, server and durable WAL all agree
  every submitted observation was applied.

Profiles: ``ci`` (seconds, CI quick profile), ``quick`` (a minute),
``full`` (the headline: over a million distinct EPCs through the full
stack).  The report is JSON-able and written to ``--report`` for CI
artifact upload.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

from ..resilience.chaos import ChaosConfig
from .generator import GeneratedWorkload, WorkloadConfig
from .shaping import ShapingConfig

__all__ = ["SMOKE_PROFILES", "SmokeProfile", "run_smoke_drill"]


@dataclass(frozen=True)
class SmokeProfile:
    """One smoke-drill scale: generator knobs plus the audit floor."""

    name: str
    target_observations: int
    cardinality: int
    lines: int
    theta: float = 0.9
    popular_fraction: float = 0.35
    #: the drill fails unless at least this many distinct EPCs flowed
    distinct_floor: int = 0
    batch_size: int = 256
    timeout: float = 300.0


SMOKE_PROFILES: dict[str, SmokeProfile] = {
    "ci": SmokeProfile(
        name="ci",
        target_observations=3_000,
        cardinality=10_000,
        lines=4,
        distinct_floor=1_500,
        batch_size=128,
        timeout=120.0,
    ),
    "quick": SmokeProfile(
        name="quick",
        target_observations=40_000,
        cardinality=100_000,
        lines=4,
        distinct_floor=20_000,
        timeout=600.0,
    ),
    "full": SmokeProfile(
        name="full",
        target_observations=1_500_000,
        cardinality=2_000_000,
        lines=8,
        popular_fraction=0.2,
        distinct_floor=1_000_000,
        batch_size=512,
        timeout=5_400.0,
    ),
}


def build_workload(
    pack_name: str,
    profile: SmokeProfile,
    seed: int,
    chaos: Optional[ChaosConfig] = None,
    shaping: Optional[ShapingConfig] = None,
) -> GeneratedWorkload:
    """A generated workload for ``pack_name`` at ``profile`` scale."""
    from ..scenarios import get_pack, iter_packs

    pack = get_pack(pack_name)
    source = pack.episode_source(
        lines=profile.lines, popular_fraction=profile.popular_fraction
    )
    if source is None:
        capable = [
            p.name for p in iter_packs() if p.episode_source() is not None
        ]
        raise ValueError(
            f"scenario pack {pack_name!r} is replay-only; workload-capable "
            f"packs: {', '.join(capable)}"
        )
    return GeneratedWorkload(
        source,
        WorkloadConfig(
            pack=pack_name,
            seed=seed,
            target_observations=profile.target_observations,
            lines=profile.lines,
            cardinality=profile.cardinality,
            theta=profile.theta,
            popular_fraction=profile.popular_fraction,
            shaping=shaping if shaping is not None else ShapingConfig(),
            chaos=chaos,
        ),
    )


class _SinkAudit:
    """O(1)-memory exactly-once audit: keys must strictly increase."""

    def __init__(self) -> None:
        self.count = 0
        self.per_rule: dict[str, int] = {}
        self.monotonic = True
        self._last = (-1, -1)

    def record(self, rule_id: str, seq: int, ordinal: int) -> None:
        key = (seq, ordinal)
        if key <= self._last:
            self.monotonic = False
        self._last = key
        self.count += 1
        self.per_rule[rule_id] = self.per_rule.get(rule_id, 0) + 1


async def _serve_drill(
    workload: GeneratedWorkload,
    profile: SmokeProfile,
    seed: int,
    directory: str,
) -> tuple[_SinkAudit, dict]:
    """Stream through DurableEngine + CepServer + AsyncClient over TCP."""
    from ..core.detector import Engine, FunctionRegistry
    from ..resilience.durability import DurableEngine
    from ..serve import AsyncClient, CepServer, ServeConfig, tcp_connector
    from ..store import RfidStore

    placements = tuple(workload.source.placements())

    def factory() -> Engine:
        store = RfidStore()
        for reader, location in placements:
            store.place_reader(reader, location)
        # Fresh Rule objects per engine: rule actions close over nothing,
        # but recovery rebuilds engines and must never share rule state.
        # Under disorder chaos, late readings are DROPped (never silently
        # accepted — the oracle-equality check is waived under chaos and
        # the delivery audits hold either way).
        return Engine(
            workload.rules(),
            store=store,
            functions=FunctionRegistry(),
            context="chronicle",
            out_of_order=(
                "drop" if workload.config.chaos is not None else "raise"
            ),
        )

    audit = _SinkAudit()

    def sink(detection, seq, ordinal):
        audit.record(detection.rule.rule_id, seq, ordinal)

    durable = DurableEngine(factory, directory, checkpoint_every=0, sink=sink)
    server = CepServer(durable, config=ServeConfig())
    client = None
    try:
        port = await server.serve_tcp("127.0.0.1", 0)
        client = AsyncClient(
            tcp_connector("127.0.0.1", port),
            client_id=f"smoke-{profile.name}-{seed}",
            batch_size=profile.batch_size,
            codec="binary",
        )
        await client.connect()
        submitted = 0
        for observation in workload:
            await client.submit(observation)
            submitted += 1
        await client.flush()
        frontiers = {
            "submitted": submitted,
            "client": client.last_acked,
            "server": server.client_frontier(client.client_id),
            "durable": durable.client_frontiers.get(client.client_id, -1),
        }
        return audit, frontiers
    finally:
        if client is not None:
            try:
                await asyncio.wait_for(client.close(), 5.0)
            except Exception:
                pass
        try:
            await server.close()
        except Exception:
            pass
        durable.close()


async def _cluster_drill(
    workload: GeneratedWorkload,
    profile: SmokeProfile,
    seed: int,
    directory: str,
    workers: int,
) -> tuple[_SinkAudit, dict]:
    """Stream through a multi-process shard cluster instead."""
    from ..serve import AsyncClient, tcp_connector
    from ..serve.cluster import SINK_FILENAME, Cluster

    program = workload.source.program
    if program is None:
        raise ValueError(
            f"pack {workload.config.pack!r} has no rule-language program; "
            "cluster smoke needs textual rules (try --pack packing)"
        )
    cluster = Cluster(
        program, workers=workers, directory=directory, sink=True
    )
    client = None
    try:
        port = await cluster.start()
        client = AsyncClient(
            tcp_connector("127.0.0.1", port),
            client_id=f"smoke-{profile.name}-{seed}",
            batch_size=profile.batch_size,
        )
        await client.connect()
        submitted = 0
        for observation in workload:
            await client.submit(observation)
            submitted += 1
        await client.flush(timeout=profile.timeout)
        frontiers = {
            "submitted": submitted,
            "client": client.last_acked,
            "server": client.last_acked,
            "durable": client.last_acked,
        }
        await asyncio.wait_for(client.close(), 5.0)
        client = None
    finally:
        if client is not None:
            try:
                await asyncio.wait_for(client.close(), 5.0)
            except Exception:
                pass
        await cluster.stop()

    # Audit the worker sinks on disk: per-shard exactly-once keys.
    audit = _SinkAudit()
    seen_per_shard: dict[str, tuple[int, int]] = {}
    for shard, node in sorted(cluster.plan.assignment.items()):
        sink_path = os.path.join(directory, node, shard, SINK_FILENAME)
        if not os.path.exists(sink_path):
            continue
        with open(sink_path, encoding="utf-8") as handle:
            for line in handle:
                payload = json.loads(line)
                key = (payload["seq"], payload["ordinal"])
                if key <= seen_per_shard.get(shard, (-1, -1)):
                    audit.monotonic = False
                seen_per_shard[shard] = key
                audit.count += 1
                rule_id = payload["rule"]
                audit.per_rule[rule_id] = audit.per_rule.get(rule_id, 0) + 1
    return audit, frontiers


def run_smoke_drill(
    profile: str = "ci",
    pack: str = "returns-fraud",
    seed: int = 7,
    *,
    cluster: bool = False,
    workers: int = 2,
    directory: Optional[str] = None,
    chaos: Optional[ChaosConfig] = None,
    shaping: Optional[ShapingConfig] = None,
    report_path: Optional[str] = None,
    timeout: Optional[float] = None,
) -> dict:
    """Run the smoke drill; returns (and optionally writes) its report.

    ``report["ok"]`` is the verdict; ``report["checks"]`` itemizes the
    invariants.  The workload is a pure function of ``(pack, profile,
    seed)`` — echo the seed with every failure.
    """
    try:
        prof = SMOKE_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown smoke profile {profile!r} "
            f"(choose from: {', '.join(SMOKE_PROFILES)})"
        ) from None
    if cluster and chaos is not None:
        raise ValueError(
            "cluster smoke does not support chaos perturbation (shard "
            "workers enforce time order); drop --cluster or the chaos knobs"
        )
    workload = build_workload(pack, prof, seed, chaos=chaos, shaping=shaping)
    if directory is None:
        directory = tempfile.mkdtemp(prefix=f"smoke-{profile}-")

    started = time.perf_counter()
    if cluster:
        audit, frontiers = asyncio.run(
            asyncio.wait_for(
                _cluster_drill(workload, prof, seed, directory, workers),
                timeout if timeout is not None else prof.timeout,
            )
        )
    else:
        audit, frontiers = asyncio.run(
            asyncio.wait_for(
                _serve_drill(workload, prof, seed, directory),
                timeout if timeout is not None else prof.timeout,
            )
        )
    elapsed = time.perf_counter() - started

    stats = workload.stats
    distinct = workload.tags.distinct_epcs()
    clean = chaos is None

    checks: list[tuple[str, bool, str]] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append((name, bool(ok), detail))

    check(
        "sink_exactly_once",
        audit.monotonic,
        f"{audit.count} deliveries, keys strictly increasing",
    )
    if clean:
        expected = {
            rule_id: count
            for rule_id, count in sorted(stats.expected.items())
        }
        check(
            "detections_match_oracle",
            audit.per_rule == expected,
            f"delivered={audit.per_rule} expected={expected}",
        )
    check(
        "distinct_epcs_floor",
        distinct >= prof.distinct_floor,
        f"{distinct} distinct EPCs, floor {prof.distinct_floor}",
    )
    # The end-of-stream FLUSH takes its own seq, so the agreed frontier
    # must cover every submit (>= submitted - 1) but may sit past it.
    check(
        "frontier_agreement",
        frontiers["client"] == frontiers["server"] == frontiers["durable"]
        and frontiers["client"] >= frontiers["submitted"] - 1,
        str(frontiers),
    )

    report = {
        "ok": all(ok for _, ok, _ in checks),
        "profile": prof.name,
        "pack": pack,
        "seed": seed,
        "transport": "cluster" if cluster else "tcp",
        "workers": workers if cluster else 1,
        "episodes": stats.episodes,
        "observations": frontiers["submitted"],
        "distinct_epcs": distinct,
        "deferred_episodes": stats.deferred,
        "max_in_flight": stats.max_in_flight,
        "stream_seconds": round(stats.end_time, 3),
        "elapsed_seconds": round(elapsed, 3),
        "events_per_second": (
            round(frontiers["submitted"] / elapsed, 1) if elapsed > 0 else 0.0
        ),
        "expected": dict(sorted(stats.expected.items())),
        "delivered": dict(sorted(audit.per_rule.items())),
        "chaos": workload.chaos_counts,
        "checks": {
            name: {"ok": ok, "detail": detail} for name, ok, detail in checks
        },
        "directory": directory,
    }
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        report["report_path"] = report_path
    return report
