"""Tag pools: millions of distinct EPCs in O(active tags) memory.

The generator needs two kinds of tag identity:

* **fresh** tags — never seen before, minted on demand.  These push
  distinct-EPC cardinality arbitrarily high; memory cost is one
  integer counter per pool, not one string per tag.
* **popular** tags — Zipf-ranked draws from a configurable universe of
  up to millions of EPCs.  The universe is *virtual*: rank ``i`` maps
  to a deterministic SGTIN-96 serial, encoded on demand.  Only the
  hottest ranks (which Zipf hits constantly) are cached; cold ranks
  are re-encoded per draw, so a 10-million-tag universe costs a few
  thousand cached strings, not ten million.

Distinct-EPC accounting is exact and cheap: fresh pools count mints,
and popular draws set bits in a ``cardinality/8``-byte bitmap whose
popcount is the number of distinct universe tags actually touched.
"""

from __future__ import annotations

import random
from typing import Optional

from ..epc import Sgtin96, Sscc96
from .zipf import ZipfSampler

__all__ = ["TagUniverse"]

#: Item references partitioning the SGTIN serial spaces so fresh and
#: popular tags can never collide.
_POPULAR_REF = 500001
_FRESH_REF = 900001

#: Ranks below this are cached permanently (Zipf hits them constantly).
_HOT_CACHE_RANKS = 4096


class TagUniverse:
    """Implements :class:`repro.workload.episodes.TagStreams`.

    >>> tags = TagUniverse(cardinality=1000, theta=0.9,
    ...                    rng=random.Random(5))
    >>> tags.fresh() != tags.fresh()
    True
    >>> _ = tags.popular()
    >>> tags.distinct_epcs() >= 3
    True
    """

    def __init__(
        self,
        cardinality: int = 100_000,
        theta: float = 0.99,
        rng: Optional[random.Random] = None,
        company_prefix: int = 614141,
        company_digits: int = 7,
    ) -> None:
        if cardinality < 1:
            raise ValueError("cardinality must be >= 1")
        self.cardinality = cardinality
        self.company_prefix = company_prefix
        self.company_digits = company_digits
        self._sampler = ZipfSampler(
            cardinality,
            theta=theta,
            rng=rng if rng is not None else random.Random(),
        )
        self._fresh_serial = 0
        self._case_serial = 0
        self._seen = bytearray((cardinality + 7) // 8)
        self._seen_count = 0
        self._hot_cache: dict[int, str] = {}
        self.popular_draws = 0

    # -- TagStreams ---------------------------------------------------------

    def fresh(self) -> str:
        self._fresh_serial += 1
        return Sgtin96(
            1,
            self.company_prefix,
            self.company_digits,
            _FRESH_REF,
            self._fresh_serial,
        ).to_hex()

    def fresh_case(self) -> str:
        self._case_serial += 1
        return Sscc96(
            2, self.company_prefix, self.company_digits, self._case_serial
        ).to_hex()

    def popular(self) -> str:
        rank = self._sampler.sample()
        self.popular_draws += 1
        byte, bit = rank >> 3, 1 << (rank & 7)
        if not self._seen[byte] & bit:
            self._seen[byte] |= bit
            self._seen_count += 1
        return self.epc_for_rank(rank)

    # -- accounting ---------------------------------------------------------

    def epc_for_rank(self, rank: int) -> str:
        """Deterministic EPC of universe rank ``rank`` (0-based)."""
        if not 0 <= rank < self.cardinality:
            raise ValueError(f"rank {rank} out of [0, {self.cardinality})")
        cached = self._hot_cache.get(rank)
        if cached is not None:
            return cached
        epc = Sgtin96(
            1,
            self.company_prefix,
            self.company_digits,
            _POPULAR_REF,
            rank + 1,
        ).to_hex()
        if rank < _HOT_CACHE_RANKS:
            self._hot_cache[rank] = epc
        return epc

    def fresh_count(self) -> int:
        """Distinct fresh tags minted so far (items plus cases)."""
        return self._fresh_serial + self._case_serial

    def popular_distinct(self) -> int:
        """Distinct universe tags actually drawn so far."""
        return self._seen_count

    def distinct_epcs(self) -> int:
        """Total distinct EPCs handed out (exact, by construction)."""
        return self.fresh_count() + self._seen_count
