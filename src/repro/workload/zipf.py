"""Seeded Zipf rank sampling for tag popularity.

Real RFID traffic is heavily skewed: a handful of SKUs dominate reads
while a long tail of EPCs appears once.  :class:`ZipfSampler` draws
ranks ``0..n-1`` with ``P(rank i) ∝ 1/(i+1)^theta`` using the Gray et
al. rejection-free transform (the YCSB generator): two table lookups
and one ``rng.random()`` per draw, O(1) after an O(n) harmonic-sum
precomputation that is cached per ``(n, theta)`` — building a
10-million-key sampler twice costs the sum once.

``theta == 0`` degenerates to uniform; ``theta`` must stay below 1
(the transform's closed form diverges at 1).
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["ZipfSampler", "zeta"]

#: (n, theta) -> harmonic sum, shared across sampler instances.
_ZETA_CACHE: dict[tuple[int, float], float] = {}
_ZETA_CACHE_LIMIT = 64


def zeta(n: int, theta: float) -> float:
    """The generalized harmonic number ``sum_{i=1..n} 1/i**theta``."""
    key = (n, theta)
    cached = _ZETA_CACHE.get(key)
    if cached is not None:
        return cached
    total = 0.0
    for i in range(1, n + 1):
        total += 1.0 / i**theta
    if len(_ZETA_CACHE) >= _ZETA_CACHE_LIMIT:
        _ZETA_CACHE.clear()
    _ZETA_CACHE[key] = total
    return total


class ZipfSampler:
    """Draw Zipf-distributed ranks in ``[0, n)``; smaller rank = hotter.

    >>> sampler = ZipfSampler(1000, theta=0.9, rng=random.Random(1))
    >>> 0 <= sampler.sample() < 1000
    True
    """

    def __init__(
        self,
        n: int,
        theta: float = 0.99,
        rng: Optional[random.Random] = None,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one rank")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        self.n = n
        self.theta = theta
        self.rng = rng if rng is not None else random.Random()
        if theta == 0.0:
            return  # uniform fast path, no tables needed
        self._zetan = zeta(n, theta)
        self._alpha = 1.0 / (1.0 - theta)
        zeta2 = zeta(2, theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
            1.0 - zeta2 / self._zetan
        )
        self._cut1 = 1.0 / self._zetan
        self._cut2 = (1.0 + 0.5**theta) / self._zetan

    def sample(self) -> int:
        u = self.rng.random()
        if self.theta == 0.0:
            return int(u * self.n)
        if u < self._cut1:
            return 0
        if u < self._cut2:
            return 1
        rank = int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)
        return rank if rank < self.n else self.n - 1

    def probability(self, rank: int) -> float:
        """Exact P(rank); useful for tests and reports."""
        if not 0 <= rank < self.n:
            raise ValueError(f"rank {rank} out of [0, {self.n})")
        if self.theta == 0.0:
            return 1.0 / self.n
        return 1.0 / ((rank + 1) ** self.theta * self._zetan)
