"""Tests for the store analytics module."""

import pytest

from repro.store import RfidStore, StoreAnalytics


@pytest.fixture
def populated():
    store = RfidStore()
    # box1: factory 0-10, truck 10-30, store 30-...
    store.update_location("box1", "factory", 0.0)
    store.update_location("box1", "truck", 10.0)
    store.update_location("box1", "store", 30.0)
    # box2: factory 5-25, truck 25-...
    store.update_location("box2", "factory", 5.0)
    store.update_location("box2", "truck", 25.0)
    # containment: items into case, case unpacked later
    store.add_containment(["i1", "i2"], "case", 2.0)
    store.end_containment("i1", 40.0)
    # sales
    store.database.table("SALE").insert(["i1", "pos1", 41.0])
    store.database.table("SALE").insert(["i9", "pos2", 42.0])
    store.database.table("SALE").insert(["i8", "pos2", 43.0])
    return store, StoreAnalytics(store)


class TestTrajectories:
    def test_path_of(self, populated):
        _store, analytics = populated
        assert analytics.path_of("box1") == ["factory", "truck", "store"]

    def test_dwell_times_closed_periods(self, populated):
        _store, analytics = populated
        dwell = analytics.dwell_times("box1")
        assert dwell == {"factory": 10.0, "truck": 20.0}

    def test_dwell_times_with_now(self, populated):
        _store, analytics = populated
        dwell = analytics.dwell_times("box1", now=50.0)
        assert dwell["store"] == 20.0

    def test_unknown_object(self, populated):
        _store, analytics = populated
        assert analytics.path_of("ghost") == []
        assert analytics.dwell_times("ghost") == {}


class TestLocationStats:
    def test_objects_through(self, populated):
        _store, analytics = populated
        assert analytics.objects_through("factory") == ["box1", "box2"]
        assert analytics.objects_through("store") == ["box1"]

    def test_average_dwell(self, populated):
        _store, analytics = populated
        assert analytics.average_dwell("factory") == pytest.approx(15.0)
        assert analytics.average_dwell("nowhere") is None

    def test_average_dwell_clips_open_periods(self, populated):
        _store, analytics = populated
        assert analytics.average_dwell("store", now=40.0) == pytest.approx(10.0)

    def test_inventory_timeline(self, populated):
        _store, analytics = populated
        timeline = analytics.inventory_timeline("factory", [1.0, 7.0, 20.0])
        assert timeline == [(1.0, 1), (7.0, 2), (20.0, 1)]


class TestContainmentStats:
    def test_packing_summary(self, populated):
        _store, analytics = populated
        assert analytics.packing_summary() == {"case": 2}

    def test_open_containments(self, populated):
        _store, analytics = populated
        assert analytics.open_containments() == 1

    def test_container_history(self, populated):
        _store, analytics = populated
        assert analytics.container_history("i1") == [("case", 2.0, 40.0)]


class TestSales:
    def test_sales_by_reader_busiest_first(self, populated):
        _store, analytics = populated
        assert analytics.sales_by_reader() == [("pos2", 2), ("pos1", 1)]

    def test_total_sales(self, populated):
        _store, analytics = populated
        assert analytics.total_sales() == 3
