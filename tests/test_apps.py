"""Tests for the prebuilt applications and the middleware facade."""

import random

import pytest

from repro import Engine, Observation
from repro.apps import (
    RfidMiddleware,
    asset_monitoring_rule,
    containment_rule,
    location_rule,
    unpacking_rule,
)
from repro.simulator import (
    GateConfig,
    MovementConfig,
    PackingConfig,
    gate_type_function,
    reader_placements,
    simulate_gate,
    simulate_movement,
    simulate_packing,
)
from repro.store import UC, RfidStore


class TestContainmentApp:
    def test_against_packing_truth(self):
        trace = simulate_packing(PackingConfig(cases=15), rng=random.Random(2))
        store = RfidStore()
        engine = Engine([containment_rule()], store=store)
        list(engine.run(trace.observations))
        for case_epc, items in trace.expected_containments().items():
            assert store.contents_of(case_epc) == sorted(items)

    def test_unpacking_closes_periods(self):
        store = RfidStore()
        engine = Engine(
            [containment_rule(), unpacking_rule("r9")], store=store
        )
        stream = [Observation("r1", f"i{k}", 0.5 * k) for k in range(1, 4)]
        stream.append(Observation("r2", "case", 12.0))
        stream.append(Observation("r9", "case", 100.0))
        list(engine.run(stream))
        assert store.contents_of("case") == []
        assert store.contents_of("case", at=50.0) == ["i1", "i2", "i3"]
        rows = store.database.query(
            "SELECT DISTINCT tend FROM OBJECTCONTAINMENT"
        )
        assert rows == [(100.0,)]

    def test_group_and_type_variant_compiles(self):
        rule = containment_rule(
            item_reader=None,
            case_reader=None,
            item_group="conveyor",
            case_group="packing",
            item_type="item",
            case_type="case",
        )
        Engine([rule], store=RfidStore())  # compiles without error


class TestLocationApp:
    def test_against_movement_truth(self):
        config = MovementConfig(objects=5)
        trace = simulate_movement(config, rng=random.Random(3))
        store = RfidStore()
        for reader, location in reader_placements(config):
            store.place_reader(reader, location)
        engine = Engine([location_rule()], store=store)
        list(engine.run(trace.observations))
        for epc in {visit.obj_epc for visit in trace.visits}:
            expected = trace.expected_history(epc)
            got = store.location_history(epc)
            assert [(loc, start) for loc, start, _end in got] == expected
            assert got[-1][2] == UC

    def test_unplaced_reader_ignored(self):
        store = RfidStore()
        engine = Engine([location_rule()], store=store)
        list(engine.run([Observation("handheld", "x", 0.0)]))
        assert store.location_of("x") is None

    def test_record_observation_option(self):
        store = RfidStore()
        store.place_reader("r", "dock")
        engine = Engine([location_rule(record_observation=True)], store=store)
        list(engine.run([Observation("r", "x", 1.0)]))
        assert store.observations_of("x") == [("r", 1.0)]


class TestAssetMonitoringApp:
    def test_against_gate_truth(self):
        config = GateConfig(exits=40)
        trace = simulate_gate(config, rng=random.Random(4))
        alarms = []
        rule = asset_monitoring_rule(
            gate_reader=config.reader,
            tau=config.tau,
            on_alarm=lambda epc, time: alarms.append((epc, time)),
        )
        from repro import FunctionRegistry

        engine = Engine(
            [rule], functions=FunctionRegistry(obj_type=gate_type_function(config))
        )
        list(engine.run(trace.observations))
        assert sorted(alarms) == sorted(trace.expected_alarms())

    def test_default_action_uses_store_alert(self):
        store = RfidStore()
        from repro import FunctionRegistry

        rule = asset_monitoring_rule(gate_reader="g", tau=5.0)
        engine = Engine(
            [rule],
            store=store,
            functions=FunctionRegistry(obj_type=lambda o: "laptop"),
        )
        list(engine.run([Observation("g", "L", 0.0)]))
        assert len(store.alerts) == 1
        assert "unauthorized laptop L" in store.alerts[0][1]


class TestMiddleware:
    def test_process_wires_everything(self):
        middleware = RfidMiddleware()
        middleware.store.place_reader("r1", "conveyor")
        middleware.store.place_reader("r2", "packing")
        middleware.add_rules([containment_rule(), location_rule()])
        stream = [Observation("r1", f"i{k}", 0.4 * k) for k in range(1, 4)]
        stream.append(Observation("r2", "case", 13.0))
        detections = middleware.process(stream)
        assert len(detections) == 1 + len(stream)  # containment + 4 locations
        assert middleware.store.contents_of("case") == ["i1", "i2", "i3"]
        assert middleware.store.location_of("case") == "packing"

    def test_add_program_parses_and_registers(self):
        middleware = RfidMiddleware()
        rules = middleware.add_program(
            "CREATE RULE rx, demo ON observation(r, o, t) IF true "
            "DO INSERT INTO OBSERVATION VALUES (r, o, t)"
        )
        assert len(rules) == 1
        middleware.process([Observation("r", "x", 0.0)])
        assert middleware.store.observations_of("x") == [("r", 0.0)]

    def test_group_registry_feeds_engine(self):
        middleware = RfidMiddleware()
        middleware.groups.assign_all(["d1", "d2"], "dock")
        from repro import obs as obs_expr
        from repro.core.expressions import Var

        seen = []
        middleware.engine.watch(
            obs_expr(None, Var("o"), group="dock"),
            callback=lambda context: seen.append(context.bindings["o"]),
        )
        middleware.process(
            [Observation("d1", "a", 0.0), Observation("zz", "b", 1.0)]
        )
        assert seen == ["a"]

    def test_type_registry_feeds_engine(self):
        middleware = RfidMiddleware()
        middleware.types.register_fallback("tagX", "laptop")
        from repro import obs as obs_expr
        from repro.core.expressions import Var

        seen = []
        middleware.engine.watch(
            obs_expr(None, Var("o"), obj_type="laptop"),
            callback=lambda context: seen.append(context.bindings["o"]),
        )
        middleware.process(
            [Observation("r", "tagX", 0.0), Observation("r", "other", 1.0)]
        )
        assert seen == ["tagX"]


class TestSaleApp:
    def test_sale_records_and_relocates(self):
        from repro.apps import SOLD_LOCATION, sale_rule

        store = RfidStore()
        store.add_containment(["item1"], "case", 0.0)
        store.update_location("item1", "store", 0.0)
        engine = Engine([sale_rule(("pos1",))], store=store)
        list(engine.run([Observation("pos1", "item1", 100.0)]))
        assert store.location_of("item1") == SOLD_LOCATION
        assert store.parent_of("item1") is None
        assert store.parent_of("item1", at=50.0) == "case"
        assert store.database.query("SELECT object_epc FROM SALE") == [("item1",)]

    def test_multiple_pos_readers(self):
        from repro.apps import sale_rule

        store = RfidStore()
        engine = Engine([sale_rule(("pos1", "pos2"))], store=store)
        list(
            engine.run(
                [
                    Observation("pos1", "a", 0.0),
                    Observation("pos2", "b", 1.0),
                    Observation("door", "c", 2.0),  # not a POS reader
                ]
            )
        )
        rows = store.database.query("SELECT object_epc FROM SALE ORDER BY timestamp")
        assert rows == [("a",), ("b",)]

    def test_against_checkout_truth(self):
        from repro.apps import sale_rule
        from repro.simulator import CheckoutConfig, simulate_checkout

        config = CheckoutConfig(sales=10)
        trace = simulate_checkout(config, rng=random.Random(8))
        store = RfidStore()
        engine = Engine([sale_rule(config.pos_readers)], store=store)
        list(engine.run(trace.observations))
        rows = store.database.query(
            "SELECT object_epc, pos_reader, timestamp FROM SALE"
        )
        assert sorted(rows) == sorted(
            (sale.item_epc, sale.pos_reader, sale.time) for sale in trace.sales
        )

    def test_sales_per_lane_aggregate(self):
        from repro.apps import sale_rule
        from repro.simulator import CheckoutConfig, simulate_checkout

        config = CheckoutConfig(sales=20)
        trace = simulate_checkout(config, rng=random.Random(9))
        store = RfidStore()
        engine = Engine([sale_rule(config.pos_readers)], store=store)
        list(engine.run(trace.observations))
        rows = store.database.query(
            "SELECT pos_reader, COUNT(*) FROM SALE GROUP BY pos_reader "
            "ORDER BY pos_reader"
        )
        from collections import Counter

        expected = Counter(sale.pos_reader for sale in trace.sales)
        assert rows == sorted(expected.items())


class TestDetectionRecording:
    def test_detections_persisted_in_store(self):
        middleware = RfidMiddleware(record_detections=True)
        middleware.store.place_reader("r1", "conveyor")
        middleware.store.place_reader("r2", "packing")
        middleware.add_rule(containment_rule())
        stream = [Observation("r1", f"i{k}", 0.4 * k) for k in range(1, 4)]
        stream.append(Observation("r2", "case", 13.0))
        middleware.process(stream)
        rows = middleware.store.detections_of("r4")
        assert len(rows) == 1
        t_begin, t_end, detected_at, primary = rows[0]
        assert primary == "i1"
        assert t_begin == pytest.approx(0.4)
        assert t_end == 13.0

    def test_recording_off_by_default(self):
        middleware = RfidMiddleware()
        middleware.add_rule(containment_rule())
        middleware.process([Observation("r1", "i1", 0.0)])
        assert middleware.store.detections_of("r4") == []

    def test_detection_table_queryable_with_aggregates(self):
        middleware = RfidMiddleware(record_detections=True)
        middleware.engine.watch(
            __import__("repro").obs("g", __import__("repro").Var("o")),
            name="gate-watch",
        )
        stream = [Observation("g", f"t{k}", float(k)) for k in range(5)]
        middleware.process(stream)
        rows = middleware.store.database.query(
            "SELECT rule_id, COUNT(*) FROM DETECTION GROUP BY rule_id"
        )
        assert rows == [("gate-watch", 5)]
