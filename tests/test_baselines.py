"""Tests for the baseline detectors (type-level ECA, rescan)."""

import random

from repro import Engine, Observation, Var, obs
from repro.baselines import RescanDetector, TypeLevelEcaDetector
from repro.core.expressions import Seq, TSeq, TSeqPlus
from repro.simulator import PackingConfig, simulate_packing


class TestTypeLevelEca:
    def _history(self):
        return [
            Observation("r1", "a", 1.0),
            Observation("r1", "b", 2.0),
            Observation("r2", "case", 9.0),
        ]

    def test_accepts_when_constraints_hold(self):
        naive = TypeLevelEcaDetector("r1", "r2", (0.5, 1.5), (5.0, 10.0))
        accepted = naive.run(self._history())
        assert len(accepted) == 1
        assert [o.obj for o in accepted[0].members] == ["a", "b"]

    def test_rejects_whole_candidate_on_gap_violation(self):
        history = [
            Observation("r1", "a", 1.0),
            Observation("r1", "b", 5.0),  # gap 4 > 1.5
            Observation("r2", "case", 12.0),
        ]
        naive = TypeLevelEcaDetector("r1", "r2", (0.5, 1.5), (5.0, 10.0))
        assert naive.run(history) == []
        assert len(naive.rejected) == 1

    def test_rejects_on_terminator_distance(self):
        history = [Observation("r1", "a", 1.0), Observation("r2", "case", 30.0)]
        naive = TypeLevelEcaDetector("r1", "r2", (0.5, 1.5), (5.0, 10.0))
        assert naive.run(history) == []

    def test_buffer_resets_after_terminator(self):
        history = [
            Observation("r1", "a", 1.0),
            Observation("r2", "c1", 9.0),
            Observation("r1", "b", 20.0),
            Observation("r2", "c2", 28.0),
        ]
        naive = TypeLevelEcaDetector("r1", "r2", (0.5, 1.5), (5.0, 10.0))
        accepted = naive.run(history)
        assert len(accepted) == 2
        assert [o.obj for o in accepted[1].members] == ["b"]

    def test_callable_predicates(self):
        naive = TypeLevelEcaDetector(
            lambda o: o.obj.startswith("i"),
            lambda o: o.obj.startswith("c"),
            (0.0, 2.0),
            (0.0, 100.0),
        )
        accepted = naive.run(
            [Observation("x", "i1", 0.0), Observation("x", "c1", 5.0)]
        )
        assert len(accepted) == 1

    def test_candidate_helpers(self):
        naive = TypeLevelEcaDetector("r1", "r2", (0.0, 5.0), (0.0, 100.0))
        naive.run(
            [
                Observation("r1", "a", 0.0),
                Observation("r1", "b", 3.0),
                Observation("r2", "c", 10.0),
            ]
        )
        candidate = naive.accepted[0]
        assert candidate.adjacent_gaps() == [3.0]
        assert candidate.terminator_distance() == 7.0

    def test_underperforms_on_overlap(self):
        trace = simulate_packing(PackingConfig(cases=20), rng=random.Random(1))
        naive = TypeLevelEcaDetector("r1", "r2", (0.1, 1.0), (10.0, 20.0))
        accepted = naive.run(trace.observations)
        assert len(accepted) < len(trace.cases)


class TestRescanDetector:
    def test_matches_incremental_engine(self):
        event = TSeq(TSeqPlus(obs("r1", Var("o1")), 0.1, 1.0), obs("r2", Var("o2")), 10, 20)
        trace = simulate_packing(PackingConfig(cases=8), rng=random.Random(2))

        engine = Engine()
        engine.watch(event)
        incremental = sum(1 for _ in engine.run(trace.observations))

        rescan = RescanDetector(event)
        assert rescan.run(trace.observations) == incremental

    def test_seq_equivalence(self):
        event = Seq(obs("A", Var("o")), obs("B", Var("o"))).within(100)
        stream = [
            Observation("A", "x", 0.0),
            Observation("B", "x", 1.0),
            Observation("A", "y", 2.0),
            Observation("B", "y", 3.0),
        ]
        engine = Engine()
        engine.watch(event)
        incremental = sum(1 for _ in engine.run(stream))
        assert RescanDetector(event).run(stream) == incremental == 2

    def test_submit_returns_new_detections(self):
        event = obs("A")
        rescan = RescanDetector(event)
        assert rescan.submit(Observation("A", "x", 0.0)) == 1
        assert rescan.submit(Observation("B", "x", 1.0)) == 0
        assert rescan.submit(Observation("A", "y", 2.0)) == 1
        assert rescan.detections == 2
