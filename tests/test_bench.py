"""Tests for the benchmark harness: workloads, measurements, ablations."""

from repro.bench import (
    EVENTS_PER_CASE,
    build_events_axis_workload,
    build_rules_axis_workload,
    containment_rule_for_pair,
    context_ablation,
    fig4_comparison,
    fig9a_table,
    incremental_ablation,
    linearity_ratio,
    merge_ablation,
    run_detection,
    run_fig9a,
    run_fig9b,
)


class TestWorkloads:
    def test_events_axis_size(self):
        workload = build_events_axis_workload(6_000, n_rules=5)
        assert len(workload.observations) == 6_000
        assert len(workload.rules) == 5

    def test_events_axis_detections(self):
        workload = build_events_axis_workload(3_000, n_rules=5)
        result = run_detection(workload.rules, workload.observations)
        assert result.detections == workload.expected_detections
        assert workload.expected_detections == len(workload.observations) // EVENTS_PER_CASE

    def test_rules_axis_detections(self):
        workload = build_rules_axis_workload(60, n_events=3_000, lines=20)
        result = run_detection(workload.rules, workload.observations)
        assert result.detections == workload.expected_detections

    def test_rule_variants_do_not_merge(self):
        from repro import Engine

        first = containment_rule_for_pair(0, "a", "b", variant=0)
        second = containment_rule_for_pair(1, "a", "b", variant=1)
        engine = Engine([first, second])
        assert len(engine.graph.roots) == 2


class TestHarness:
    def test_result_fields(self):
        workload = build_events_axis_workload(1_200, n_rules=2)
        result = run_detection(workload.rules, workload.observations, label="x")
        assert result.label == "x"
        assert result.n_events == len(workload.observations)
        assert result.elapsed_seconds > 0
        assert result.events_per_second > 0
        assert result.total_ms == result.elapsed_seconds * 1000

    def test_table_rendering(self):
        results = run_fig9a(points=(1_200, 2_400), n_rules=2)
        table = fig9a_table(results)
        assert "events" in table and "detections" in table
        assert len(table.splitlines()) == 4

    def test_linearity_ratio(self):
        results = run_fig9a(points=(1_200, 2_400), n_rules=2)
        assert linearity_ratio(results) > 0


class TestSweeps:
    def test_fig9a_small(self):
        results = run_fig9a(points=(1_200, 2_400))
        assert [result.n_events for result in results] == [1_200, 2_400]

    def test_fig9b_small(self):
        results = run_fig9b(points=(5, 10), n_events=1_200)
        assert [result.n_rules for result in results] == [5, 10]


class TestAblations:
    def test_fig4(self):
        result = fig4_comparison()
        assert result.rceda_matches == 2
        assert result.naive_matches == 0

    def test_contexts(self):
        results = {r.context: r for r in context_ablation(cases=20)}
        assert results["chronicle"].correct_cases == results["chronicle"].total_cases
        assert results["recent"].correct_cases < results["recent"].total_cases

    def test_merge(self):
        result = merge_ablation(copies=10, cases=20)
        assert result.merged_nodes < result.unmerged_nodes
        assert result.merged.detections == result.unmerged.detections

    def test_incremental(self):
        result = incremental_ablation(cases=10)
        assert result.detections_match
        assert result.rescan_seconds > result.incremental_seconds


class TestCli:
    def test_main_runs_each_command(self, capsys):
        from repro.bench.__main__ import main

        for command in ("fig4", "merge", "incremental"):
            assert main([command]) == 0
        output = capsys.readouterr().out
        assert "RCEDA matches" in output


class TestLatency:
    def test_latency_percentiles(self):
        from repro.bench import build_events_axis_workload, run_with_latency

        workload = build_events_axis_workload(1_200, n_rules=2)
        result = run_with_latency(workload.rules, workload.observations)
        assert result.n_events == len(workload.observations)
        assert 0 < result.p50_us <= result.p95_us <= result.p99_us <= result.max_us
        assert result.mean_us > 0

    def test_latency_rejects_empty_stream(self):
        import pytest

        from repro.bench import run_with_latency

        with pytest.raises(ValueError):
            run_with_latency([], [])

    def test_latency_cli(self, capsys):
        from repro.bench.__main__ import main

        assert main(["latency"]) == 0
        assert "p99" in capsys.readouterr().out


class TestWalBench:
    def test_wal_bench_matches_baseline_detections(self):
        from repro.bench.wal import run_wal_bench

        results = run_wal_bench(full_scale=False)
        assert [result.policy for result in results] == [
            "never",
            "batch:64",
            "always",
        ]
        first = results[0]
        assert first.appends > first.n_events  # observations + flush marker
        assert first.bytes_logged > 0
        assert results[-1].fsyncs >= first.n_events  # always: one per append

    def test_wal_cli(self, capsys):
        from repro.bench.__main__ import main

        assert main(["wal"]) == 0
        out = capsys.readouterr().out
        assert "fsync policy" in out
        assert "batch:64" in out


class TestServeBench:
    def test_serve_bench_matches_baseline_detections(self):
        from repro.bench.serve import run_serve_bench

        results = run_serve_bench(full_scale=False)
        assert [(r.transport, r.codec) for r in results] == [
            ("direct", "-"),
            ("loopback", "json"),
            ("tcp", "json"),
            ("loopback", "binary"),
            ("tcp", "binary"),
            ("loopback", "binary+hb"),
        ]
        direct = results[0]
        assert direct.detections > 0
        assert all(r.detections == direct.detections for r in results)
        assert direct.frames_in == 0 and direct.overhead_pct == 0.0
        assert all(r.frames_in > 0 and r.bytes_in > 0 for r in results[1:])
        by_key = {(r.transport, r.codec): r for r in results}
        # The binary codec's whole point: fewer bytes on the wire than
        # the JSON layout for the same workload.
        assert (
            by_key[("loopback", "binary")].bytes_in
            < by_key[("loopback", "json")].bytes_in
        )

    def test_serve_bench_single_codec_and_overhead_gate(self):
        from repro.bench.serve import check_overhead, run_serve_bench

        results = run_serve_bench(codecs=("binary",))
        assert [(r.transport, r.codec) for r in results] == [
            ("direct", "-"),
            ("loopback", "binary"),
            ("tcp", "binary"),
            ("loopback", "binary+hb"),
        ]
        # A generous bound always passes; an impossible one always fails.
        assert check_overhead(results, 1e9) is None
        failure = check_overhead(results, -200.0)
        assert failure is not None and "loopback/binary" in failure
        assert "no loopback/binary row" in check_overhead(results[:1], 1e9)

    def test_serve_bench_rejects_unknown_scale(self):
        import pytest

        from repro.bench.serve import run_serve_bench

        with pytest.raises(ValueError, match="unknown scale"):
            run_serve_bench(scale="galactic")

    def test_speculation_bench_rows(self):
        from repro.bench.serve import check_overhead, run_speculation_bench

        results = run_speculation_bench(repeats=1)
        assert [(r.transport, r.codec) for r in results] == [
            ("direct", "ooo-accept"),
            ("direct", "ooo-revise"),
        ]
        accept, revise = results
        # The function only returns after asserting the revise run's
        # sealed finals equal the in-order oracle, so a non-zero count
        # here is a count of *correct* answers.
        assert revise.detections > 0
        assert accept.overhead_pct == 0.0
        # Speculation is never free: every late arrival forces a
        # rebuild, so the revise row must cost more than accept.
        assert revise.elapsed_seconds > accept.elapsed_seconds
        assert revise.overhead_pct > 0.0
        # Engine-layer rows: nothing crossed the wire.
        assert accept.frames_in == 0 and revise.bytes_in == 0
        # The CI gate must be blind to these rows.
        assert "no loopback/binary row" in check_overhead(results, 1e9)

    def test_measure_drop_loss_surfaces_late_data_loss(self):
        from repro.bench.serve import measure_drop_loss

        loss = measure_drop_loss()
        # The whole point: drops are counted and the answers they cost
        # are named, instead of DROP silently shrinking the output.
        assert loss["ooo_dropped"] > 0
        assert loss["detections_lost"] >= 0
        assert (
            loss["detections"] + loss["detections_lost"]
            == loss["oracle_detections"]
        )

    def test_speculation_bench_rejects_unknown_scale(self):
        import pytest

        from repro.bench.serve import run_speculation_bench

        with pytest.raises(ValueError, match="unknown scale"):
            run_speculation_bench(scale="galactic")

    def test_serve_cli_writes_json(self, tmp_path, capsys, monkeypatch):
        import json

        from repro.bench.__main__ import main

        monkeypatch.chdir(tmp_path)
        assert main(["serve"]) == 0
        out = capsys.readouterr().out
        assert "transport" in out and "loopback" in out and "binary" in out
        with open(tmp_path / "BENCH_serve.json") as handle:
            document = json.load(handle)
        assert document["schema"] == {"name": "repro-bench-serve", "version": 2}
        assert document["scale"] == "quick"
        assert [(r["transport"], r["codec"]) for r in document["results"]] == [
            ("direct", "-"),
            ("loopback", "json"),
            ("tcp", "json"),
            ("loopback", "binary"),
            ("tcp", "binary"),
            ("loopback", "binary+hb"),
            ("direct", "ooo-accept"),
            ("direct", "ooo-revise"),
        ]

    def test_serve_cli_overhead_gate_exit_code(self, tmp_path, capsys, monkeypatch):
        import repro.bench.serve as serve_bench
        from repro.bench.__main__ import main
        from repro.bench.serve import ServeBenchResult

        def fake_bench(*args, **kwargs):
            rows = [("direct", "-", 1.0), ("loopback", "binary", 2.0)]
            return [
                ServeBenchResult(
                    transport=transport,
                    codec=codec,
                    n_events=100,
                    n_rules=1,
                    detections=5,
                    elapsed_seconds=elapsed,
                    baseline_seconds=1.0,
                )
                for transport, codec, elapsed in rows
            ]

        monkeypatch.setattr(serve_bench, "run_serve_bench", fake_bench)
        monkeypatch.setattr(serve_bench, "run_speculation_bench", lambda *a, **k: [])
        monkeypatch.chdir(tmp_path)
        # Fake binary loopback overhead is 100%: over a 40% bound it
        # must fail with exit code 1, under a 150% bound it must pass.
        assert main(["serve", "--max-overhead", "40"]) == 1
        assert "exceeds the 40% bound" in capsys.readouterr().err
        assert main(["serve", "--max-overhead", "150"]) == 0
        assert "overhead gate passed" in capsys.readouterr().out


class TestReport:
    def test_generate_report_contains_all_sections(self):
        from repro.bench.report import generate_report

        text = generate_report(full_scale=False)
        for heading in (
            "Fig. 4",
            "events axis",
            "rules axis",
            "parameter contexts",
            "sub-graph merging",
            "re-evaluation",
            "latency",
            "WAL durability overhead",
            "Serving layer overhead",
            "Out-of-order handling",
        ):
            assert heading in text, heading
        assert "RCEDA matches: **2**" in text
        # Late-data loss is part of the report now: the DROP policy's
        # discards are named and counted, never silent.
        assert "ooo_dropped" in text
        assert "ooo-revise" in text

    def test_report_cli_writes_file(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = str(tmp_path / "report.md")
        assert main(["report", "--out", out]) == 0
        with open(out) as handle:
            assert handle.read().startswith("# RCEDA evaluation report")
