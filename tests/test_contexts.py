"""Tests for parameter contexts: policy units plus engine-level pairing.

The engine-level cases mirror the paper's §4.2 discussion: with
overlapping instances only the chronicle context pairs initiators and
terminators as the application intends.
"""

from collections import deque

import pytest

from repro import CompileError, Engine, Observation, Var, obs
from repro.core.contexts import (
    ChronicleContext,
    ContinuousContext,
    CumulativeContext,
    RecentContext,
    UnrestrictedContext,
    available_contexts,
    get_context,
)
from repro.core.instances import PrimitiveInstance


def prim(t, obj="x"):
    return PrimitiveInstance(Observation("r", obj, t))


def accept_all(_instance):
    return True


def accept_after(threshold):
    return lambda instance: instance.t_end >= threshold


class TestRegistry:
    def test_all_contexts_available(self):
        assert set(available_contexts()) == {
            "chronicle",
            "recent",
            "continuous",
            "cumulative",
            "unrestricted",
        }

    def test_get_by_name(self):
        assert get_context("recent").name == "recent"

    def test_get_passthrough(self):
        context = ChronicleContext()
        assert get_context(context) is context

    def test_unknown_name(self):
        with pytest.raises(CompileError):
            get_context("quantum")

    def test_consumes_flags(self):
        assert get_context("chronicle").consumes
        assert get_context("continuous").consumes
        assert get_context("cumulative").consumes
        assert not get_context("recent").consumes
        assert not get_context("unrestricted").consumes


class TestChronicle:
    def test_oldest_accepted(self):
        buffer = deque([prim(1), prim(2), prim(3)])
        groups, consumed = ChronicleContext().select(buffer, accept_all)
        assert [group[0].t_end for group in groups] == [1]
        assert consumed == [buffer[0]]

    def test_skips_unacceptable(self):
        buffer = deque([prim(1), prim(2), prim(3)])
        groups, consumed = ChronicleContext().select(buffer, accept_after(2))
        assert groups[0][0].t_end == 2

    def test_no_match(self):
        groups, consumed = ChronicleContext().select(deque([prim(1)]), lambda i: False)
        assert groups == [] and consumed == []


class TestRecent:
    def test_newest_accepted(self):
        buffer = deque([prim(1), prim(2), prim(3)])
        groups, consumed = RecentContext().select(buffer, accept_all)
        assert groups[0][0].t_end == 3
        assert consumed == []

    def test_insert_displaces(self):
        buffer = deque([prim(1), prim(2)])
        RecentContext().on_insert(buffer, prim(3))
        assert [instance.t_end for instance in buffer] == [3]


class TestContinuous:
    def test_each_accepted_matches(self):
        buffer = deque([prim(1), prim(2), prim(3)])
        groups, consumed = ContinuousContext().select(buffer, accept_after(2))
        assert [group[0].t_end for group in groups] == [2, 3]
        assert [instance.t_end for instance in consumed] == [2, 3]


class TestCumulative:
    def test_all_accepted_in_one_group(self):
        buffer = deque([prim(1), prim(2), prim(3)])
        groups, consumed = CumulativeContext().select(buffer, accept_all)
        assert len(groups) == 1
        assert [instance.t_end for instance in groups[0]] == [1, 2, 3]
        assert len(consumed) == 3

    def test_empty_when_nothing_accepted(self):
        groups, consumed = CumulativeContext().select(deque([prim(1)]), lambda i: False)
        assert groups == []


class TestUnrestricted:
    def test_all_combinations_no_consumption(self):
        buffer = deque([prim(1), prim(2)])
        groups, consumed = UnrestrictedContext().select(buffer, accept_all)
        assert len(groups) == 2
        assert consumed == []


class TestEngineLevelPairing:
    """SEQ(A; B) over interleaved instances a1 a2 b1 b2."""

    def _run(self, context):
        engine = Engine(context=context)
        engine.watch(obs("A", Var("x")) >> obs("B", Var("y")))
        stream = [
            Observation("A", "a1", 1.0),
            Observation("A", "a2", 2.0),
            Observation("B", "b1", 3.0),
            Observation("B", "b2", 4.0),
        ]
        pairs = []
        for detection in engine.run(stream):
            observations = detection.instance.observations()
            pairs.append(tuple(observation.obj for observation in observations))
        return pairs

    def test_chronicle_pairs_in_order(self):
        assert self._run("chronicle") == [("a1", "b1"), ("a2", "b2")]

    def test_recent_reuses_newest(self):
        assert self._run("recent") == [("a2", "b1"), ("a2", "b2")]

    def test_continuous_terminates_all(self):
        assert self._run("continuous") == [("a1", "b1"), ("a2", "b1")]

    def test_cumulative_accumulates(self):
        assert self._run("cumulative") == [("a1", "a2", "b1")]

    def test_unrestricted_all_pairs(self):
        assert self._run("unrestricted") == [
            ("a1", "b1"),
            ("a2", "b1"),
            ("a1", "b2"),
            ("a2", "b2"),
        ]

    def test_chronicle_consumption_prevents_reuse(self):
        engine = Engine(context="chronicle")
        engine.watch(obs("A") >> obs("B"))
        stream = [
            Observation("A", "a1", 1.0),
            Observation("B", "b1", 2.0),
            Observation("B", "b2", 3.0),
        ]
        detections = list(engine.run(stream))
        assert len(detections) == 1  # a1 consumed by b1; b2 finds nothing
