"""Engine basics: primitive matching, OR/AND/SEQ, clocking, stats, policies."""

import pytest

from repro import (
    Engine,
    FunctionRegistry,
    Observation,
    TimeOrderError,
    Var,
    Within,
    obs,
)
from repro.core.expressions import And, Or, Seq


def run(engine, stream):
    return list(engine.run(stream))


class TestPrimitiveMatching:
    def test_reader_literal(self):
        engine = Engine()
        engine.watch(obs("r1"))
        detections = run(engine, [Observation("r1", "a", 0), Observation("r2", "a", 1)])
        assert len(detections) == 1

    def test_reader_variable_binds(self):
        engine = Engine()
        engine.watch(obs(Var("r"), Var("o")))
        detections = run(engine, [Observation("rX", "tag", 0)])
        assert detections[0].bindings == {"r": "rX", "o": "tag"}

    def test_object_literal(self):
        engine = Engine()
        engine.watch(obs(None, "special"))
        detections = run(
            engine, [Observation("r", "special", 0), Observation("r", "other", 1)]
        )
        assert len(detections) == 1

    def test_same_variable_in_both_positions(self):
        # observation(x, x, t): reader id equals object id.
        engine = Engine()
        engine.watch(obs(Var("x"), Var("x")))
        detections = run(
            engine, [Observation("self", "self", 0), Observation("r", "o", 1)]
        )
        assert len(detections) == 1
        assert detections[0].bindings == {"x": "self"}

    def test_group_function(self):
        functions = FunctionRegistry(group=lambda reader: "dock" if reader.startswith("d") else reader)
        engine = Engine(functions=functions)
        engine.watch(obs(Var("r"), group="dock"))
        detections = run(
            engine, [Observation("d1", "a", 0), Observation("d2", "a", 1),
                     Observation("x", "a", 2)]
        )
        assert len(detections) == 2

    def test_default_group_is_reader_itself(self):
        engine = Engine()
        engine.watch(obs(None, None, group="r9"))
        detections = run(engine, [Observation("r9", "a", 0), Observation("r8", "a", 1)])
        assert len(detections) == 1

    def test_type_function(self):
        functions = FunctionRegistry(obj_type=lambda o: "case" if o.startswith("c") else "item")
        engine = Engine(functions=functions)
        engine.watch(obs(None, Var("o"), obj_type="case"))
        detections = run(engine, [Observation("r", "c1", 0), Observation("r", "i1", 1)])
        assert len(detections) == 1

    def test_default_type_matches_nothing(self):
        engine = Engine()
        engine.watch(obs(None, None, obj_type="case"))
        assert run(engine, [Observation("r", "c1", 0)]) == []

    def test_where_predicate(self):
        engine = Engine()
        engine.watch(obs(None, None, where=lambda o: o.timestamp > 5))
        detections = run(engine, [Observation("r", "a", 1), Observation("r", "a", 9)])
        assert len(detections) == 1

    def test_timestamp_variable(self):
        engine = Engine()
        engine.watch(obs("r1", Var("o"), t=Var("t")))
        detections = run(engine, [Observation("r1", "a", 4.25)])
        assert detections[0].bindings["t"] == 4.25


class TestBasicComposites:
    def test_or_fires_for_either(self):
        engine = Engine()
        engine.watch(Or(obs("a"), obs("b")))
        detections = run(engine, [Observation("a", "x", 0), Observation("b", "x", 1)])
        assert len(detections) == 2

    def test_and_needs_both(self):
        engine = Engine()
        engine.watch(And(obs("a"), obs("b")))
        assert run(engine, [Observation("a", "x", 0)]) == []
        engine2 = Engine()
        engine2.watch(And(obs("a"), obs("b")))
        detections = run(
            engine2, [Observation("a", "x", 0), Observation("b", "y", 3)]
        )
        assert len(detections) == 1
        assert detections[0].instance.t_begin == 0
        assert detections[0].instance.t_end == 3

    def test_and_order_irrelevant(self):
        engine = Engine()
        engine.watch(And(obs("a"), obs("b")))
        detections = run(engine, [Observation("b", "x", 0), Observation("a", "x", 1)])
        assert len(detections) == 1

    def test_and_with_bindings_requires_unification(self):
        engine = Engine()
        engine.watch(And(obs("a", Var("o")), obs("b", Var("o"))))
        detections = run(
            engine,
            [
                Observation("a", "t1", 0),
                Observation("b", "t2", 1),  # different object: no match
                Observation("b", "t1", 2),  # same object: match
            ],
        )
        assert len(detections) == 1
        assert detections[0].bindings == {"o": "t1"}

    def test_ternary_and(self):
        engine = Engine()
        engine.watch(And(obs("a"), obs("b"), obs("c")))
        detections = run(
            engine,
            [Observation("a", "x", 0), Observation("c", "x", 1), Observation("b", "x", 2)],
        )
        assert len(detections) == 1

    def test_seq_requires_order(self):
        engine = Engine()
        engine.watch(Seq(obs("a"), obs("b")))
        assert run(engine, [Observation("b", "x", 0), Observation("a", "x", 1)]) == []

    def test_seq_strictly_before(self):
        engine = Engine()
        engine.watch(Seq(obs("a"), obs("b")))
        # Simultaneous events do not satisfy "E1 ends before E2 starts".
        assert run(engine, [Observation("a", "x", 5), Observation("b", "x", 5)]) == []

    def test_within_drops_wide_matches(self):
        engine = Engine()
        engine.watch(Within(And(obs("a"), obs("b")), 10))
        detections = run(
            engine, [Observation("a", "x", 0), Observation("b", "x", 50),
                     Observation("a", "x", 55)]
        )
        # a@0 cannot pair with b@50 (span 50 > 10); b@50 remains buffered
        # and pairs with a@55 (span 5).
        assert len(detections) == 1
        assert detections[0].instance.t_begin == 50


class TestClockAndOrdering:
    def test_out_of_order_raises_by_default(self):
        engine = Engine()
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 10))
        with pytest.raises(TimeOrderError):
            engine.submit(Observation("r", "a", 5))

    def test_out_of_order_drop(self):
        engine = Engine(out_of_order="drop")
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 10))
        assert engine.submit(Observation("r", "a", 5)) == []
        assert engine.stats.dropped_out_of_order == 1

    def test_accept_policy_warns_deprecated(self):
        # ACCEPT still works (one-release grace) but announces itself:
        # processing stale observations breaks pseudo-event correctness,
        # and the warning points at the REVISE replacement.
        with pytest.warns(DeprecationWarning, match="REVISE"):
            engine = Engine(out_of_order="accept")
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 10))
        detections = engine.submit(Observation("r", "a", 5))
        # Behaviour is unchanged: the stale observation is processed.
        assert len(detections) == 1
        assert engine.stats.dropped_out_of_order == 0

    def test_non_accept_policies_do_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Engine(out_of_order="drop")
            Engine(out_of_order="raise")
            Engine(out_of_order="revise", revise_horizon=5.0)

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            Engine(out_of_order="shuffle")

    def test_clock_advances(self):
        engine = Engine()
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 7))
        assert engine.clock == 7

    def test_advance_to_fires_pseudo_events(self):
        from repro.core.expressions import TSeqPlus

        engine = Engine()
        engine.watch(TSeqPlus(obs("r"), 0, 1))
        engine.submit(Observation("r", "a", 0))
        assert engine.advance_to(0.5) == []          # chain still open
        detections = engine.advance_to(1.0)          # closes at 0 + 1
        assert len(detections) == 1

    def test_equal_timestamps_allowed(self):
        engine = Engine()
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 1))
        assert len(engine.submit(Observation("r", "b", 1))) == 1


class TestEngineLifecycle:
    def test_add_rule_after_start_rejected(self):
        engine = Engine()
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 0))
        with pytest.raises(RuntimeError):
            engine.watch(obs("q"))

    def test_watch_callback(self):
        seen = []
        engine = Engine()
        engine.watch(obs("r"), callback=lambda context: seen.append(context.time))
        engine.submit(Observation("r", "a", 3))
        assert seen == [3]

    def test_stats_counters(self):
        engine = Engine()
        engine.watch(Seq(obs("a"), obs("b")))
        run(engine, [Observation("a", "x", 0), Observation("b", "x", 1),
                     Observation("zzz", "x", 2)])
        stats = engine.stats
        assert stats.observations == 3
        assert stats.primitive_matches == 2
        assert stats.composites == 1
        assert stats.detections == 1

    def test_run_without_flush(self):
        from repro.core.expressions import TSeqPlus

        engine = Engine()
        engine.watch(TSeqPlus(obs("r"), 0, 1))
        detections = list(engine.run([Observation("r", "a", 0)], flush=False))
        assert detections == []  # chain never expired

    def test_detection_repr(self):
        engine = Engine()
        rule = engine.watch(obs("r"), name="my-watch")
        detections = run(engine, [Observation("r", "a", 0)])
        assert "my-watch" in repr(detections[0])
        assert detections[0].rule is rule


class TestConditionAndActionErrors:
    def test_condition_failure_wrapped(self):
        from repro.core.errors import ConditionError
        from repro.rules import Rule

        def broken(_context):
            raise RuntimeError("boom")

        engine = Engine([Rule("r", "broken", obs("r"), condition=broken)])
        with pytest.raises(ConditionError):
            engine.submit(Observation("r", "a", 0))

    def test_action_failure_wrapped(self):
        from repro.core.errors import ActionError
        from repro.rules import Rule

        def broken(_context):
            raise RuntimeError("boom")

        engine = Engine([Rule("r", "broken", obs("r"), actions=[broken])])
        with pytest.raises(ActionError):
            engine.submit(Observation("r", "a", 0))

    def test_false_condition_suppresses_detection(self):
        from repro.rules import Rule

        engine = Engine([Rule("r", "never", obs("r"), condition=False)])
        assert engine.submit(Observation("r", "a", 0)) == []
        assert engine.stats.detections == 0
