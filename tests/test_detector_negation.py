"""Negation semantics: pseudo events, pending kills, window boundaries.

Grounded in the paper's Fig. 8 walk-through and the infield/outfield
filtering rules of §3.1.
"""

import pytest

from repro import Engine, Observation, Var, Within, obs
from repro.core.expressions import And, Not, Seq, TSeq


class TestAndWithNegation:
    """WITHIN(E1 AND NOT E2, tau): two-sided negation window."""

    def _engine(self, tau=10.0):
        engine = Engine()
        engine.watch(Within(And(obs("A"), Not(obs("B"))), tau))
        return engine

    def test_clean_occurrence_confirms_at_expiration(self):
        engine = self._engine()
        assert engine.submit(Observation("A", "x", 20)) == []
        detections = engine.flush()
        assert len(detections) == 1
        assert detections[0].time == 30
        assert engine.stats.pseudo_fired == 1

    def test_lookback_kills(self):
        engine = self._engine()
        engine.submit(Observation("B", "u", 2))
        engine.submit(Observation("A", "x", 10))  # B@2 inside [0, 10]
        assert engine.flush() == []
        assert engine.stats.pending_killed >= 1

    def test_lookahead_kills(self):
        engine = self._engine()
        engine.submit(Observation("A", "x", 10))
        engine.submit(Observation("B", "u", 15))  # inside (10, 20]
        assert engine.flush() == []

    def test_lookback_boundary_inclusive(self):
        engine = self._engine()
        engine.submit(Observation("B", "u", 0))
        engine.submit(Observation("A", "x", 10))  # B exactly tau before
        assert engine.flush() == []

    def test_lookahead_boundary_inclusive(self):
        engine = self._engine()
        engine.submit(Observation("A", "x", 10))
        engine.submit(Observation("B", "u", 20))  # exactly at window end
        assert engine.flush() == []

    def test_negative_after_window_is_harmless(self):
        engine = self._engine()
        detections = list(
            engine.run([Observation("A", "x", 10), Observation("B", "u", 21)])
        )
        # The pseudo event at 20 fires before B@21 is processed, so the
        # match is confirmed mid-stream, not at flush.
        assert len(detections) == 1

    def test_negation_respects_bindings(self):
        engine = Engine()
        engine.watch(
            Within(And(obs("A", Var("o")), Not(obs("B", Var("o")))), 10)
        )
        engine.submit(Observation("A", "x", 10))
        engine.submit(Observation("B", "other", 12))  # different object
        detections = engine.flush()
        assert len(detections) == 1
        assert detections[0].bindings == {"o": "x"}

    def test_multiple_pendings_independent(self):
        engine = self._engine(tau=5.0)
        detections = list(
            engine.run(
                [
                    Observation("A", "x", 0),
                    Observation("A", "y", 2),
                    # B@6 is past x's window (0,5] (confirmed when the
                    # pseudo at 5 fires) but inside y's window (2,7].
                    Observation("B", "u", 6),
                ]
            )
        )
        assert len(detections) == 1
        assert detections[0].time == 5


class TestInfield:
    """WITHIN(NOT obs(r,o); obs(r,o), period): push-mode negation."""

    def _engine(self, period=30.0):
        engine = Engine()
        r, o = Var("r"), Var("o")
        engine.watch(Within(Seq(Not(obs(r, o)), obs(r, o)), period))
        return engine

    def test_first_sighting_is_infield(self):
        engine = self._engine()
        detections = engine.submit(Observation("s", "x", 100))
        assert len(detections) == 1

    def test_periodic_rereads_are_not_infield(self):
        engine = self._engine()
        engine.submit(Observation("s", "x", 0))
        assert engine.submit(Observation("s", "x", 30)) == []
        assert engine.submit(Observation("s", "x", 60)) == []

    def test_gap_larger_than_period_is_new_infield(self):
        engine = self._engine()
        engine.submit(Observation("s", "x", 0))
        detections = engine.submit(Observation("s", "x", 31))
        assert len(detections) == 1

    def test_per_object_windows(self):
        engine = self._engine()
        engine.submit(Observation("s", "x", 0))
        detections = engine.submit(Observation("s", "y", 10))
        assert len(detections) == 1  # y's first sighting despite x nearby

    def test_per_reader_windows(self):
        engine = self._engine()
        engine.submit(Observation("s1", "x", 0))
        detections = engine.submit(Observation("s2", "x", 10))
        assert len(detections) == 1  # same object, different shelf

    def test_no_pseudo_events_needed(self):
        # The paper: push-mode events need no pseudo events (§4.5).
        engine = self._engine()
        engine.submit(Observation("s", "x", 0))
        engine.submit(Observation("s", "x", 30))
        engine.flush()
        assert engine.stats.pseudo_scheduled == 0


class TestOutfield:
    """WITHIN(obs(r,o); NOT obs(r,o), period): pending + pseudo event."""

    def _engine(self, period=30.0):
        engine = Engine()
        r, o = Var("r"), Var("o")
        engine.watch(Within(Seq(obs(r, o), Not(obs(r, o))), period))
        return engine

    def test_removal_detected_one_period_after_last_read(self):
        engine = self._engine()
        engine.submit(Observation("s", "x", 0))
        engine.submit(Observation("s", "x", 30))
        detections = engine.flush()
        assert len(detections) == 1
        assert detections[0].time == 60  # 30 + period

    def test_continuous_presence_never_outfield(self):
        engine = self._engine()
        for tick in (0, 30, 60, 90):
            engine.submit(Observation("s", "x", tick))
        engine.submit(Observation("s", "x", 120))
        # Only the last read's pending survives the stream...
        detections = engine.flush()
        assert len(detections) == 1 and detections[0].time == 150

    def test_reread_at_exact_period_kills(self):
        engine = self._engine()
        detections = [
            detection
            for detection in engine.run(
                [
                    Observation("s", "x", 0),
                    Observation("s", "x", 30),  # boundary: still present
                    Observation("s", "y", 100),
                ]
            )
            if detection.bindings["o"] == "x"
        ]
        # x@0's pending is killed by the boundary re-read; x@30's pending
        # expires cleanly at 60 (fired while processing y@100).
        assert len(detections) == 1
        assert detections[0].time == 60

    def test_other_objects_do_not_kill(self):
        engine = self._engine()
        engine.submit(Observation("s", "x", 0))
        engine.submit(Observation("s", "y", 10))
        detections = [d for d in engine.flush() if d.bindings["o"] == "x"]
        assert detections and detections[0].time == 30


class TestTSeqNegation:
    def test_tseq_negated_initiator_window(self):
        # TSEQ(NOT A; B, 2, 5): no A in [t_end(b)-5, t_end(b)-2].
        engine = Engine()
        engine.watch(TSeq(Not(obs("A")), obs("B"), 2, 5))
        engine.submit(Observation("A", "x", 7))   # inside [5, 8] for B@10
        assert engine.submit(Observation("B", "y", 10)) == []

        engine2 = Engine()
        engine2.watch(TSeq(Not(obs("A")), obs("B"), 2, 5))
        engine2.submit(Observation("A", "x", 9))  # outside [5, 8]
        detections = engine2.submit(Observation("B", "y", 10))
        assert len(detections) == 1

    def test_tseq_negated_terminator_window(self):
        # TSEQ(A; NOT B, 2, 5): no B in (t+2, t+5].
        engine = Engine()
        engine.watch(TSeq(obs("A"), Not(obs("B")), 2, 5))
        engine.submit(Observation("A", "x", 0))
        engine.submit(Observation("B", "y", 1))   # before window start: harmless
        detections = engine.flush()
        assert len(detections) == 1 and detections[0].time == 5

        engine2 = Engine()
        engine2.watch(TSeq(obs("A"), Not(obs("B")), 2, 5))
        engine2.submit(Observation("A", "x", 0))
        engine2.submit(Observation("B", "y", 4))  # inside (2, 5]
        assert engine2.flush() == []


class TestPaperFig8StepByStep:
    def test_full_walkthrough(self):
        engine = Engine()
        engine.watch(Within(And(obs("rA"), Not(obs("rB"))), 10))

        # e2@2 buffered by the NOT child; nothing propagates.
        assert engine.submit(Observation("rB", "e2", 2)) == []
        # e1@10: lookback [0,10] contains e2@2 -> e1 deleted.
        assert engine.submit(Observation("rA", "e1", 10)) == []
        assert engine.stats.pending_killed == 1
        # e1@20: lookback [10,20] clean -> pseudo event at 30.
        assert engine.submit(Observation("rA", "e1", 20)) == []
        assert engine.stats.pseudo_scheduled == 1
        # Pseudo event fires at 30: non-occurrence over [20,30] -> detect.
        detections = engine.advance_to(30)
        assert len(detections) == 1
        instance = detections[0].instance
        assert (instance.t_begin, instance.t_end) == (20, 30)
