"""Sequence semantics: SEQ, TSEQ distance bounds, TSEQ+/SEQ+ chains."""

import pytest

from repro import Engine, Observation, Var, Within, obs
from repro.core.expressions import Or, Seq, SeqPlus, TSeq, TSeqPlus


def run(engine, stream):
    return list(engine.run(stream))


class TestTSeqBounds:
    def _engine(self, lower=2.0, upper=5.0):
        engine = Engine()
        engine.watch(TSeq(obs("A"), obs("B"), lower, upper))
        return engine

    @pytest.mark.parametrize("distance, expected", [
        (1.9, 0),   # below lower bound
        (2.0, 1),   # at lower bound (inclusive)
        (3.5, 1),
        (5.0, 1),   # at upper bound (inclusive)
        (5.1, 0),   # above upper bound
    ])
    def test_distance_window(self, distance, expected):
        engine = self._engine()
        detections = run(
            engine, [Observation("A", "x", 10), Observation("B", "y", 10 + distance)]
        )
        assert len(detections) == expected

    def test_expired_initiator_skipped_for_fresh_one(self):
        engine = self._engine()
        detections = run(
            engine,
            [
                Observation("A", "old", 0),
                Observation("A", "new", 10),
                Observation("B", "y", 13),  # dist(old)=13 >5; dist(new)=3 ok
            ],
        )
        assert len(detections) == 1
        assert [o.obj for o in detections[0].instance.observations()] == ["new", "y"]

    def test_zero_lower_bound_allows_immediate(self):
        engine = self._engine(lower=0.0)
        detections = run(
            engine, [Observation("A", "x", 0), Observation("B", "y", 0.5)]
        )
        assert len(detections) == 1


class TestSeqJoins:
    def test_join_on_object(self):
        engine = Engine()
        engine.watch(Within(Seq(obs("A", Var("o")), obs("B", Var("o"))), 100))
        detections = run(
            engine,
            [
                Observation("A", "x", 0),
                Observation("A", "y", 1),
                Observation("B", "y", 2),  # pairs with A/y, not A/x
                Observation("B", "x", 3),
            ],
        )
        assert [d.bindings["o"] for d in detections] == ["y", "x"]

    def test_join_key_bucketing_many_objects(self):
        engine = Engine()
        engine.watch(Within(Seq(obs("A", Var("o")), obs("B", Var("o"))), 1000))
        stream = []
        for index in range(50):
            stream.append(Observation("A", f"tag{index}", float(index)))
        for index in range(50):
            stream.append(Observation("B", f"tag{index}", 100.0 + index))
        detections = run(engine, stream)
        assert len(detections) == 50
        assert all(
            d.bindings["o"] == f"tag{i}" for i, d in enumerate(detections)
        )

    def test_or_initiator_with_partial_variables(self):
        # OR branches export different variables; the join key falls back
        # to a single bucket and unification filters pairs.
        left = obs("A1", Var("o"))
        right = obs("A2")  # binds nothing
        engine = Engine()
        engine.watch(Within(Seq(Or(left, right), obs("B", Var("o"))), 100))
        detections = run(
            engine,
            [
                Observation("A1", "x", 0),
                Observation("B", "x", 1),
                Observation("A2", "anything", 2),
                Observation("B", "y", 3),
            ],
        )
        assert len(detections) == 2


class TestTSeqPlusChains:
    def _engine(self, lower=0.0, upper=1.0, group_by=()):
        engine = Engine()
        engine.watch(TSeqPlus(obs("R", Var("o")), lower, upper, group_by=group_by))
        return engine

    def test_single_occurrence_is_a_chain(self):
        engine = self._engine()
        detections = run(engine, [Observation("R", "a", 0)])
        assert len(detections) == 1
        assert len(detections[0].instance.constituents) == 1

    def test_gap_within_bounds_extends(self):
        engine = self._engine()
        detections = run(
            engine,
            [Observation("R", "a", 0), Observation("R", "b", 0.5),
             Observation("R", "c", 1.4)],
        )
        assert len(detections) == 1
        assert len(detections[0].instance.constituents) == 3

    def test_gap_above_upper_splits(self):
        engine = self._engine()
        detections = run(
            engine, [Observation("R", "a", 0), Observation("R", "b", 2.0)]
        )
        assert len(detections) == 2

    def test_gap_below_lower_splits(self):
        engine = self._engine(lower=0.5, upper=1.0)
        detections = run(
            engine, [Observation("R", "a", 0), Observation("R", "b", 0.1)]
        )
        assert len(detections) == 2

    def test_gap_at_exact_upper_extends(self):
        engine = self._engine()
        detections = run(
            engine, [Observation("R", "a", 0), Observation("R", "b", 1.0)]
        )
        assert len(detections) == 1
        assert len(detections[0].instance.constituents) == 2

    def test_chain_closes_via_pseudo_event_mid_stream(self):
        engine = self._engine()
        detections = []
        detections += engine.submit(Observation("R", "a", 0))
        detections += engine.submit(Observation("R", "b", 0.5))
        assert detections == []
        # An unrelated event at t=5 advances the clock past 0.5 + 1.
        detections += engine.submit(Observation("other", "z", 5))
        assert len(detections) == 1

    def test_group_by_partitions_chains(self):
        engine = Engine()
        engine.watch(
            TSeqPlus(obs(Var("r"), Var("o")), 0.0, 1.0, group_by=("r",))
        )
        detections = run(
            engine,
            [
                Observation("R1", "a", 0.0),
                Observation("R2", "b", 0.4),
                Observation("R1", "c", 0.8),
                Observation("R2", "d", 1.2),
            ],
        )
        by_reader = {d.bindings["r"]: d for d in detections}
        assert len(detections) == 2
        assert len(by_reader["R1"].instance.constituents) == 2
        assert len(by_reader["R2"].instance.constituents) == 2

    def test_member_variables_are_local(self):
        engine = self._engine()
        detections = run(
            engine, [Observation("R", "a", 0), Observation("R", "b", 0.5)]
        )
        # Chain bindings do not include the member-local variable o.
        assert "o" not in detections[0].bindings
        members = detections[0].instance.constituents
        assert [m.bindings["o"] for m in members] == ["a", "b"]


class TestTSeqOfChain:
    """The paper's Rule 4 composition, beyond the Fig. 4 fixture."""

    def _engine(self):
        engine = Engine()
        event = TSeq(TSeqPlus(obs("A", Var("o1")), 0.1, 1.0), obs("B", Var("o2")), 10, 20)
        engine.watch(event)
        return engine

    def test_chain_then_case(self):
        engine = self._engine()
        stream = [Observation("A", f"i{k}", k * 0.5) for k in range(4)]
        stream.append(Observation("B", "case", 13.0))
        detections = run(engine, stream)
        assert len(detections) == 1
        observations = detections[0].instance.observations()
        assert [o.obj for o in observations] == ["i0", "i1", "i2", "i3", "case"]

    def test_case_too_early_rejected(self):
        engine = self._engine()
        stream = [Observation("A", "i", 0.0), Observation("B", "case", 5.0)]
        assert run(engine, stream) == []

    def test_case_too_late_rejected(self):
        engine = self._engine()
        stream = [Observation("A", "i", 0.0), Observation("B", "case", 25.0)]
        assert run(engine, stream) == []

    def test_chronicle_pairs_overlapping_chains(self):
        engine = self._engine()
        stream = [
            Observation("A", "x1", 0.0),
            Observation("A", "x2", 0.5),
            # second chain starts while first case reading is pending
            Observation("A", "y1", 4.0),
            Observation("A", "y2", 4.5),
            Observation("B", "caseX", 12.0),   # dist to x2: 11.5
            Observation("B", "caseY", 16.0),   # dist to y2: 11.5
        ]
        detections = run(engine, stream)
        assert len(detections) == 2
        first, second = detections
        assert [o.obj for o in first.instance.observations()] == ["x1", "x2", "caseX"]
        assert [o.obj for o in second.instance.observations()] == ["y1", "y2", "caseY"]


class TestSeqPlusWithin:
    def test_run_collects_window(self):
        engine = Engine()
        engine.watch(Within(SeqPlus(obs("R")), 10))
        detections = run(
            engine,
            [Observation("R", "a", 0), Observation("R", "b", 5),
             Observation("R", "c", 9)],
        )
        assert len(detections) == 1
        assert len(detections[0].instance.constituents) == 3

    def test_occurrence_past_window_starts_new_run(self):
        engine = Engine()
        engine.watch(Within(SeqPlus(obs("R")), 10))
        detections = run(
            engine, [Observation("R", "a", 0), Observation("R", "b", 15)]
        )
        assert len(detections) == 2

    def test_run_closes_at_expiry_even_mid_stream(self):
        engine = Engine()
        engine.watch(Within(SeqPlus(obs("R")), 10))
        collected = []
        collected += engine.submit(Observation("R", "a", 0))
        collected += engine.submit(Observation("other", "z", 50))
        assert len(collected) == 1
        assert collected[0].time == 10
