"""Failure injection: detection quality on dirty, realistic streams.

The paper's premise is that raw RFID data is unreliable — duplicates
from dwell/overlap/double-tagging, plus missed reads.  These tests drive
the cleaning + detection pipeline over deliberately degraded streams and
check the derived state still matches ground truth (or degrades only in
the ways physics forces it to).
"""

import random

import pytest

from repro import Engine, Observation, Var, obs
from repro.core.expressions import Seq, TSeq, TSeqPlus, Within
from repro.filtering import DuplicateFilter
from repro.readers import Reader, ReaderArray, inject_duplicates, sort_stream
from repro.rules import Rule
from repro.simulator import PackingConfig, simulate_packing
from repro.store import RfidStore


def containment_rule_raw():
    item = obs("r1", Var("o1"), t=Var("t1"))
    case = obs("r2", Var("o2"), t=Var("t2"))
    return Rule(
        "r4",
        "containment",
        TSeq(TSeqPlus(item, 0.0, 1.0), case, 10, 20),
        actions=["BULK INSERT INTO CONTAINMENT VALUES (o1, o2, t2, 'UC')"],
    )


class TestDoubleTaggedStream:
    def test_duplicates_break_naive_chains_filter_restores_them(self):
        """Duplicate readings 50ms apart violate the paper's Rule 4 gap
        bound pattern unless cleaned first — the motivation for layering
        Rule 1 before aggregation."""
        trace = simulate_packing(PackingConfig(cases=10), rng=random.Random(4))
        dirty = sort_stream(
            inject_duplicates(
                trace.observations, rate=0.4, rng=random.Random(5), delta=0.05
            )
        )
        assert len(dirty) > len(trace.observations)

        # Cleaned pipeline: duplicate filter in front of the engine.
        store = RfidStore()
        engine = Engine([containment_rule_raw()], store=store)
        cleaner = DuplicateFilter(window=2.0)
        for observation in cleaner.filter(dirty):
            engine.submit(observation)
        engine.flush()
        for case_epc, items in trace.expected_containments().items():
            assert store.contents_of(case_epc) == sorted(items)

    def test_duplicate_tolerant_bounds_absorb_item_duplicates(self):
        """Alternative to filtering *item* duplicates: a 0-lower-bound
        TSEQ+ absorbs near-simultaneous repeat readings into the chain.

        Case-reading duplicates are deliberately NOT injected: a repeated
        case reading is a fresh terminator that would (correctly, under
        chronicle semantics) grab the *next* chain — exactly why the
        paper cleans duplicates ahead of aggregation rather than relying
        on constraint tuning.  The filtered variant above handles both.
        """
        trace = simulate_packing(PackingConfig(cases=8), rng=random.Random(6))
        items_only = [o for o in trace.observations if o.reader == "r1"]
        cases_only = [o for o in trace.observations if o.reader == "r2"]
        dirty_items = inject_duplicates(
            items_only, rate=0.5, rng=random.Random(7), delta=0.05
        )
        dirty = sort_stream(list(dirty_items) + cases_only)
        store = RfidStore()
        engine = Engine([containment_rule_raw()], store=store)
        for observation in dirty:
            engine.submit(observation)
        engine.flush()
        for case_epc, items in trace.expected_containments().items():
            # Duplicates add repeated rows; the distinct contents match.
            assert store.contents_of(case_epc) == sorted(set(items))


class TestOverlappingReaders:
    def test_dock_array_duplicates_cleaned_by_group_filter(self):
        rng = random.Random(8)
        array = ReaderArray(
            [Reader("dock1", rng=rng), Reader("dock2", rng=rng)],
            overlap=1.0,
            rng=rng,
        )
        raw = []
        for index in range(20):
            raw.extend(array.observe(f"tag{index}", float(index)))
        assert len(raw) == 40  # every tag read twice

        groups = {"dock1": "dock", "dock2": "dock"}
        cleaner = DuplicateFilter(window=5.0, group_of=lambda r: groups[r])
        cleaned = list(cleaner.filter(sort_stream(raw)))
        assert len(cleaned) == 20
        assert cleaner.suppressed == 20


class TestMissedReads:
    def test_boundary_misses_shrink_but_never_corrupt(self):
        """A missed read at a chain boundary shrinks the case's contents
        (physics) but must not attach items to the wrong case.

        Dropping each case's *first* item keeps the remaining chain
        intact (the inner gaps are unchanged), so the expected effect is
        exactly "that one item missing".
        """
        trace = simulate_packing(
            PackingConfig(cases=10, items_per_case=4), rng=random.Random(9)
        )
        truth = trace.expected_containments()
        first_items = {items[0] for items in truth.values()}
        degraded = [
            observation
            for observation in trace.observations
            if observation.obj not in first_items
        ]
        store = RfidStore()
        engine = Engine([containment_rule_raw()], store=store)
        for observation in degraded:
            engine.submit(observation)
        engine.flush()
        for case_epc, items in truth.items():
            assert store.contents_of(case_epc) == sorted(items[1:])

    def test_infield_robust_to_one_missed_frame(self):
        """One missed bulk-read frame must not create a spurious
        outfield+infield pair when the period has 2x slack."""
        period = 30.0
        reader_var, object_var = Var("r"), Var("o")
        engine = Engine()
        infield = Within(
            Seq(Not_(obs(reader_var, object_var)), obs(reader_var, object_var)),
            2 * period + 1,
        )
        engine.watch(infield)
        # Frames at 0, 30, (60 missed), 90: with the widened window the
        # 30->90 gap is still covered.
        stream = [Observation("s", "x", t) for t in (0.0, 30.0, 90.0)]
        detections = list(engine.run(stream))
        assert len(detections) == 1  # only the true placement at t=0


# Local alias to keep the import list tidy above.
from repro.core.expressions import Not as Not_  # noqa: E402
