"""Run the documentation examples embedded in module docstrings.

Doc examples are part of the public contract; a drifting docstring is a
bug.  Every module with ``>>>`` examples is listed here explicitly so a
new doctest can't silently go unexecuted.
"""

import doctest

import pytest

import repro.core.contexts
import repro.core.expressions
import repro.core.instances
import repro.core.temporal
import repro.core.visualize
import repro.epc.codecs
import repro.epc.generator
import repro.filtering.duplicates
import repro.filtering.semantic
import repro.lang.events
import repro.lang.parser
import repro.lang.printer
import repro.readers.reader
import repro.readers.streams
import repro.rules.rule
import repro.scenarios
import repro.simulator.network
import repro.simulator.packing
import repro.sql.executor
import repro.sql.parser
import repro.store.render
import repro.workload.tags
import repro.workload.zipf

MODULES = [
    repro.core.contexts,
    repro.core.expressions,
    repro.core.instances,
    repro.core.temporal,
    repro.core.visualize,
    repro.epc.codecs,
    repro.epc.generator,
    repro.filtering.duplicates,
    repro.filtering.semantic,
    repro.lang.events,
    repro.lang.parser,
    repro.lang.printer,
    repro.readers.reader,
    repro.readers.streams,
    repro.rules.rule,
    repro.scenarios,
    repro.simulator.network,
    repro.simulator.packing,
    repro.sql.executor,
    repro.sql.parser,
    repro.store.render,
    repro.workload.tags,
    repro.workload.zipf,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_modules_with_examples_have_them_run():
    """Sanity: at least half the listed modules actually contain examples."""
    with_examples = 0
    for module in MODULES:
        finder = doctest.DocTestFinder()
        if any(test.examples for test in finder.find(module)):
            with_examples += 1
    assert with_examples >= len(MODULES) // 2
