"""Crash matrix for the durable layer: WAL + checkpoints + outbox.

The contract under test: for ANY crash point — between any two protocol
steps, at any stream position, with or without a checkpoint on disk —
``DurableEngine.recover()`` resumes so that total detections AND total
external deliveries equal an uninterrupted run's, exactly once each.

The quick matrix here runs on the small pair workload; the exhaustive
dirty-stream sweep (every index × every protocol stage on a
duplicate-injected simulator trace, supervised engine, sharded variant)
is marked ``slow`` and runs via ``pytest -m slow`` in CI.
"""

import random

import pytest

from repro import Engine, Observation, Var, obs
from repro.core.errors import CheckpointError, WalError
from repro.core.expressions import TSeq, TSeqPlus
from repro.core.sharding import ShardedEngine
from repro.readers import inject_duplicates, sort_stream
from repro.resilience import (
    DurableEngine,
    DurableShardedEngine,
    RetryPolicy,
    SimulatedCrash,
    SupervisedEngine,
    corrupt_checkpoint,
    crash_failpoint,
    kill_and_restore_run,
    tear_wal_tail,
)
from repro.resilience.durability import checkpoint_files
from repro.rules import Rule
from repro.simulator import PackingConfig, simulate_packing

STAGES = ("append", "detect", "deliver")


def is_ordered_subset(candidate, reference):
    """True when ``candidate`` is a subsequence of ``reference``.

    Mid-protocol crashes lose the crashed submission's *return value*
    (recovery re-detects it and routes it through the outbox, but replay
    output is deliberately not returned), so the detections a caller
    collects across lives are an ordered subset of an uninterrupted
    run's — while deliveries must match exactly.
    """
    iterator = iter(reference)
    return all(item in iterator for item in candidate)


def canon(detections):
    """Order-preserving canonical form: rule, time, bindings, leaf readings."""
    return [
        (
            detection.rule.rule_id,
            detection.time,
            sorted(detection.bindings.items(), key=lambda item: item[0]),
            [
                (reading.reader, reading.obj, reading.timestamp)
                for reading in detection.instance.observations()
            ],
        )
        for detection in detections
    ]


def pair_rules():
    return [
        Rule(
            "pair",
            "pair",
            TSeq(obs("a", Var("x")), obs("b", Var("x")), 0.0, 10.0),
            actions=[],
        )
    ]


def pair_stream():
    observations = [Observation("a", f"o{i}", float(i)) for i in range(6)]
    observations += [Observation("b", f"o{i}", float(i) + 4.0) for i in range(6)]
    observations.sort(key=lambda observation: observation.timestamp)
    return observations


def make_sink(deliveries):
    def sink(detection, seq, ordinal):
        deliveries.append((seq, ordinal, detection.rule.rule_id))

    return sink


def baseline_run(factory, stream, directory):
    """One uninterrupted durable run; returns (canon detections, deliveries)."""
    deliveries = []
    with DurableEngine(
        factory, directory, sink=make_sink(deliveries), checkpoint_every=3
    ) as durable:
        detections = list(durable.run(stream))
    return canon(detections), sorted(deliveries)


class TestDurableMatchesPlainEngine:
    def test_same_detections_as_bare_engine(self, tmp_path):
        stream = pair_stream()
        expected = canon(list(Engine(pair_rules()).run(stream)))
        with DurableEngine(
            lambda: Engine(pair_rules()), str(tmp_path / "d")
        ) as durable:
            found = list(durable.run(stream))
        assert canon(found) == expected

    def test_fresh_engine_refuses_dirty_directory(self, tmp_path):
        directory = str(tmp_path / "d")
        with DurableEngine(lambda: Engine(pair_rules()), directory) as durable:
            durable.submit(pair_stream()[0])
        with pytest.raises(WalError, match="already holds durable state"):
            DurableEngine(lambda: Engine(pair_rules()), directory)


class TestCrashMatrix:
    def test_boundary_kill_at_every_index(self, tmp_path):
        """Kill between observations at every position, via the chaos
        harness's durable-recovery mode."""
        stream = pair_stream()
        factory = lambda: Engine(pair_rules())  # noqa: E731
        expected, expected_deliveries = baseline_run(
            factory, stream, str(tmp_path / "base")
        )
        for kill_at in range(len(stream) + 1):
            directory = str(tmp_path / f"kill{kill_at}")
            deliveries = []
            sink = make_sink(deliveries)
            detections, revived = kill_and_restore_run(
                lambda: DurableEngine(
                    factory, directory, sink=sink, checkpoint_every=3
                ),
                stream,
                kill_at,
                recover=lambda: DurableEngine.recover(
                    factory, directory, sink=sink, checkpoint_every=3
                )[0],
            )
            revived.close()
            assert canon(detections) == expected, f"kill_at={kill_at}"
            assert sorted(deliveries) == expected_deliveries, f"kill_at={kill_at}"

    def test_failpoint_kill_at_every_stage_and_seq(self, tmp_path):
        """Crash *inside* the protocol — after append, after detect,
        after deliver — at every sequence number; deliveries must come
        out exactly once regardless."""
        stream = pair_stream()
        factory = lambda: Engine(pair_rules())  # noqa: E731
        expected, expected_deliveries = baseline_run(
            factory, stream, str(tmp_path / "base")
        )
        for stage in STAGES:
            for crash_seq in range(len(stream)):
                directory = str(tmp_path / f"{stage}{crash_seq}")
                deliveries = []
                sink = make_sink(deliveries)
                detections = []
                durable = DurableEngine(
                    factory, directory, sink=sink, checkpoint_every=3
                )
                durable.failpoint = crash_failpoint(stage, crash_seq)
                with pytest.raises(SimulatedCrash):
                    for observation in stream:
                        detections.extend(durable.submit(observation))
                del durable  # the kill: no close, no checkpoint
                revived, report = DurableEngine.recover(
                    factory, directory, sink=sink, checkpoint_every=3
                )
                for observation in stream[report.next_seq :]:
                    detections.extend(revived.submit(observation))
                detections.extend(revived.flush())
                revived.close()
                key = f"stage={stage} seq={crash_seq}"
                assert sorted(deliveries) == expected_deliveries, key
                assert is_ordered_subset(canon(detections), expected), key

    def test_double_crash_during_recovery_tail(self, tmp_path):
        """Crash, recover, crash again before the next checkpoint — the
        second recovery must still converge."""
        stream = pair_stream()
        factory = lambda: Engine(pair_rules())  # noqa: E731
        expected, expected_deliveries = baseline_run(
            factory, stream, str(tmp_path / "base")
        )
        directory = str(tmp_path / "d")
        deliveries = []
        sink = make_sink(deliveries)
        detections = []
        durable = DurableEngine(factory, directory, sink=sink, checkpoint_every=4)
        durable.failpoint = crash_failpoint("detect", 5)
        with pytest.raises(SimulatedCrash):
            for observation in stream:
                detections.extend(durable.submit(observation))
        del durable
        revived, report = DurableEngine.recover(
            factory, directory, sink=sink, checkpoint_every=4
        )
        revived.failpoint = crash_failpoint("deliver", 8)
        with pytest.raises(SimulatedCrash):
            for observation in stream[report.next_seq :]:
                detections.extend(revived.submit(observation))
        del revived
        final, report = DurableEngine.recover(
            factory, directory, sink=sink, checkpoint_every=4
        )
        for observation in stream[report.next_seq :]:
            detections.extend(final.submit(observation))
        detections.extend(final.flush())
        final.close()
        assert sorted(deliveries) == expected_deliveries
        assert is_ordered_subset(canon(detections), expected)


class TestDamagedState:
    def _crashed_dir(self, tmp_path, kill_at=9, checkpoint_every=3, **kwargs):
        stream = pair_stream()
        factory = lambda: Engine(pair_rules())  # noqa: E731
        directory = str(tmp_path / "d")
        durable = DurableEngine(
            factory, directory, checkpoint_every=checkpoint_every, **kwargs
        )
        for observation in stream[:kill_at]:
            durable.submit(observation)
        del durable
        return factory, directory, stream, kill_at

    def test_torn_wal_tail_truncated_and_resubmittable(self, tmp_path):
        # kill_at=8: the newest checkpoint (seq 5) does NOT cover the
        # torn final record (seq 7), so the tear genuinely loses it.
        factory, directory, stream, kill_at = self._crashed_dir(tmp_path, kill_at=8)
        import os

        _path, torn = tear_wal_tail(os.path.join(directory, "wal"), seed=3)
        assert torn > 0
        revived, report = DurableEngine.recover(factory, directory)
        assert report.torn_bytes_truncated > 0
        # The torn record's observation was lost; recovery hands back the
        # sequence to resume from and resubmission converges.
        assert report.next_seq == kill_at - 1
        detections = canon(
            [
                detection
                for observation in stream[report.next_seq :]
                for detection in revived.submit(observation)
            ]
            + revived.flush()
        )
        revived.close()
        # Suffix of the uninterrupted run's detections.
        full = canon(list(Engine(pair_rules()).run(stream)))
        assert detections == full[len(full) - len(detections) :]

    def test_corrupt_newest_checkpoint_falls_back(self, tmp_path):
        import os

        factory, directory, stream, kill_at = self._crashed_dir(tmp_path)
        names = checkpoint_files(directory)
        assert len(names) == 2
        corrupt_checkpoint(os.path.join(directory, names[-1]), mode="garble")
        revived, report = DurableEngine.recover(factory, directory)
        assert report.checkpoints_tried == 2
        assert report.checkpoint_seq < kill_at
        assert report.next_seq == kill_at
        expected = canon(list(Engine(pair_rules()).run(stream)))
        tail = canon(
            [
                detection
                for observation in stream[kill_at:]
                for detection in revived.submit(observation)
            ]
            + revived.flush()
        )
        revived.close()
        assert tail == expected[len(expected) - len(tail) :]

    def test_recovery_is_idempotent(self, tmp_path):
        factory, directory, stream, kill_at = self._crashed_dir(tmp_path)
        first, report1 = DurableEngine.recover(factory, directory)
        first.close()
        second, report2 = DurableEngine.recover(factory, directory)
        assert report2.next_seq == report1.next_seq
        detections = canon(
            [
                detection
                for observation in stream[report2.next_seq :]
                for detection in second.submit(observation)
            ]
            + second.flush()
        )
        second.close()
        expected = canon(list(Engine(pair_rules()).run(stream)))
        assert detections == expected[len(expected) - len(detections) :]

    def test_cold_replay_of_pruned_prefix_refused(self, tmp_path):
        """Checkpoints gone but the WAL pruned behind them: replaying
        from nothing would silently skip the pruned prefix."""
        import os

        factory, directory, _stream, _kill_at = self._crashed_dir(
            tmp_path, segment_max_bytes=120
        )
        assert not os.path.exists(
            os.path.join(directory, "wal", "wal-0000000000000000.seg")
        )  # pruning really happened
        for name in checkpoint_files(directory):
            os.unlink(os.path.join(directory, name))
        with pytest.raises(WalError, match="unrecoverable"):
            DurableEngine.recover(factory, directory)


class TestDurableSharded:
    def _rules(self):
        return [
            Rule(
                "pair",
                "pair",
                TSeq(obs("a", Var("x")), obs("b", Var("x")), 0.0, 10.0),
                actions=[],
            ),
            Rule(
                "cd",
                "cd",
                TSeq(obs("c", Var("x")), obs("d", Var("x")), 0.0, 10.0),
                actions=[],
            ),
            Rule(
                "any",
                "any",
                TSeq(obs(None, Var("x")), obs("b", Var("x")), 0.0, 10.0),
                actions=[],
            ),
        ]

    def _factory(self):
        return ShardedEngine(self._rules(), max_shards=3)

    def _stream(self):
        observations = [Observation("a", f"o{i}", float(i)) for i in range(4)]
        observations += [
            Observation("c", f"o{i}", float(i) + 0.5) for i in range(4)
        ]
        observations += [
            Observation("b", f"o{i}", float(i) + 4.0) for i in range(4)
        ]
        observations += [
            Observation("d", f"o{i}", float(i) + 4.5) for i in range(4)
        ]
        observations.sort(key=lambda observation: observation.timestamp)
        return observations

    def test_multiple_shards_exist(self):
        assert len(self._factory().shards) > 1

    def test_boundary_kill_at_every_index(self, tmp_path):
        stream = self._stream()
        deliveries0 = []
        with DurableShardedEngine(
            self._factory,
            str(tmp_path / "base"),
            sink=make_sink(deliveries0),
            checkpoint_every=3,
        ) as base:
            expected = canon(list(base.run(stream)))
        expected_deliveries = sorted(deliveries0)
        for kill_at in range(0, len(stream) + 1, 3):
            directory = str(tmp_path / f"kill{kill_at}")
            deliveries = []
            sink = make_sink(deliveries)
            detections, revived = kill_and_restore_run(
                lambda: DurableShardedEngine(
                    self._factory, directory, sink=sink, checkpoint_every=3
                ),
                stream,
                kill_at,
                recover=lambda: DurableShardedEngine.recover(
                    self._factory, directory, sink=sink, checkpoint_every=3
                )[0],
            )
            revived.close()
            assert canon(detections) == expected, f"kill_at={kill_at}"
            assert sorted(deliveries) == expected_deliveries, f"kill_at={kill_at}"

    def test_crash_between_shard_snapshots_and_manifest(self, tmp_path):
        """The manifest replace is the commit point: a crash after the
        shard snapshot files are written but before the manifest points
        at them must recover from the PREVIOUS cut, not the torso."""
        stream = self._stream()
        expected = canon(
            list(
                DurableShardedEngine(
                    self._factory, str(tmp_path / "base")
                ).run(stream)
            )
        )
        directory = str(tmp_path / "d")
        durable = DurableShardedEngine(
            self._factory, directory, checkpoint_every=3
        )
        crashed_at = None
        calls = 0

        def failpoint(stage, seq):
            nonlocal crashed_at, calls
            if stage == "checkpoint":
                calls += 1
                if calls == 2:  # let the first checkpoint commit
                    crashed_at = seq
                    raise SimulatedCrash(f"checkpoint at seq {seq}")

        durable.failpoint = failpoint
        detections = []
        with pytest.raises(SimulatedCrash):
            for observation in stream:
                detections.extend(durable.submit(observation))
        del durable
        revived, report = DurableShardedEngine.recover(
            self._factory, directory, checkpoint_every=3
        )
        # The aborted second cut was not committed...
        assert report.checkpoint_seq < crashed_at
        # ...but the WAL still covers everything that was submitted.
        assert report.next_seq == crashed_at + 1
        for observation in stream[report.next_seq :]:
            detections.extend(revived.submit(observation))
        detections.extend(revived.flush())
        revived.close()
        assert canon(detections) == expected


def containment_rule_raw():
    item = obs("r1", Var("o1"), t=Var("t1"))
    case = obs("r2", Var("o2"), t=Var("t2"))
    return Rule(
        "r4",
        "containment",
        TSeq(TSeqPlus(item, 0.0, 1.0), case, 10, 20),
        actions=[],
    )


@pytest.mark.slow
class TestExhaustiveDirtyStreamMatrix:
    """Every protocol stage × every sequence number, on a realistic
    duplicate-injected simulator trace behind a SupervisedEngine."""

    def _workload(self):
        trace = simulate_packing(PackingConfig(cases=4), rng=random.Random(11))
        dirty = sort_stream(
            inject_duplicates(
                trace.observations, rate=0.3, rng=random.Random(12), delta=0.05
            )
        )
        return dirty

    def _factory(self):
        return SupervisedEngine([containment_rule_raw()])

    def test_failpoint_kill_everywhere(self, tmp_path):
        stream = self._workload()
        expected, expected_deliveries = None, None
        deliveries0 = []
        with DurableEngine(
            self._factory,
            str(tmp_path / "base"),
            sink=make_sink(deliveries0),
            checkpoint_every=5,
            retry=RetryPolicy(attempts=1, base_delay=0.0),
        ) as base:
            expected = canon(list(base.run(stream)))
        expected_deliveries = sorted(deliveries0)

        for stage in STAGES:
            for crash_seq in range(len(stream)):
                directory = str(tmp_path / f"{stage}{crash_seq}")
                deliveries = []
                sink = make_sink(deliveries)
                detections = []
                durable = DurableEngine(
                    self._factory,
                    directory,
                    sink=sink,
                    checkpoint_every=5,
                    retry=RetryPolicy(attempts=1, base_delay=0.0),
                )
                durable.failpoint = crash_failpoint(stage, crash_seq)
                with pytest.raises(SimulatedCrash):
                    for observation in stream:
                        detections.extend(durable.submit(observation))
                del durable
                revived, report = DurableEngine.recover(
                    self._factory,
                    directory,
                    sink=sink,
                    checkpoint_every=5,
                    retry=RetryPolicy(attempts=1, base_delay=0.0),
                )
                for observation in stream[report.next_seq :]:
                    detections.extend(revived.submit(observation))
                detections.extend(revived.flush())
                revived.close()
                key = f"stage={stage} seq={crash_seq}"
                assert sorted(deliveries) == expected_deliveries, key
                assert is_ordered_subset(canon(detections), expected), key

    def test_checkpoint_corruption_sweep(self, tmp_path):
        """Garble or truncate the newest checkpoint at several kill
        points; recovery must fall back and still converge."""
        import os

        stream = self._workload()
        with DurableEngine(
            self._factory, str(tmp_path / "base"), checkpoint_every=5
        ) as base:
            expected = canon(list(base.run(stream)))
        for mode in ("truncate", "garble"):
            for kill_at in range(12, len(stream), 7):
                directory = str(tmp_path / f"{mode}{kill_at}")
                durable = DurableEngine(
                    self._factory, directory, checkpoint_every=5
                )
                detections = []
                for observation in stream[:kill_at]:
                    detections.extend(durable.submit(observation))
                del durable
                names = checkpoint_files(directory)
                if names:
                    corrupt_checkpoint(
                        os.path.join(directory, names[-1]), mode=mode, seed=kill_at
                    )
                revived, report = DurableEngine.recover(self._factory, directory)
                for observation in stream[report.next_seq :]:
                    detections.extend(revived.submit(observation))
                detections.extend(revived.flush())
                revived.close()
                assert canon(detections) == expected, f"{mode} kill_at={kill_at}"


class TestCheckpointErrorType:
    def test_corrupt_checkpoint_load_raises_checkpoint_error(self, tmp_path):
        from repro.resilience import load_checkpoint, save_checkpoint

        path = str(tmp_path / "c.json")
        save_checkpoint({"format": "x", "version": 1}, path)
        corrupt_checkpoint(path, mode="garble")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


class TestClientFrontiers:
    """WAL-backed client ack frontiers: the serving layer's provenance.

    ``submit(..., client=(id, seq))`` commits the frontier inside the
    same WAL record as the observation, so an ack derived from it is
    durable exactly when the observation is — ``recover()`` must rebuild
    the map from checkpoints plus WAL tail, in every pruning scenario.
    """

    def _factory(self):
        return Engine(pair_rules())

    def test_frontiers_rebuilt_from_wal_tail(self, tmp_path):
        directory = str(tmp_path / "frontier")
        stream = pair_stream()
        with DurableEngine(self._factory, directory) as durable:
            for index, observation in enumerate(stream):
                durable.submit(observation, client=("station-1", index))
            durable.flush(client=("station-1", len(stream)))
            assert durable.client_frontiers == {"station-1": len(stream)}
        revived, _report = DurableEngine.recover(self._factory, directory)
        assert revived.client_frontiers == {"station-1": len(stream)}
        revived.close()

    def test_frontiers_survive_wal_pruning_via_checkpoint_sidecar(
        self, tmp_path
    ):
        directory = str(tmp_path / "pruned")
        stream = pair_stream()
        with DurableEngine(
            self._factory, directory, checkpoint_every=4, keep_checkpoints=1
        ) as durable:
            for index, observation in enumerate(stream):
                durable.submit(observation, client=("station-1", index))
            # Force a final cut so every WAL record is behind a checkpoint:
            # the frontier must come from the sidecar alone.
            durable.checkpoint_now()
        revived, report = DurableEngine.recover(self._factory, directory)
        assert report.replayed_records == 0
        assert revived.client_frontiers == {"station-1": len(stream) - 1}
        revived.close()

    def test_frontiers_track_multiple_clients(self, tmp_path):
        directory = str(tmp_path / "multi")
        stream = pair_stream()
        with DurableEngine(self._factory, directory) as durable:
            for index, observation in enumerate(stream):
                client_id = f"station-{index % 2}"
                durable.submit(observation, client=(client_id, index // 2))
        revived, _report = DurableEngine.recover(self._factory, directory)
        half = len(stream) // 2
        assert revived.client_frontiers == {
            "station-0": half - 1,
            "station-1": half - 1,
        }
        revived.close()

    def test_sharded_frontiers_rebuilt_including_unrouted_noop(self, tmp_path):
        directory = str(tmp_path / "sharded")

        def factory():
            # No catch-all rule: reader "nobody" routes to no shard.
            return ShardedEngine(
                [
                    Rule(
                        "p1",
                        "p1",
                        TSeq(obs("a", Var("x")), obs("b", Var("x")), 0.0, 10.0),
                        actions=[],
                    ),
                    Rule(
                        "p2",
                        "p2",
                        TSeq(obs("c", Var("x")), obs("d", Var("x")), 0.0, 10.0),
                        actions=[],
                    ),
                ],
                max_shards=2,
            )

        durable = DurableShardedEngine(factory, directory)
        assert durable.coordinator.routes_for(
            Observation("nobody", "x", 0.0)
        ) == []
        durable.submit(Observation("a", "o1", 0.0), client=("edge", 0))
        # Routes nowhere — a frontier-only no-op record must keep the
        # client's ack durable anyway.
        durable.submit(Observation("nobody", "x", 1.0), client=("edge", 1))
        durable.submit(Observation("b", "o1", 2.0), client=("edge", 2))
        assert durable.client_frontiers == {"edge": 2}
        durable.close()
        revived, _report = DurableShardedEngine.recover(factory, directory)
        assert revived.client_frontiers == {"edge": 2}
        revived.close()

    def test_sharded_frontiers_survive_manifest_cut(self, tmp_path):
        directory = str(tmp_path / "sharded-cut")

        def factory():
            return ShardedEngine(
                [
                    Rule(
                        "p1",
                        "p1",
                        TSeq(obs("a", Var("x")), obs("b", Var("x")), 0.0, 10.0),
                        actions=[],
                    ),
                    Rule(
                        "p2",
                        "p2",
                        TSeq(obs("c", Var("x")), obs("d", Var("x")), 0.0, 10.0),
                        actions=[],
                    ),
                ],
                max_shards=2,
            )

        durable = DurableShardedEngine(
            factory, directory, keep_checkpoints=1
        )
        for index, reader in enumerate(("a", "c", "b", "d")):
            durable.submit(
                Observation(reader, "o1", float(index)), client=("edge", index)
            )
        durable.checkpoint_now()  # prunes the per-shard WALs behind the cut
        durable.close()
        revived, report = DurableShardedEngine.recover(factory, directory)
        assert report.replayed_records == 0
        assert revived.client_frontiers == {"edge": 3}
        revived.close()
