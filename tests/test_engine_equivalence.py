"""Cross-configuration equivalence properties of the engine.

Structural optimizations (sub-graph merging) and operational knobs (GC
cadence) must never change detection results; these properties pin that
down on randomized streams and rule sets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine, Observation, Var, Within, obs
from repro.core.expressions import And, Not, Seq, TSeq, TSeqPlus


@st.composite
def streams(draw, max_size=35):
    entries = draw(
        st.lists(
            st.tuples(
                st.sampled_from(("A", "B", "C")),
                st.sampled_from(("o1", "o2")),
                st.integers(0, 8),
            ),
            max_size=max_size,
        )
    )
    stream = []
    time = 0.0
    for reader, obj, gap in entries:
        time += gap * 0.5
        stream.append(Observation(reader, obj, time))
    return stream


def rule_set():
    """Three rules with a shared sub-event (the obs('A') leaf)."""
    shared = obs("A", Var("o"))
    return [
        Within(Seq(shared, obs("B", Var("o"))), 10),
        TSeq(TSeqPlus(shared, 0.5, 2.0), obs("C", Var("o2")), 1.0, 6.0),
        Within(And(shared, Not(obs("C", Var("o")))), 4),
    ]


def detect(stream, **engine_kwargs):
    engine = Engine(**engine_kwargs)
    for index, event in enumerate(rule_set()):
        engine.watch(event, name=f"rule-{index}")
    return [
        (detection.rule.rule_id, round(detection.time, 6),
         round(detection.instance.t_begin, 6))
        for detection in engine.run(stream)
    ]


@given(streams())
@settings(max_examples=100, deadline=None)
def test_merge_flag_does_not_change_results(stream):
    merged = detect(stream, merge_common_subgraphs=True)
    unmerged = detect(stream, merge_common_subgraphs=False)
    assert merged == unmerged


@given(streams())
@settings(max_examples=100, deadline=None)
def test_gc_cadence_does_not_change_results(stream):
    eager = detect(stream, gc_every=1)
    lazy = detect(stream, gc_every=10**9)
    assert eager == lazy


@given(streams())
@settings(max_examples=75, deadline=None)
def test_chronicle_detections_subset_of_unrestricted(stream):
    """Chronicle restricts unrestricted: every chronicle SEQ match exists
    among the unrestricted matches of the same event."""
    event = Within(Seq(obs("A", Var("o")), obs("B", Var("o"))), 10)

    def pairs(context_name):
        engine = Engine(context=context_name)
        engine.watch(event)
        found = set()
        for detection in engine.run(stream):
            observations = detection.instance.observations()
            found.add(tuple((o.reader, o.obj, o.timestamp) for o in observations))
        return found

    assert pairs("chronicle") <= pairs("unrestricted")


@given(streams())
@settings(max_examples=75, deadline=None)
def test_submit_batching_is_irrelevant(stream):
    """Detections are identical whether results are drained per-submit
    or all at once through run()."""
    engine_a = Engine()
    engine_a.watch(rule_set()[0])
    collected = []
    for observation in stream:
        collected.extend(engine_a.submit(observation))
    collected.extend(engine_a.flush())

    engine_b = Engine()
    engine_b.watch(rule_set()[0])
    streamed = list(engine_b.run(stream))

    key = lambda d: (d.time, d.instance.t_begin, d.instance.t_end)  # noqa: E731
    assert [key(d) for d in collected] == [key(d) for d in streamed]
