"""Generative engine fuzz: random valid rules over random streams.

The strongest crash-resistance statement the suite makes: ANY expression
the algebra accepts, compiled into an engine (alone or alongside other
random rules, with merging on), processes ANY time-ordered stream
without raising and deterministically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CompileError, Engine, Observation, Var, Within, obs
from repro.core.expressions import (
    And,
    Not,
    Or,
    Periodic,
    Seq,
    SeqPlus,
    TSeq,
    TSeqPlus,
)

_READERS = ("A", "B", "C")


@st.composite
def random_primitive(draw):
    reader = draw(st.sampled_from(_READERS + (None,)))
    obj = draw(st.sampled_from((None, Var("o"), Var("p"), "o1")))
    t = Var("t1") if draw(st.booleans()) else None
    return obs(reader, obj, t=t)


@st.composite
def random_expression(draw, depth=2):
    if depth == 0:
        return draw(random_primitive())
    child = random_expression(depth=depth - 1)
    choice = draw(st.integers(0, 7))
    lower = draw(st.integers(0, 2)) * 0.5
    upper = lower + draw(st.integers(1, 4)) * 0.5

    def positive(expression):
        return draw(random_primitive()) if isinstance(expression, Not) else expression

    if choice == 0:
        return Or(positive(draw(child)), positive(draw(child)))
    if choice == 1:
        return And(positive(draw(child)), draw(child))
    if choice == 2:
        return Seq(draw(child), positive(draw(child)))
    if choice == 3:
        return TSeq(positive(draw(child)), draw(child), lower, upper)
    if choice == 4:
        return SeqPlus(positive(draw(child)))
    if choice == 5:
        return TSeqPlus(positive(draw(child)), lower, upper)
    if choice == 6:
        return Periodic(positive(draw(child)), upper)
    return Not(positive(draw(child)))


@st.composite
def random_stream(draw):
    entries = draw(
        st.lists(
            st.tuples(st.sampled_from(_READERS), st.integers(0, 6)),
            max_size=25,
        )
    )
    stream = []
    time = 0.0
    for reader, gap in entries:
        time += gap * 0.5
        stream.append(Observation(reader, f"o{len(stream) % 3}", time))
    return stream


@given(st.lists(random_expression(), min_size=1, max_size=4), random_stream())
@settings(max_examples=200, deadline=None)
def test_any_compilable_rule_set_runs(expressions, stream):
    engine = Engine()
    added = 0
    for index, expression in enumerate(expressions):
        try:
            engine.watch(Within(expression, 30.0), name=f"fuzz-{index}")
            added += 1
        except CompileError:
            continue  # undetectable shapes are rejected up front: fine
    if added == 0:
        return
    first = [
        (detection.rule.rule_id, detection.time)
        for detection in engine.run(stream)
    ]

    # Determinism: a fresh engine over the same input reproduces exactly.
    engine2 = Engine()
    for index, expression in enumerate(expressions):
        try:
            engine2.watch(Within(expression, 30.0), name=f"fuzz-{index}")
        except CompileError:
            continue
    second = [
        (detection.rule.rule_id, detection.time)
        for detection in engine2.run(stream)
    ]
    assert first == second


@given(st.lists(random_expression(), min_size=2, max_size=4), random_stream())
@settings(max_examples=100, deadline=None)
def test_merging_is_transparent_under_fuzz(expressions, stream):
    def detect(merge):
        engine = Engine(merge_common_subgraphs=merge)
        for index, expression in enumerate(expressions):
            try:
                engine.watch(Within(expression, 30.0), name=f"fuzz-{index}")
            except CompileError:
                continue
        return sorted(
            (detection.rule.rule_id, round(detection.time, 6))
            for detection in engine.run(stream)
        )

    assert detect(True) == detect(False)
