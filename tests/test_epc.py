"""Unit tests for the EPC substrate: codecs, registries, factory."""

import pytest

from repro.epc import (
    EpcError,
    EpcFactory,
    Gid96,
    Grai96,
    ReaderGroupRegistry,
    Sgtin96,
    Sscc96,
    TypeRegistry,
    decode,
    scheme_of,
)


class TestSgtin96:
    def test_tds_reference_example(self):
        # The canonical SGTIN-96 example from the EPC Tag Data Standard.
        tag = Sgtin96(3, 614141, 7, 812345, 6789)
        assert tag.to_hex() == "3074257BF7194E4000001A85"
        assert tag.to_uri() == "urn:epc:tag:sgtin-96:3.0614141.812345.6789"

    def test_roundtrip(self):
        tag = Sgtin96(1, 12345, 6, 7777777, 123456789)
        assert decode(tag.to_hex()) == tag
        assert decode(tag.to_int()) == tag

    @pytest.mark.parametrize("digits", [6, 7, 8, 9, 10, 11, 12])
    def test_all_partitions(self, digits):
        tag = Sgtin96(0, 10 ** (digits - 1), digits, 1, 1)
        assert decode(tag.to_hex()) == tag
        assert tag.partition == 12 - digits

    def test_filter_out_of_range(self):
        with pytest.raises(EpcError):
            Sgtin96(8, 614141, 7, 812345, 1)

    def test_company_prefix_too_long(self):
        with pytest.raises(EpcError):
            Sgtin96(1, 12345678, 7, 1, 1)

    def test_item_reference_too_long(self):
        with pytest.raises(EpcError):
            Sgtin96(1, 614141, 7, 12345678, 1)  # 7 digits > 6 allowed

    def test_serial_38_bits(self):
        Sgtin96(1, 614141, 7, 1, (1 << 38) - 1)
        with pytest.raises(EpcError):
            Sgtin96(1, 614141, 7, 1, 1 << 38)

    def test_invalid_company_digits(self):
        with pytest.raises(EpcError):
            Sgtin96(1, 1, 5, 1, 1)


class TestOtherSchemes:
    def test_sscc_roundtrip(self):
        tag = Sscc96(2, 614141, 7, 1234567890)
        assert decode(tag.to_hex()) == tag
        assert tag.to_hex().startswith("31")

    def test_sscc_uri(self):
        tag = Sscc96(0, 614141, 7, 12)
        assert tag.to_uri() == "urn:epc:tag:sscc-96:0.0614141.0000000012"

    def test_grai_roundtrip(self):
        tag = Grai96(1, 614141, 7, 54321, 99)
        assert decode(tag.to_hex()) == tag
        assert tag.to_hex().startswith("33")

    def test_gid_roundtrip(self):
        tag = Gid96(0xBADE, 42, 123456)
        assert decode(tag.to_hex()) == tag
        assert tag.to_hex().startswith("35")

    def test_gid_field_limits(self):
        Gid96((1 << 28) - 1, (1 << 24) - 1, (1 << 36) - 1)
        with pytest.raises(EpcError):
            Gid96(1 << 28, 0, 0)
        with pytest.raises(EpcError):
            Gid96(0, 1 << 24, 0)
        with pytest.raises(EpcError):
            Gid96(0, 0, 1 << 36)

    def test_scheme_of(self):
        assert scheme_of(Sscc96(0, 614141, 7, 1).to_hex()) == "sscc-96"
        assert scheme_of(Gid96(1, 2, 3).to_hex()) == "gid-96"


class TestDecodeErrors:
    def test_wrong_length(self):
        with pytest.raises(EpcError):
            decode("3074")

    def test_not_hex(self):
        with pytest.raises(EpcError):
            decode("Z" * 24)

    def test_unknown_header(self):
        with pytest.raises(EpcError):
            decode("FF" + "0" * 22)

    def test_negative_int(self):
        with pytest.raises(EpcError):
            decode(-1)

    def test_too_large_int(self):
        with pytest.raises(EpcError):
            decode(1 << 96)

    def test_invalid_partition(self):
        # header sgtin (0x30), filter 0, partition 7 (invalid)
        value = (0x30 << 88) | (7 << 82)
        with pytest.raises(EpcError):
            decode(value)


class TestTypeRegistry:
    def setup_method(self):
        self.registry = TypeRegistry()
        self.laptop_class = Sgtin96(1, 614141, 7, 812345, 0)
        self.registry.register_class(self.laptop_class, "laptop")
        self.registry.register_scheme_default("sscc-96", "pallet")

    def test_class_rule_ignores_serial(self):
        tag = Sgtin96(1, 614141, 7, 812345, 424242)
        assert self.registry.type_of(tag.to_hex()) == "laptop"

    def test_other_item_reference_unknown(self):
        tag = Sgtin96(1, 614141, 7, 999999, 1)
        assert self.registry.type_of(tag.to_hex()) is None

    def test_scheme_default(self):
        tag = Sscc96(0, 614141, 7, 5)
        assert self.registry.type_of(tag.to_hex()) == "pallet"

    def test_epc_override_wins(self):
        tag = Sgtin96(1, 614141, 7, 812345, 7).to_hex()
        self.registry.register_epc(tag, "demo-unit")
        assert self.registry.type_of(tag) == "demo-unit"

    def test_fallback_for_raw_strings(self):
        self.registry.register_fallback("plainid", "widget")
        assert self.registry.type_of("plainid") == "widget"
        assert self.registry.type_of("unknownid") is None

    def test_callable_protocol(self):
        tag = Sscc96(0, 614141, 7, 5).to_hex()
        assert self.registry(tag) == "pallet"

    def test_grai_and_gid_class_rules(self):
        self.registry.register_class(Grai96(0, 614141, 7, 7001, 0), "laptop")
        self.registry.register_class(Gid96(1, 42, 0), "superuser")
        assert self.registry.type_of(Grai96(0, 614141, 7, 7001, 9).to_hex()) == "laptop"
        assert self.registry.type_of(Gid96(1, 42, 9).to_hex()) == "superuser"


class TestReaderGroups:
    def test_default_singleton_group(self):
        registry = ReaderGroupRegistry()
        assert registry.group_of("r77") == "r77"

    def test_assignment(self):
        registry = ReaderGroupRegistry()
        registry.assign("r1", "dock")
        registry.assign_all(["r2", "r3"], "dock")
        assert registry("r2") == "dock"
        assert registry.members("dock") == ["r1", "r2", "r3"]

    def test_reassignment(self):
        registry = ReaderGroupRegistry()
        registry.assign("r1", "dock")
        registry.assign("r1", "gate")
        assert registry.group_of("r1") == "gate"
        assert registry.members("dock") == []


class TestEpcFactory:
    def test_uniqueness_within_class(self):
        factory = EpcFactory()
        tags = {factory.item(812345) for _ in range(100)}
        assert len(tags) == 100

    def test_item_type_stable(self):
        factory = EpcFactory()
        decoded = decode(factory.item(812345))
        assert isinstance(decoded, Sgtin96)
        assert decoded.item_reference == 812345

    def test_case_is_sscc(self):
        assert isinstance(decode(EpcFactory().case()), Sscc96)

    def test_asset_is_grai(self):
        decoded = decode(EpcFactory().asset(7001))
        assert isinstance(decoded, Grai96)
        assert decoded.asset_type == 7001

    def test_badge_is_gid(self):
        decoded = decode(EpcFactory().badge(42))
        assert isinstance(decoded, Gid96)
        assert decoded.object_class == 42

    def test_items_generator(self):
        factory = EpcFactory()
        batch = list(factory.items(812345, 5))
        assert len(set(batch)) == 5

    def test_determinism(self):
        assert [EpcFactory().item(1) for _ in range(1)] == [
            EpcFactory().item(1) for _ in range(1)
        ]


class TestSgln96:
    def test_roundtrip(self):
        from repro.epc import Sgln96

        tag = Sgln96(1, 614141, 7, 12345, 400)
        assert decode(tag.to_hex()) == tag
        assert tag.to_hex().startswith("32")

    def test_uri(self):
        from repro.epc import Sgln96

        tag = Sgln96(0, 614141, 7, 7, 0)
        assert tag.to_uri() == "urn:epc:tag:sgln-96:0.0614141.00007.0"

    @pytest.mark.parametrize("digits", [6, 7, 8, 9, 10, 11, 12])
    def test_all_partitions(self, digits):
        from repro.epc import Sgln96

        location_digits = {12: 0, 11: 1, 10: 2, 9: 3, 8: 4, 7: 5, 6: 6}[digits]
        location = 10 ** location_digits - 1 if location_digits else 0
        tag = Sgln96(2, 10 ** (digits - 1), digits, location, 99)
        assert decode(tag.to_hex()) == tag

    def test_extension_41_bits(self):
        from repro.epc import Sgln96

        Sgln96(0, 614141, 7, 1, (1 << 41) - 1)
        with pytest.raises(EpcError):
            Sgln96(0, 614141, 7, 1, 1 << 41)

    def test_scheme_of(self):
        from repro.epc import Sgln96

        assert scheme_of(Sgln96(0, 614141, 7, 1, 1).to_hex()) == "sgln-96"

    def test_reader_identity_use(self):
        """Readers can be SGLN-identified and still work as reader EPCs."""
        from repro import Engine, Observation, obs
        from repro.epc import Sgln96

        portal = Sgln96(1, 614141, 7, 42, 1).to_hex()
        engine = Engine()
        engine.watch(obs(portal))
        detections = list(engine.run([Observation(portal, "tag", 0.0)]))
        assert len(detections) == 1
