"""Property-based tests: EPC encode/decode round-trips for every scheme."""

from hypothesis import given
from hypothesis import strategies as st

from repro.epc import Gid96, Grai96, Sgtin96, Sscc96, decode

_SGTIN_PARTITIONS = {
    0: (12, 1),
    1: (11, 2),
    2: (10, 3),
    3: (9, 4),
    4: (8, 5),
    5: (7, 6),
    6: (6, 7),
}
_SSCC_PARTITIONS = {
    0: (12, 5),
    1: (11, 6),
    2: (10, 7),
    3: (9, 8),
    4: (8, 9),
    5: (7, 10),
    6: (6, 11),
}
_GRAI_PARTITIONS = {
    0: (12, 0),
    1: (11, 1),
    2: (10, 2),
    3: (9, 3),
    4: (8, 4),
    5: (7, 5),
    6: (6, 6),
}


def _digits_strategy(digits):
    return st.integers(min_value=0, max_value=10 ** digits - 1)


@st.composite
def sgtin_tags(draw):
    partition = draw(st.integers(0, 6))
    company_digits, item_digits = _SGTIN_PARTITIONS[partition]
    return Sgtin96(
        draw(st.integers(0, 7)),
        draw(_digits_strategy(company_digits)),
        company_digits,
        draw(_digits_strategy(item_digits)),
        draw(st.integers(0, (1 << 38) - 1)),
    )


@st.composite
def sscc_tags(draw):
    partition = draw(st.integers(0, 6))
    company_digits, serial_digits = _SSCC_PARTITIONS[partition]
    return Sscc96(
        draw(st.integers(0, 7)),
        draw(_digits_strategy(company_digits)),
        company_digits,
        draw(_digits_strategy(serial_digits)),
    )


@st.composite
def grai_tags(draw):
    partition = draw(st.integers(0, 6))
    company_digits, type_digits = _GRAI_PARTITIONS[partition]
    asset_type = draw(_digits_strategy(type_digits)) if type_digits else 0
    return Grai96(
        draw(st.integers(0, 7)),
        draw(_digits_strategy(company_digits)),
        company_digits,
        asset_type,
        draw(st.integers(0, (1 << 38) - 1)),
    )


@st.composite
def gid_tags(draw):
    return Gid96(
        draw(st.integers(0, (1 << 28) - 1)),
        draw(st.integers(0, (1 << 24) - 1)),
        draw(st.integers(0, (1 << 36) - 1)),
    )


@given(sgtin_tags())
def test_sgtin_roundtrip(tag):
    assert decode(tag.to_hex()) == tag


@given(sscc_tags())
def test_sscc_roundtrip(tag):
    assert decode(tag.to_hex()) == tag


@given(grai_tags())
def test_grai_roundtrip(tag):
    assert decode(tag.to_hex()) == tag


@given(gid_tags())
def test_gid_roundtrip(tag):
    assert decode(tag.to_hex()) == tag


@given(st.one_of(sgtin_tags(), sscc_tags(), grai_tags(), gid_tags()))
def test_hex_is_24_digits_and_stable(tag):
    payload = tag.to_hex()
    assert len(payload) == 24
    assert payload == tag.to_hex()
    assert decode(payload).to_hex() == payload


@given(sgtin_tags(), sgtin_tags())
def test_distinct_tags_distinct_hex(first, second):
    if first != second:
        assert first.to_hex() != second.to_hex()
