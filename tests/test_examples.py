"""Every example script must run cleanly (they self-check their output)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{path.name} printed nothing"
