"""Export completeness: ``__all__`` must match each package's surface.

A public name bound in the package namespace that is missing from
``__all__`` is invisible to ``from pkg import *`` and to doc tooling; a
name in ``__all__`` that does not resolve is an ImportError waiting for
the first star-import.  These tests pin both directions for the
packages that form the system's public seams.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro.scenarios",
    "repro.serve",
    "repro.simulator",
    "repro.workload",
]


def _public_surface(module) -> set:
    """Public, non-module names actually bound in the namespace."""
    return {
        name
        for name, value in vars(module).items()
        if not name.startswith("_") and not inspect.ismodule(value)
    }


@pytest.mark.parametrize("package", PACKAGES)
def test_all_matches_public_names(package):
    module = importlib.import_module(package)
    exported = set(module.__all__)
    public = _public_surface(module)
    assert exported == public, (
        f"{package}: missing from __all__: {sorted(public - exported)}; "
        f"in __all__ but not bound: {sorted(exported - public)}"
    )


@pytest.mark.parametrize("package", PACKAGES)
def test_all_unique(package):
    module = importlib.import_module(package)
    exported = list(module.__all__)
    assert len(exported) == len(set(exported)), f"{package}: duplicates"


@pytest.mark.parametrize("package", PACKAGES)
def test_star_import_resolves(package):
    module = importlib.import_module(package)
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} does not resolve"
