"""Unit tests for the event type algebra (repro.core.expressions)."""

import pytest

from repro import ExpressionError
from repro.core.expressions import (
    And,
    Not,
    ObservationType,
    Or,
    Seq,
    SeqPlus,
    TSeq,
    TSeqPlus,
    Var,
    Within,
    obs,
)


class TestVar:
    def test_equality_by_name(self):
        assert Var("o") == Var("o")
        assert Var("o") != Var("p")
        assert hash(Var("o")) == hash(Var("o"))

    @pytest.mark.parametrize("bad", ["", "1abc", "a-b", "a b"])
    def test_invalid_names(self, bad):
        with pytest.raises(ExpressionError):
            Var(bad)


class TestObservationType:
    def test_defaults_are_wildcards(self):
        event = obs()
        assert event.reader is None and event.obj is None
        assert event.own_variables() == ()

    def test_variables_collected(self):
        event = obs(Var("r"), Var("o"), t=Var("t"))
        assert event.own_variables() == ("r", "o", "t")
        assert event.variables() == {"r", "o", "t"}

    def test_literal_reader_with_group_rejected(self):
        with pytest.raises(ExpressionError):
            obs("r1", group="g1")

    def test_var_reader_with_group_allowed(self):
        event = obs(Var("r"), group="g1")
        assert event.group == "g1"

    def test_key_distinguishes_fields(self):
        assert obs("r1").key() != obs("r2").key()
        assert obs("r1").key() != obs(Var("r1")).key()
        assert obs("r1", obj_type="case").key() != obs("r1").key()
        assert obs("r1", t=Var("t")).key() != obs("r1").key()

    def test_key_equal_for_equal_structure(self):
        assert obs(Var("r"), Var("o")).key() == obs(Var("r"), Var("o")).key()

    def test_where_identity_in_key(self):
        predicate = lambda observation: True  # noqa: E731
        assert obs("r", where=predicate).key() == obs("r", where=predicate).key()
        assert obs("r", where=predicate).key() != obs("r", where=lambda o: True).key()

    def test_repr(self):
        text = repr(obs("r1", Var("o"), obj_type="case"))
        assert "r1" in text and "case" in text


class TestOperatorSugar:
    def test_or(self):
        assert isinstance(obs("a") | obs("b"), Or)

    def test_and(self):
        assert isinstance(obs("a") & obs("b"), And)

    def test_invert(self):
        assert isinstance(~obs("a"), Not)

    def test_rshift_is_seq(self):
        event = obs("a") >> obs("b")
        assert isinstance(event, Seq)
        assert event.first.reader == "a"

    def test_within_method(self):
        event = obs("a").within("5sec")
        assert isinstance(event, Within)
        assert event.tau == 5.0


class TestConstructors:
    def test_or_flattens(self):
        event = Or(Or(obs("a"), obs("b")), obs("c"))
        assert len(event.children) == 3

    def test_and_flattens(self):
        event = And(obs("a"), And(obs("b"), obs("c")))
        assert len(event.children) == 3

    def test_or_requires_two(self):
        with pytest.raises(ExpressionError):
            Or(obs("a"))

    def test_and_of_only_negations_rejected(self):
        with pytest.raises(ExpressionError):
            And(Not(obs("a")), Not(obs("b")))

    def test_double_negation_rejected(self):
        with pytest.raises(ExpressionError):
            Not(Not(obs("a")))

    def test_seq_of_two_negations_rejected(self):
        with pytest.raises(ExpressionError):
            Seq(Not(obs("a")), Not(obs("b")))
        with pytest.raises(ExpressionError):
            TSeq(Not(obs("a")), Not(obs("b")), 0, 1)

    def test_tseq_bounds_validation(self):
        with pytest.raises(ExpressionError):
            TSeq(obs("a"), obs("b"), 5, 1)
        with pytest.raises(ExpressionError):
            TSeq(obs("a"), obs("b"), -1, 1)

    def test_tseq_parses_duration_strings(self):
        event = TSeq(obs("a"), obs("b"), "0.1sec", "1sec")
        assert event.lower == 0.1 and event.upper == 1.0

    def test_tseqplus_requires_finite_upper(self):
        with pytest.raises(ExpressionError):
            TSeqPlus(obs("a"), 0, float("inf"))

    def test_tseqplus_rejects_negation(self):
        with pytest.raises(ExpressionError):
            TSeqPlus(Not(obs("a")), 0, 1)
        with pytest.raises(ExpressionError):
            SeqPlus(Not(obs("a")))

    def test_within_positive(self):
        with pytest.raises(ExpressionError):
            Within(obs("a"), 0)
        with pytest.raises(ExpressionError):
            Within(obs("a"), -3)


class TestIntrospection:
    def test_walk_preorder(self):
        event = Seq(obs("a", alias="A"), Or(obs("b"), obs("c")))
        kinds = [type(node).__name__ for node in event.walk()]
        assert kinds == [
            "Seq",
            "ObservationType",
            "Or",
            "ObservationType",
            "ObservationType",
        ]

    def test_variables_aggregate(self):
        event = Seq(obs(Var("r"), Var("o")), obs(Var("r"), Var("p")))
        assert event.variables() == {"r", "o", "p"}

    def test_seqplus_hides_member_variables(self):
        chain = TSeqPlus(obs("r1", Var("o1")), 0, 1)
        assert chain.exported_variables() == frozenset()
        assert chain.variables() == {"o1"}

    def test_seqplus_exports_group_by(self):
        chain = TSeqPlus(obs(Var("r"), Var("o1")), 0, 1, group_by=("r",))
        assert chain.exported_variables() == {"r"}

    def test_contains_negation(self):
        assert Within(And(obs("a"), Not(obs("b"))), 5).contains_negation()
        assert not (obs("a") | obs("b")).contains_negation()

    def test_structural_keys_for_composites(self):
        first = TSeq(TSeqPlus(obs("r1", Var("o")), 0, 1), obs("r2"), 5, 10)
        second = TSeq(TSeqPlus(obs("r1", Var("o")), 0, 1), obs("r2"), 5, 10)
        assert first.key() == second.key()
        third = TSeq(TSeqPlus(obs("r1", Var("o")), 0, 1), obs("r2"), 5, 11)
        assert first.key() != third.key()

    def test_within_key_includes_tau(self):
        assert Within(obs("a"), 5).key() != Within(obs("a"), 6).key()

    def test_reprs_are_informative(self):
        event = Within(TSeq(SeqPlus(obs("a")), Not(obs("b")), 1, 2), 60)
        text = repr(event)
        assert "WITHIN" in text and "TSEQ" in text and "NOT" in text
