"""Tests for the extension features: ALL/ANY, reorder buffer, persistence,
per-rule stats and engine introspection."""

import json

import pytest

from repro import Engine, Observation, Var, obs
from repro.core.expressions import All, And, Any, Or
from repro.lang import parse_event
from repro.readers import ReorderBuffer, assert_ordered
from repro.sql import Database
from repro.store import RfidStore


class TestAllAny:
    def test_all_is_conjunction(self):
        event = All(obs("a"), obs("b"), obs("c"))
        assert isinstance(event, And)
        assert len(event.children) == 3

    def test_any_is_disjunction(self):
        assert isinstance(Any(obs("a"), obs("b")), Or)

    def test_language_all(self):
        event = parse_event(
            "ALL(observation('a', o1, t1), observation('b', o2, t2), "
            "observation('c', o3, t3))"
        )
        assert isinstance(event, And)
        assert len(event.children) == 3

    def test_language_any(self):
        event = parse_event(
            "ANY(observation('a', o, t), observation('b', o, t2))"
        )
        assert isinstance(event, Or)

    def test_single_operand_collapses(self):
        event = parse_event("ALL(observation('a', o, t))")
        assert not isinstance(event, And)

    def test_all_detects(self):
        engine = Engine()
        engine.watch(All(obs("a"), obs("b"), obs("c")))
        stream = [
            Observation("c", "x", 0.0),
            Observation("a", "x", 1.0),
            Observation("b", "x", 2.0),
        ]
        assert len(list(engine.run(stream))) == 1


class TestReorderBuffer:
    def test_repairs_bounded_disorder(self):
        arrivals = [
            Observation("r", "a", 10.0),
            Observation("r", "b", 8.0),
            Observation("r", "c", 12.0),
            Observation("r", "d", 11.0),
            Observation("r", "e", 30.0),
        ]
        buffer = ReorderBuffer(delay=5.0)
        ordered = list(buffer.reorder(arrivals))
        assert_ordered(ordered)
        assert len(ordered) == 5

    def test_drops_hopelessly_late(self):
        buffer = ReorderBuffer(delay=2.0)
        output = list(buffer.push(Observation("r", "a", 100.0)))
        output += list(buffer.push(Observation("r", "b", 10.0)))  # < watermark 98
        output += list(buffer.drain())
        assert [o.timestamp for o in output] == [100.0]
        assert buffer.dropped_late == 1

    def test_zero_delay_passthrough(self):
        buffer = ReorderBuffer(delay=0.0)
        stream = [Observation("r", "a", t) for t in (1.0, 2.0, 3.0)]
        assert list(buffer.reorder(stream)) == stream

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ReorderBuffer(delay=-1.0)

    def test_feeds_engine_cleanly(self):
        engine = Engine()
        engine.watch(obs("r", Var("o")))
        buffer = ReorderBuffer(delay=5.0)
        arrivals = [Observation("r", str(i), t) for i, t in
                    enumerate((3.0, 1.0, 4.0, 2.0, 9.0, 7.0))]
        count = 0
        for observation in buffer.reorder(arrivals):
            count += len(engine.submit(observation))
        assert count == 6  # nothing dropped, nothing out of order


class TestPersistence:
    def test_database_dump_load_roundtrip(self):
        database = Database()
        database.execute("CREATE TABLE t (a, b)")
        database.execute("CREATE INDEX ON t (a)")
        database.execute("INSERT INTO t VALUES (1, 'x')")
        database.execute("INSERT INTO t VALUES (2, NULL)")
        payload = json.loads(json.dumps(database.dump()))
        restored = Database.load(payload)
        assert restored.query("SELECT a, b FROM t ORDER BY a") == [
            (1, "x"),
            (2, None),
        ]
        # Index survives: probe path returns the same rows.
        assert restored.query("SELECT b FROM t WHERE a = 1") == [("x",)]

    def test_store_save_load(self, tmp_path):
        store = RfidStore()
        store.place_reader("r1", "dock")
        store.update_location("box", "dock", 1.0)
        store.add_containment(["box"], "pallet", 2.0)
        store.send_alert("r5", "hello", 3.0)
        path = tmp_path / "store.json"
        store.save_json(str(path))

        restored = RfidStore.load_json(str(path))
        assert restored.location_of("box") == "dock"
        assert restored.parent_of("box") == "pallet"
        assert restored.alerts == [("r5", "hello", 3.0)]
        assert restored.reader_location("r1") == "dock"
        # The CONTAINMENT alias still points at OBJECTCONTAINMENT.
        assert restored.database.table("CONTAINMENT") is restored.database.table(
            "OBJECTCONTAINMENT"
        )

    def test_restored_store_keeps_working(self, tmp_path):
        store = RfidStore()
        store.update_location("box", "dock", 1.0)
        path = tmp_path / "store.json"
        store.save_json(str(path))
        restored = RfidStore.load_json(str(path))
        restored.update_location("box", "truck", 9.0)
        assert restored.location_history("box")[0][2] == 9.0


class TestIntrospection:
    def test_per_rule_counters(self):
        engine = Engine()
        engine.watch(obs("a"), name="watch-a")
        engine.watch(obs("b"), name="watch-b")
        list(engine.run([Observation("a", "x", 0.0), Observation("a", "y", 1.0),
                         Observation("b", "z", 2.0)]))
        assert engine.stats.per_rule == {"watch-a": 2, "watch-b": 1}

    def test_describe_lists_graph(self):
        engine = Engine()
        engine.watch(obs("a") >> obs("b"))
        text = engine.describe()
        assert "seq" in text

    def test_state_summary_shapes(self):
        from repro.core.expressions import TSeq, TSeqPlus

        engine = Engine()
        engine.watch(TSeq(TSeqPlus(obs("a"), 0, 1), obs("b"), 5, 10))
        engine.submit(Observation("a", "x", 0.0))
        summary = {entry["kind"]: entry for entry in engine.state_summary()}
        assert summary["tseq+"]["chains"] == 1
        assert summary["tseq"]["buffered"] == 0


class TestPeriodic:
    def _engine(self, period=10.0, within=35.0):
        from repro.core.expressions import Periodic, Within

        engine = Engine()
        engine.watch(Within(Periodic(obs("r", Var("o")), period), within))
        return engine

    def test_ticks_until_window_end(self):
        engine = self._engine(period=10.0, within=35.0)
        engine.submit(Observation("r", "x", 100.0))
        detections = engine.flush()
        # ticks at 110, 120, 130; 140 would exceed the 35s window.
        assert [d.time for d in detections] == [110.0, 120.0, 130.0]
        assert all(d.bindings == {"o": "x"} for d in detections)

    def test_tick_exactly_at_window_end_fires(self):
        engine = self._engine(period=10.0, within=30.0)
        engine.submit(Observation("r", "x", 0.0))
        detections = engine.flush()
        assert [d.time for d in detections] == [10.0, 20.0, 30.0]

    def test_independent_trains_per_anchor(self):
        engine = self._engine(period=10.0, within=15.0)
        engine.submit(Observation("r", "x", 0.0))
        engine.submit(Observation("r", "y", 5.0))
        detections = engine.flush()
        assert [(d.time, d.bindings["o"]) for d in detections] == [
            (10.0, "x"),
            (15.0, "y"),
        ]

    def test_ticks_interleave_with_stream(self):
        engine = self._engine(period=10.0, within=25.0)
        out = list(engine.submit(Observation("r", "x", 0.0)))
        out += list(engine.submit(Observation("zzz", "ignored", 21.0)))
        # ticks at 10 and 20 fired while processing the unrelated event
        assert [d.time for d in out] == [10.0, 20.0]

    def test_unbounded_periodic_rejected(self):
        from repro import InvalidRuleError
        from repro.core.expressions import Periodic

        engine = Engine()
        import pytest

        with pytest.raises(InvalidRuleError):
            engine.watch(Periodic(obs("r"), 10.0))

    def test_invalid_period(self):
        from repro import ExpressionError
        from repro.core.expressions import Periodic

        import pytest

        with pytest.raises(ExpressionError):
            Periodic(obs("r"), 0)

    def test_language_and_printer_roundtrip(self):
        from repro.core.expressions import Periodic
        from repro.lang import format_event, parse_event

        event = parse_event("PERIODIC(observation('r', o, t), 30sec)")
        assert isinstance(event, Periodic)
        assert event.period == 30.0
        assert parse_event(format_event(event)).key() == event.key()

    def test_periodic_escalation_scenario(self):
        """Escalating reminders while an unauthorized asset is out."""
        from repro.core.expressions import Periodic, Within

        engine = Engine()
        engine.watch(Within(Periodic(obs("gate", Var("o")), 60.0), 3 * 60.0 + 1))
        engine.submit(Observation("gate", "laptop", 0.0))
        reminders = engine.flush()
        assert [d.time for d in reminders] == [60.0, 120.0, 180.0]


class TestEngineReorder:
    def test_out_of_order_repaired(self):
        engine = Engine(reorder_delay=5.0)
        engine.watch(obs("r", Var("o")))
        arrivals = [
            Observation("r", "a", 10.0),
            Observation("r", "b", 8.0),   # late but inside the delay
            Observation("r", "c", 20.0),
        ]
        detections = []
        for observation in arrivals:
            detections.extend(engine.submit(observation))
        detections.extend(engine.flush())
        times = [d.instance.t_end for d in detections]
        assert times == [8.0, 10.0, 20.0]

    def test_sequences_detected_despite_disorder(self):
        from repro.core.expressions import Seq, Within

        engine = Engine(reorder_delay=5.0)
        engine.watch(Within(Seq(obs("A", Var("o")), obs("B", Var("o"))), 100))
        # B arrives before A in wall-clock order, timestamps disagree.
        arrivals = [
            Observation("B", "x", 4.0),
            Observation("A", "x", 2.0),
            Observation("zz", "tick", 30.0),
        ]
        detections = []
        for observation in arrivals:
            detections.extend(engine.submit(observation))
        detections.extend(engine.flush())
        assert len(detections) == 1

    def test_hopelessly_late_dropped_not_raised(self):
        engine = Engine(reorder_delay=2.0)
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 100.0))
        assert engine.submit(Observation("r", "b", 10.0)) == []
        engine.flush()
        assert engine._reorder.dropped_late == 1


class TestTrace:
    def test_trace_receives_lifecycle_events(self):
        from repro.core.expressions import And, Not, Within

        events = []
        with pytest.warns(DeprecationWarning):
            engine = Engine(trace=lambda kind, payload: events.append(kind))
        engine.watch(Within(And(obs("A"), Not(obs("B"))), 10))
        engine.submit(Observation("B", "x", 0.0))
        engine.submit(Observation("A", "y", 5.0))   # killed by lookback
        engine.submit(Observation("A", "y", 50.0))  # pending, confirmed
        engine.flush()
        kinds = set(events)
        assert {"observation", "emit", "kill", "pseudo", "detection"} <= kinds

    def test_trace_detection_payload(self):
        captured = []
        with pytest.warns(DeprecationWarning):
            engine = Engine(
                trace=lambda kind, payload: captured.append((kind, payload))
            )
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 1.0))
        detections = [p for k, p in captured if k == "detection"]
        assert detections and detections[0]["detection"].time == 1.0


class TestEngineReset:
    def test_reset_clears_state_keeps_rules(self):
        from repro.core.expressions import Seq, Within

        engine = Engine()
        engine.watch(Within(Seq(obs("A", Var("o")), obs("B", Var("o"))), 100))
        first = list(engine.run([Observation("A", "x", 0.0),
                                 Observation("B", "x", 1.0)]))
        assert len(first) == 1
        engine.reset()
        assert engine.stats.detections == 0
        # Identical stream re-detects identically after reset.
        second = list(engine.run([Observation("A", "x", 0.0),
                                  Observation("B", "x", 1.0)]))
        assert len(second) == 1

    def test_reset_clears_pending_pseudo_events(self):
        from repro.core.expressions import TSeqPlus

        engine = Engine()
        engine.watch(TSeqPlus(obs("r"), 0, 1))
        engine.submit(Observation("r", "a", 0.0))
        engine.reset()
        assert engine.flush() == []  # no leftover chain closure

    def test_reset_allows_adding_rules_again(self):
        engine = Engine()
        engine.watch(obs("a"))
        engine.submit(Observation("a", "x", 0.0))
        engine.reset()
        engine.watch(obs("b"))  # no RuntimeError after reset
        detections = list(engine.run([Observation("b", "y", 0.0)]))
        assert len(detections) == 1
