"""Tests for duplicate and infield/outfield filtering, against simulator truth."""

import random

import pytest

from repro import Engine, Observation
from repro.filtering import (
    DuplicateFilter,
    SmartShelfMonitor,
    duplicate_detection_rule,
    infield_rule,
    outfield_rule,
)
from repro.readers import Reader
from repro.simulator import ShelfConfig, simulate_shelf
from repro.store import RfidStore


class TestDuplicateFilter:
    def test_suppresses_within_window(self):
        dup = DuplicateFilter(window=5.0)
        stream = [Observation("r", "x", t) for t in (0.0, 1.0, 4.9, 5.0)]
        passed = list(dup.filter(stream))
        assert [o.timestamp for o in passed] == [0.0, 5.0]
        assert dup.suppressed == 2 and dup.passed == 2

    def test_distinct_objects_independent(self):
        dup = DuplicateFilter(window=5.0)
        stream = [Observation("r", "x", 0.0), Observation("r", "y", 0.1)]
        assert len(list(dup.filter(stream))) == 2

    def test_group_function_merges_readers(self):
        dup = DuplicateFilter(window=5.0, group_of=lambda reader: "dock")
        stream = [Observation("r1", "x", 0.0), Observation("r2", "x", 1.0)]
        assert len(list(dup.filter(stream))) == 1

    def test_dwell_stream_cleaned(self):
        reader = Reader("r1")
        stream = reader.dwell("tag", 0.0, 20.0, frame_period=0.5)
        dup = DuplicateFilter(window=5.0)
        passed = list(dup.filter(stream))
        assert [o.timestamp for o in passed] == [0.0, 5.0, 10.0, 15.0, 20.0]

    def test_prune(self):
        dup = DuplicateFilter(window=5.0)
        list(dup.filter([Observation("r", "x", 0.0), Observation("r", "y", 100.0)]))
        assert dup.prune(older_than=50.0) == 1

    def test_window_validation(self):
        with pytest.raises(ValueError):
            DuplicateFilter(window=0)


class TestDuplicateRule:
    def test_marks_earlier_reading(self):
        marked = []
        rule = duplicate_detection_rule(window=5.0, on_duplicate=marked.append)
        engine = Engine([rule])
        list(engine.run([Observation("r", "x", 0.0), Observation("r", "x", 2.0)]))
        assert [o.timestamp for o in marked] == [0.0]

    def test_default_action_alerts_store(self):
        store = RfidStore()
        engine = Engine([duplicate_detection_rule(window=5.0)], store=store)
        list(engine.run([Observation("r", "x", 0.0), Observation("r", "x", 2.0)]))
        assert len(store.alerts) == 1

    def test_group_variant(self):
        from repro import FunctionRegistry

        marked = []
        rule = duplicate_detection_rule(
            window=5.0, group="dock", on_duplicate=marked.append
        )
        functions = FunctionRegistry(group=lambda reader: "dock")
        engine = Engine([rule], functions=functions)
        list(engine.run([Observation("r1", "x", 0.0), Observation("r2", "x", 2.0)]))
        assert len(marked) == 1


class TestShelfRulesAgainstSimulator:
    def test_infield_outfield_match_ground_truth(self):
        config = ShelfConfig(items=12, read_period=30.0)
        trace = simulate_shelf(config, rng=random.Random(5))
        infields, outfields = [], []
        engine = Engine()
        engine.add_rule(
            infield_rule(
                30.0,
                reader=config.reader,
                on_infield=lambda r, o, t: infields.append((o, t)),
                rule_id="in",
            )
        )
        engine.add_rule(
            outfield_rule(
                30.0,
                reader=config.reader,
                on_outfield=lambda r, o, t: outfields.append((o, t)),
                rule_id="out",
            )
        )
        for observation in trace.observations:
            engine.submit(observation)
        engine.flush()

        expected_in = sorted(
            (stay.item_epc, stay.infield_time)
            for stay in trace.stays
            if stay.was_read
        )
        expected_out = sorted(
            (stay.item_epc, stay.outfield_time)
            for stay in trace.stays
            if stay.was_read
        )
        assert sorted(infields) == expected_in
        assert sorted(outfields) == expected_out

    def test_infield_records_into_store(self):
        store = RfidStore()
        engine = Engine(
            [infield_rule(30.0, reader="s", record_observation=True)], store=store
        )
        list(engine.run([Observation("s", "x", 0.0), Observation("s", "x", 30.0)]))
        rows = store.database.query("SELECT object_epc FROM OBSERVATION")
        assert rows == [("x",)]


class TestSmartShelfMonitor:
    def test_inventory_tracks_presence(self):
        monitor = SmartShelfMonitor(period=30.0, reader="s1")
        monitor.process(
            [
                Observation("s1", "cup", 0.0),
                Observation("s1", "cup", 30.0),
                Observation("s1", "pen", 30.0),
                Observation("s1", "cup", 60.0),
                Observation("s1", "pen", 60.0),
                # pen removed; cup keeps being read
                Observation("s1", "cup", 90.0),
                Observation("s1", "cup", 120.0),
            ]
        )
        events = [event for event in monitor.events if event[0] == "outfield"]
        # pen leaves at 90 (last seen 60 + period); cup leaves at stream end.
        assert ("outfield", "pen", 90.0) in events
        assert monitor.inventory() == []  # flush expired everything

    def test_inventory_mid_stream(self):
        monitor = SmartShelfMonitor(period=30.0, reader="s1")
        monitor.engine.submit(Observation("s1", "cup", 0.0))
        assert monitor.inventory() == ["cup"]
