"""Garbage collection of expired detection state."""

from repro import Engine, Observation, Var, Within, obs
from repro.core.expressions import And, Not, Seq, TSeq


def feed(engine, stream):
    detections = []
    for observation in stream:
        detections.extend(engine.submit(observation))
    detections.extend(engine.flush())
    return detections


class TestGcPruning:
    def test_expired_initiators_pruned(self):
        engine = Engine(gc_every=10)
        engine.watch(TSeq(obs("A", Var("o")), obs("B", Var("o")), 0, 5))
        # 100 unmatched initiators spread over a long timeline.
        for index in range(100):
            engine.submit(Observation("A", f"tag{index}", index * 10.0))
        state = engine.states[engine.graph.roots[0].node_id]
        buffered = sum(len(bucket) for bucket in state.buckets.values())
        assert buffered < 100  # old ones collected
        assert engine.stats.gc_removed > 0

    def test_history_pruned(self):
        engine = Engine(gc_every=10)
        engine.watch(Within(And(obs("A"), Not(obs("B"))), 5))
        for index in range(200):
            engine.submit(Observation("B", "x", index * 1.0))
        negated_leaf = next(
            node for node in engine.graph.nodes
            if node.kind == "obs" and node.expr.reader == "B"
        )
        history_length = len(engine.states[negated_leaf.node_id].history)
        assert history_length < 200

    def test_unbounded_seq_buffers_exempt(self):
        engine = Engine(gc_every=10)
        engine.watch(Seq(obs("A", Var("o")), obs("B", Var("o"))))
        # A second bounded rule gives the graph a finite GC horizon.
        engine.watch(TSeq(obs("C"), obs("D"), 0, 5))
        for index in range(100):
            engine.submit(Observation("A", f"tag{index}", index * 10.0))
        seq_root = engine.graph.roots[0]
        state = engine.states[seq_root.node_id]
        buffered = sum(len(bucket) for bucket in state.buckets.values())
        assert buffered == 100  # unbounded SEQ keeps everything

    def test_gc_preserves_correctness(self):
        """Detections with GC on (aggressive cadence) match GC nearly off."""
        stream = []
        time = 0.0
        for index in range(300):
            stream.append(Observation("A", f"t{index}", time))
            stream.append(Observation("B", f"t{index}", time + 2.0))
            time += 20.0

        event = TSeq(obs("A", Var("o")), obs("B", Var("o")), 0, 5)
        aggressive = Engine(gc_every=1)
        aggressive.watch(event)
        lazy = Engine(gc_every=10**9)
        lazy.watch(event)
        assert len(feed(aggressive, stream)) == len(feed(lazy, stream)) == 300

    def test_gc_skipped_without_bounds(self):
        engine = Engine(gc_every=1)
        engine.watch(Seq(obs("A"), obs("B")))
        for index in range(20):
            engine.submit(Observation("A", "x", float(index)))
        assert engine.stats.gc_removed == 0
