"""Tests for event graph compilation and detection-mode assignment.

Covers interval-constraint propagation (paper Figs. 6-7), common
sub-graph merging, the push/pull/mixed mode lattice (§4.4) and the
compile-time rejection of invalid rules.
"""

import pytest

from repro import CompileError, InvalidRuleError
from repro.core.expressions import (
    And,
    Not,
    Or,
    Seq,
    SeqPlus,
    TSeq,
    TSeqPlus,
    Var,
    Within,
    obs,
)
from repro.core.graph import EventGraph, compile_graph, node_for
from repro.core.modes import Mode
from repro.core.temporal import INFINITY


class TestCompilation:
    def test_primitive_graph(self):
        node = node_for(obs("r1"))
        assert node.kind == "obs"
        assert node.mode is Mode.PUSH
        assert node.within == INFINITY

    def test_within_becomes_annotation(self):
        node = node_for(Within(And(obs("a"), obs("b")), 10))
        assert node.kind == "and"
        assert node.within == 10.0

    def test_within_propagates_to_descendants(self):
        # WITHIN(TSEQ+(E1 OR E2, ...) ; E3, 10min) -- the paper's Fig. 7.
        event = Within(
            Seq(TSeqPlus(Or(obs("e1"), obs("e2")), 0.1, 1.0), obs("e3")), 600
        )
        graph = EventGraph()
        root = graph.add_root(event)
        assert root.within == 600.0
        for node in graph.nodes:
            assert node.within == 600.0

    def test_nested_within_takes_minimum(self):
        event = Within(And(Within(obs("a"), 5), obs("b")), 10)
        graph = EventGraph()
        root = graph.add_root(event)
        leaf_a = next(
            node for node in graph.nodes
            if node.kind == "obs" and node.expr.reader == "a"
        )
        leaf_b = next(
            node for node in graph.nodes
            if node.kind == "obs" and node.expr.reader == "b"
        )
        assert root.within == 10.0
        assert leaf_a.within == 5.0
        assert leaf_b.within == 10.0

    def test_parents_recorded(self):
        graph = EventGraph()
        root = graph.add_root(obs("a") >> obs("b"))
        for index, child in enumerate(root.children):
            assert (root, index) in child.parents


class TestMerging:
    def test_identical_roots_merge(self):
        graph, roots = compile_graph([obs("r1"), obs("r1")])
        assert roots[0] is roots[1]

    def test_shared_subexpression_merges(self):
        shared = obs("r1", Var("o"))
        graph, roots = compile_graph(
            [Seq(shared, obs("r2")), Seq(shared, obs("r3"))]
        )
        leaf_nodes = [node for node in graph.nodes if node.kind == "obs"]
        readers = sorted(
            node.expr.reader for node in leaf_nodes if node.expr.reader
        )
        assert readers == ["r1", "r2", "r3"]  # r1 compiled once

    def test_different_within_does_not_merge(self):
        graph, roots = compile_graph(
            [Within(obs("r1") >> obs("r2"), 5), Within(obs("r1") >> obs("r2"), 9)]
        )
        assert roots[0] is not roots[1]

    def test_merging_can_be_disabled(self):
        graph, roots = compile_graph([obs("r1"), obs("r1")], merge_common_subgraphs=False)
        assert roots[0] is not roots[1]

    def test_dispatch_index(self):
        graph, _ = compile_graph(
            [obs("r1"), obs(Var("r"), group="dock"), obs(Var("r"))]
        )
        assert len(graph.primitives_by_reader["r1"]) == 1
        assert len(graph.primitives_by_group["dock"]) == 1
        assert len(graph.primitive_wildcards) == 1

    def test_gc_horizon_doubles_largest_bound(self):
        graph, _ = compile_graph([Within(obs("a") >> obs("b"), 30)])
        assert graph.gc_horizon == 60.0

    def test_describe_lists_nodes(self):
        graph, _ = compile_graph([obs("a") >> obs("b")])
        text = graph.describe()
        assert "seq" in text and "obs" in text


class TestModes:
    def test_primitive_push(self):
        assert node_for(obs("a")).mode is Mode.PUSH

    def test_or_of_push(self):
        assert node_for(obs("a") | obs("b")).mode is Mode.PUSH

    def test_and_of_push(self):
        assert node_for(obs("a") & obs("b")).mode is Mode.PUSH

    def test_seq_of_push(self):
        assert node_for(obs("a") >> obs("b")).mode is Mode.PUSH

    def test_and_with_negation_bounded_is_mixed(self):
        node = node_for(Within(And(obs("a"), Not(obs("b"))), 10))
        assert node.mode is Mode.MIXED

    def test_and_with_negation_unbounded_invalid(self):
        with pytest.raises(InvalidRuleError):
            node_for(And(obs("a"), Not(obs("b"))))

    def test_seq_with_negated_initiator_bounded_is_push(self):
        # The paper: WITHIN(NOT E1; E2, tau) needs no pseudo events.
        node = node_for(Within(Seq(Not(obs("a")), obs("b")), 30))
        assert node.mode is Mode.PUSH

    def test_seq_with_negated_terminator_bounded_is_mixed(self):
        node = node_for(Within(Seq(obs("a"), Not(obs("b"))), 30))
        assert node.mode is Mode.MIXED

    def test_tseq_distance_bound_suffices_for_negated_initiator(self):
        node = node_for(TSeq(Not(obs("a")), obs("b"), 0, 10))
        assert node.mode is Mode.PUSH

    def test_seqplus_unbounded_invalid(self):
        with pytest.raises(InvalidRuleError):
            node_for(SeqPlus(obs("a")))

    def test_seqplus_with_within_mixed(self):
        node = node_for(Within(SeqPlus(obs("a")), 60))
        assert node.mode is Mode.MIXED

    def test_tseqplus_mixed(self):
        node = node_for(TSeqPlus(obs("a"), 0, 1))
        assert node.mode is Mode.MIXED

    def test_top_level_not_invalid(self):
        with pytest.raises(InvalidRuleError):
            node_for(Not(obs("a")))

    def test_seq_with_unbounded_negated_initiator_invalid(self):
        with pytest.raises(InvalidRuleError):
            node_for(Seq(Not(obs("a")), obs("b")))

    def test_tseqplus_composes_under_tseq(self):
        node = node_for(TSeq(TSeqPlus(obs("a"), 0, 1), obs("b"), 5, 10))
        assert node.mode is Mode.MIXED


class TestCompileRejections:
    def test_pull_positive_child_of_seq_rejected(self):
        with pytest.raises(CompileError):
            node_for(Seq(SeqPlus(obs("a")), obs("b")))

    def test_pull_positive_child_of_and_rejected(self):
        with pytest.raises(CompileError):
            node_for(And(SeqPlus(obs("a")), obs("b")))

    def test_within_upgrades_and_child_to_mixed(self):
        # Inside a WITHIN the SEQ+ gains an expiration, so the same shape
        # becomes detectable (mixed) instead of being rejected.
        node = node_for(Within(And(SeqPlus(obs("a")), obs("b")), 100))
        assert node.mode is Mode.MIXED

    def test_not_over_pull_rejected(self):
        with pytest.raises(CompileError):
            node_for(Seq(obs("x"), Not(SeqPlus(obs("a")))))

    def test_not_over_bounded_seqplus_allowed(self):
        node = node_for(Within(Seq(obs("x"), Not(SeqPlus(obs("a")))), 10))
        assert node.mode is Mode.MIXED

    def test_history_flag_for_negated_children(self):
        graph = EventGraph()
        graph.add_root(Within(And(obs("a"), Not(obs("b"))), 10))
        negated_leaf = next(
            node for node in graph.nodes
            if node.kind == "obs" and node.expr.reader == "b"
        )
        positive_leaf = next(
            node for node in graph.nodes
            if node.kind == "obs" and node.expr.reader == "a"
        )
        assert negated_leaf.keeps_history
        assert not positive_leaf.keeps_history


class TestSharedVariables:
    def test_join_variables_detected(self):
        node = node_for(
            Within(Seq(obs(Var("r"), Var("o")), obs(Var("r"), Var("o"))), 5)
        )
        assert node.shared_variables == ("o", "r")

    def test_no_sharing(self):
        node = node_for(Seq(obs("a", Var("x")), obs("b", Var("y"))))
        assert node.shared_variables == ()

    def test_chain_members_not_shared(self):
        node = node_for(
            TSeq(TSeqPlus(obs("r1", Var("o1")), 0, 1), obs("r2", Var("o2")), 5, 10)
        )
        assert node.shared_variables == ()


class TestCompilationRollback:
    """A rejected rule must leave the shared graph untouched (regression:
    orphan nodes from failed compilations crashed later dispatch)."""

    def test_failed_rule_leaves_no_orphans(self):
        from repro import Engine, Observation
        from repro.core.expressions import SeqPlus, Within

        engine = Engine()
        engine.watch(Within(SeqPlus(obs("A")), 30))       # shares the A leaf
        before_nodes = len(engine.graph.nodes)
        with pytest.raises(CompileError):
            # outer SEQ+ over a mixed child is pull-mode: rejected.
            engine.watch(SeqPlus(Within(SeqPlus(obs("A")), 30)))
        assert len(engine.graph.nodes) == before_nodes
        leaf = engine.graph.primitives_by_reader["A"][0]
        assert all(
            parent.node_id < before_nodes for parent, _i in leaf.parents
        )
        # The engine still runs cleanly over the shared leaf.
        detections = list(engine.run([Observation("A", "x", 0.0)]))
        assert len(detections) == 1

    def test_rollback_restores_dispatch_indexes(self):
        graph = EventGraph()
        with pytest.raises(InvalidRuleError):
            graph.add_root(Not(obs("zzz")))
        assert "zzz" not in graph.primitives_by_reader
        assert graph.nodes == []

    def test_rollback_allows_clean_recompile(self):
        graph = EventGraph()
        with pytest.raises(InvalidRuleError):
            graph.add_root(SeqPlus(obs("A")))
        root = graph.add_root(Within(SeqPlus(obs("A")), 10))
        assert root.mode is Mode.MIXED
        assert [node.node_id for node in graph.nodes] == [0, 1]
