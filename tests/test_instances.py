"""Unit tests for repro.core.instances: observations, instances, unify."""

import pytest

from repro.core.instances import (
    CompositeInstance,
    NegationInstance,
    Observation,
    PrimitiveInstance,
    unify,
)


class TestObservation:
    def test_fields(self):
        observation = Observation("r1", "tag", 3.0)
        assert observation.reader == "r1"
        assert observation.obj == "tag"
        assert observation.timestamp == 3.0
        assert observation.extra is None

    def test_equality_and_hash(self):
        a = Observation("r1", "tag", 3.0)
        b = Observation("r1", "tag", 3.0)
        c = Observation("r1", "tag", 4.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not an observation"

    def test_extra_payload(self):
        observation = Observation("r1", "tag", 0.0, extra={"rssi": -40})
        assert observation.extra["rssi"] == -40

    def test_repr_mentions_fields(self):
        text = repr(Observation("r1", "tag", 3.0))
        assert "r1" in text and "tag" in text and "3" in text

    def test_timestamp_coerced_to_float(self):
        assert isinstance(Observation("r", "o", 3).timestamp, float)


class TestUnify:
    def test_disjoint(self):
        assert unify({"a": 1}, {"b": 2}) == {"a": 1, "b": 2}

    def test_agreeing_overlap(self):
        assert unify({"a": 1, "b": 2}, {"a": 1}) == {"a": 1, "b": 2}

    def test_conflict(self):
        assert unify({"a": 1}, {"a": 2}) is None

    def test_empty_sides(self):
        assert unify({}, {"a": 1}) == {"a": 1}
        assert unify({"a": 1}, {}) == {"a": 1}
        assert unify({}, {}) == {}

    def test_result_is_a_copy(self):
        left = {"a": 1}
        merged = unify(left, {"b": 2})
        merged["c"] = 3
        assert "c" not in left


class TestPrimitiveInstance:
    def test_is_instantaneous(self):
        instance = PrimitiveInstance(Observation("r", "o", 5.0))
        assert instance.t_begin == instance.t_end == 5.0

    def test_bindings_default_empty(self):
        instance = PrimitiveInstance(Observation("r", "o", 5.0))
        assert dict(instance.bindings) == {}

    def test_observations_yields_self(self):
        observation = Observation("r", "o", 5.0)
        instance = PrimitiveInstance(observation, {"o": "o"})
        assert list(instance.observations()) == [observation]
        assert instance.constituents == ()


class TestCompositeInstance:
    def _prim(self, t, obj="x"):
        return PrimitiveInstance(Observation("r", obj, t))

    def test_times_span_constituents(self):
        composite = CompositeInstance("SEQ", [self._prim(1.0), self._prim(4.0)])
        assert composite.t_begin == 1.0
        assert composite.t_end == 4.0

    def test_explicit_times_override(self):
        composite = CompositeInstance(
            "AND", [self._prim(2.0)], t_begin=1.0, t_end=9.0
        )
        assert composite.t_begin == 1.0 and composite.t_end == 9.0

    def test_requires_constituents_or_times(self):
        with pytest.raises(ValueError):
            CompositeInstance("AND", [])

    def test_observations_flatten_in_order(self):
        inner = CompositeInstance("SEQ", [self._prim(1.0, "a"), self._prim(2.0, "b")])
        outer = CompositeInstance("AND", [inner, self._prim(3.0, "c")])
        assert [o.obj for o in outer.observations()] == ["a", "b", "c"]

    def test_constituents_are_tuple(self):
        composite = CompositeInstance("OR", [self._prim(1.0)])
        assert isinstance(composite.constituents, tuple)

    def test_repr_contains_label(self):
        assert "SEQ" in repr(CompositeInstance("SEQ", [self._prim(0.0)]))


class TestNegationInstance:
    def test_window_becomes_span(self):
        certificate = NegationInstance(3.0, 8.0)
        assert certificate.t_begin == 3.0
        assert certificate.t_end == 8.0

    def test_no_observations(self):
        assert list(NegationInstance(0.0, 1.0).observations()) == []

    def test_carries_bindings(self):
        certificate = NegationInstance(0.0, 1.0, {"o": "x"})
        assert certificate.bindings == {"o": "x"}
