"""The flagship integration test: the entire supply chain, one engine.

Simulates every scenario (packing, movement, smart shelf, security gate,
checkout), registers every application rule on one middleware instance,
streams the merged observations once, and verifies the full derived
state of the virtual world against all four ground truths — the paper's
"bridge between the physical and virtual worlds" in one test.
"""

import pytest

from repro import FunctionRegistry
from repro.apps import (
    RfidMiddleware,
    SOLD_LOCATION,
    asset_monitoring_rule,
    containment_rule,
    location_rule,
    sale_rule,
)
from repro.core.detector import Engine
from repro.epc import ReaderGroupRegistry
from repro.filtering import infield_rule, outfield_rule
from repro.simulator import (
    SupplyChainConfig,
    gate_type_function,
    reader_placements,
    simulate_supply_chain,
)
from repro.store import RfidStore


@pytest.fixture(scope="module")
def world():
    config = SupplyChainConfig(seed=99)
    trace = simulate_supply_chain(config)

    store = RfidStore()
    store.place_reader(config.packing.item_reader, "conveyor")
    store.place_reader(config.packing.case_reader, "packing-station")
    for reader, location in reader_placements(config.movement):
        store.place_reader(reader, location)
    for pos in config.checkout.pos_readers:
        store.place_reader(pos, "checkout")

    groups = ReaderGroupRegistry()
    types = gate_type_function(config.gate)

    shelf_events = []
    alarms = []
    rules = [
        containment_rule(config.packing.item_reader, config.packing.case_reader),
        # Location tracking only for the movement route's portal readers;
        # conveyor/packing readers are placed too, so they also count.
        location_rule(rule_id="r3"),
        asset_monitoring_rule(
            config.gate.reader,
            config.gate.tau,
            on_alarm=lambda epc, time: alarms.append((epc, time)),
        ),
        infield_rule(
            config.shelf.read_period,
            reader=config.shelf.reader,
            on_infield=lambda r, o, t: shelf_events.append(("in", o, t)),
            rule_id="shelf-in",
        ),
        outfield_rule(
            config.shelf.read_period,
            reader=config.shelf.reader,
            on_outfield=lambda r, o, t: shelf_events.append(("out", o, t)),
            rule_id="shelf-out",
        ),
        sale_rule(config.checkout.pos_readers),
    ]
    engine = Engine(
        rules,
        store=store,
        functions=FunctionRegistry(group=groups, obj_type=types),
    )
    detections = []
    for observation in trace.observations:
        detections.extend(engine.submit(observation))
    detections.extend(engine.flush())
    return config, trace, store, detections, shelf_events, alarms


class TestWholeChain:
    def test_stream_was_substantial(self, world):
        _config, trace, _store, detections, _shelf, _alarms = world
        assert len(trace.observations) > 100
        assert len(detections) > 50

    def test_containment_truth(self, world):
        _config, trace, store, *_ = world
        sold = {sale.item_epc for sale in trace.checkout.sales}
        for case in trace.packing.cases:
            expected = sorted(set(case.item_epcs) - sold)
            assert store.contents_of(case.case_epc) == expected
            # And historically (before any sale) the full case contents.
            just_packed = case.case_time + 0.001
            assert store.contents_of(case.case_epc, at=just_packed) == sorted(
                case.item_epcs
            )

    def test_location_truth_for_route_objects(self, world):
        config, trace, store, *_ = world
        route_locations = [location for _reader, location in config.movement.route]
        for epc in {visit.obj_epc for visit in trace.movement.visits}:
            history = [loc for loc, _s, _e in store.location_history(epc)]
            assert history == route_locations

    def test_sales_recorded_and_located(self, world):
        _config, trace, store, *_ = world
        rows = store.database.query("SELECT object_epc, timestamp FROM SALE")
        assert len(rows) == len(trace.checkout.sales)
        for sale in trace.checkout.sales:
            assert store.location_of(sale.item_epc) == SOLD_LOCATION

    def test_gate_alarm_truth(self, world):
        _config, trace, _store, _detections, _shelf, alarms = world
        assert sorted(alarms) == sorted(trace.gate.expected_alarms())

    def test_shelf_truth(self, world):
        _config, trace, _store, _detections, shelf_events, _alarms = world
        read_stays = [stay for stay in trace.shelf.stays if stay.was_read]
        infields = {(o, t) for kind, o, t in shelf_events if kind == "in"}
        outfields = {(o, t) for kind, o, t in shelf_events if kind == "out"}
        assert infields == {(s.item_epc, s.infield_time) for s in read_stays}
        assert outfields == {(s.item_epc, s.outfield_time) for s in read_stays}

    def test_store_counts_consistent(self, world):
        _config, trace, store, *_ = world
        counts = store.counts()
        assert counts["SALE"] == len(trace.checkout.sales)
        assert counts["OBJECTCONTAINMENT"] == sum(
            len(case.item_epcs) for case in trace.packing.cases
        )

    def test_no_cross_scenario_interference(self, world):
        """Rules only fire on their own scenario's readers."""
        _config, trace, store, detections, _shelf, _alarms = world
        containments = [
            detection for detection in detections
            if detection.rule.rule_id == "r4"
        ]
        assert len(containments) == len(trace.packing.cases)
