"""Tests for the rule language: scanner, event parser, programs, printer."""

import pytest

from repro.core.expressions import (
    And,
    Not,
    ObservationType,
    Or,
    Seq,
    SeqPlus,
    TSeq,
    TSeqPlus,
    Var,
    Within,
    obs,
)
from repro.lang import (
    RuleSyntaxError,
    format_event,
    parse_event,
    parse_program,
    parse_rules,
    scan,
)
from repro.rules import AlertAction, SqlAction


class TestScanner:
    def test_duration_literals(self):
        tokens = scan("0.1sec 10min 5 sec")
        assert tokens[0].kind == "DURATION" and tokens[0].value == 0.1
        assert tokens[1].value == 600.0
        # "5 sec" with a space is a NUMBER then a NAME.
        assert tokens[2].kind == "NUMBER"

    def test_seqplus_glued(self):
        tokens = scan("TSEQ+(E1)")
        assert tokens[0].value == "TSEQ+"

    def test_plus_not_glued_to_other_names(self):
        tokens = scan("E1+")
        assert tokens[0].value == "E1"
        assert tokens[1].value == "+"

    def test_unicode_operators(self):
        tokens = scan("A ∧ ¬B ∨ C")
        assert [t.value for t in tokens if t.kind == "OP"] == ["&", "!", "|"]

    def test_comments_stripped(self):
        tokens = scan("A -- a comment\nB # another\nC")
        assert [t.value for t in tokens[:3]] == ["A", "B", "C"]

    def test_error_reports_line_and_column(self):
        with pytest.raises(RuleSyntaxError) as excinfo:
            scan("ok\n  €")
        assert "line 2" in str(excinfo.value)

    def test_unterminated_string(self):
        with pytest.raises(RuleSyntaxError):
            scan("'oops")


class TestEventParser:
    def test_observation_terms(self):
        event = parse_event("observation('r1', o, t)")
        assert isinstance(event, ObservationType)
        assert event.reader == "r1"
        assert event.obj == Var("o")
        assert event.t == Var("t")

    def test_wildcards(self):
        event = parse_event("observation(_, *, _)")
        assert event.reader is None and event.obj is None and event.t is None

    def test_predicates(self):
        event = parse_event("observation(r, o, t), group(r)='g1', type(o)='case'")
        assert event.group == "g1" and event.obj_type == "case"

    def test_predicate_argument_mismatch(self):
        with pytest.raises(RuleSyntaxError):
            parse_event("observation(r, o, t), type(zzz)='case'")

    def test_timestamp_cannot_be_literal(self):
        with pytest.raises(RuleSyntaxError):
            parse_event("observation(r, o, '5')")

    def test_group_on_literal_reader_normalized(self):
        event = parse_event("observation('r1', o, t), group('r1')='r1'")
        assert event.reader is None and event.group == "r1"

    @pytest.mark.parametrize("text, expected_type", [
        ("A OR B", Or),
        ("A | B", Or),
        ("A AND B", And),
        ("A ∧ B", And),
        ("NOT A AND B", And),
        ("A ; B", Seq),
        ("SEQ(A; B)", Seq),
        ("TSEQ(A; B, 1sec, 2sec)", TSeq),
        ("SEQ+(A)", SeqPlus),
        ("TSEQ+(A, 1sec, 2sec)", TSeqPlus),
        ("WITHIN(A, 5sec)", Within),
    ])
    def test_constructors(self, text, expected_type):
        aliases = {"A": obs("a"), "B": obs("b")}
        assert isinstance(parse_event(text, aliases), expected_type)

    def test_precedence_not_binds_tighter_than_seq(self):
        aliases = {"A": obs("a"), "B": obs("b")}
        event = parse_event("NOT A ; B", aliases)
        assert isinstance(event, Seq)
        assert isinstance(event.first, Not)

    def test_precedence_seq_binds_tighter_than_and(self):
        aliases = {"A": obs("a"), "B": obs("b"), "C": obs("c")}
        event = parse_event("A ; B AND C", aliases)
        assert isinstance(event, And)
        assert isinstance(event.children[0], Seq)

    def test_parentheses_override(self):
        aliases = {"A": obs("a"), "B": obs("b"), "C": obs("c")}
        event = parse_event("A ; (B AND C)", aliases)
        assert isinstance(event, Seq)

    def test_plain_numbers_as_durations(self):
        event = parse_event("TSEQ+(observation(r, o, t), 0.1, 1)")
        assert event.lower == 0.1 and event.upper == 1.0

    def test_unknown_alias(self):
        with pytest.raises(RuleSyntaxError):
            parse_event("MYSTERY")

    def test_trailing_input_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_event("observation(r, o, t) observation(r, o, t)")

    def test_nested_constructors(self):
        event = parse_event(
            "WITHIN(TSEQ+(observation(r, o, t) | observation('x', p, t2), "
            "0.1sec, 1sec); observation('y', q, t3), 10min)"
        )
        assert isinstance(event, Within)
        assert isinstance(event.child, Seq)


class TestPrograms:
    def test_define_then_rule(self):
        program = parse_program(
            """
            DEFINE E1 = observation('r1', o, t)
            CREATE RULE r7, my rule ON E1 IF true DO INSERT INTO T VALUES (o)
            """
        )
        assert program.aliases["E1"].alias == "E1"
        rule = program.rule("r7")
        assert rule.name == "my rule"
        assert rule.condition is None
        assert isinstance(rule.actions[0], SqlAction)

    def test_rule_without_name(self):
        rules = parse_rules("CREATE RULE r1 ON observation(r, o, t) IF true DO ALERT 'x'")
        assert rules[0].name == "r1"

    def test_condition_text_preserved(self):
        program = parse_program(
            """
            CREATE RULE r1, c ON observation(r, o, t)
            IF SELECT * FROM OBJECTLOCATION WHERE object_epc = o
            DO ALERT 'x'
            """
        )
        rule = program.rule("r1")
        assert rule.condition is not None

    def test_multiple_actions_split(self):
        program = parse_program(
            """
            CREATE RULE r1, c ON observation(r, o, t) IF true
            DO INSERT INTO A VALUES (o); INSERT INTO B VALUES (o); ALERT 'hi {o}'
            """
        )
        rule = program.rule("r1")
        assert len(rule.actions) == 3
        assert isinstance(rule.actions[2], AlertAction)

    def test_send_becomes_alert(self):
        rules = parse_rules(
            "CREATE RULE r1, c ON observation(r, o, t) IF true DO send duplicate msg"
        )
        assert isinstance(rules[0].actions[0], AlertAction)

    def test_create_table_action_does_not_break_statement(self):
        program = parse_program(
            """
            CREATE RULE r1, c ON observation(r, o, t) IF true
            DO CREATE TABLE SCRATCH (x)
            CREATE RULE r2, d ON observation(r, o, t) IF true DO ALERT 'y'
            """
        )
        assert [rule.rule_id for rule in program.rules] == ["r1", "r2"]

    def test_aliases_accumulate_across_statements(self):
        program = parse_program(
            """
            DEFINE E1 = observation('r1', o1, t1)
            DEFINE E2 = E1 ; observation('r2', o2, t2)
            CREATE RULE r1, c ON WITHIN(E2, 1min) IF true DO ALERT 'z'
            """
        )
        assert isinstance(program.aliases["E2"], Seq)

    @pytest.mark.parametrize("bad", [
        "CREATE RULE",                                        # truncated
        "CREATE RULE r1, name",                               # no ON
        "CREATE RULE r1, name ON observation(r, o, t)",       # no IF
        "CREATE RULE r1, n ON observation(r, o, t) IF true",  # no DO
        "DEFINE = observation(r, o, t)",                      # missing name
        "DEFINE X observation(r, o, t)",                      # missing '='
        "BOGUS STATEMENT",
    ])
    def test_malformed_programs(self, bad):
        with pytest.raises(RuleSyntaxError):
            parse_program(bad)

    def test_unknown_rule_lookup(self):
        program = parse_program(
            "CREATE RULE r1, c ON observation(r, o, t) IF true DO ALERT 'x'"
        )
        with pytest.raises(KeyError):
            program.rule("missing")


class TestPrinter:
    CASES = [
        obs("r1", Var("o"), t=Var("t")),
        obs(Var("r"), Var("o"), group="g1", obj_type="case", t=Var("t")),
        obs(None, None),
        Or(obs("a"), obs("b"), obs("c")),
        And(obs("a"), Not(obs("b"))),
        Seq(obs("a"), obs("b")),
        TSeq(obs("a"), obs("b"), 0.1, 1.0),
        SeqPlus(obs("a", Var("o"))),
        TSeqPlus(obs("a", Var("o")), 0.5, 2.0),
        Within(Seq(Not(obs("a", Var("o"))), obs("a", Var("o"))), 30.0),
        Within(TSeq(TSeqPlus(obs("r1", Var("o1")), 0.1, 1.0), obs("r2", Var("o2")), 10, 20), 600),
    ]

    @pytest.mark.parametrize("event", CASES, ids=range(len(CASES)))
    def test_roundtrip_structural_equality(self, event):
        text = format_event(event)
        parsed = parse_event(text)
        assert parsed.key() == event.key()

    def test_callable_predicate_unprintable(self):
        from repro.core.errors import ReproError

        with pytest.raises(ReproError):
            format_event(obs("a", where=lambda o: True))


class TestParserRobustness:
    """Fuzz: arbitrary text must raise RuleSyntaxError (or parse), never
    crash with an unrelated exception."""

    def test_random_token_soup(self):
        import random

        from repro.core.errors import ReproError

        rng = random.Random(42)
        vocabulary = [
            "CREATE", "RULE", "DEFINE", "ON", "IF", "DO", "observation",
            "TSEQ+", "WITHIN", "(", ")", ",", ";", "=", "'x'", "o", "t",
            "5sec", "AND", "NOT", "|", "0.1", "r4", "¬",
        ]
        crashes = []
        for _ in range(300):
            text = " ".join(
                rng.choice(vocabulary) for _ in range(rng.randrange(1, 25))
            )
            try:
                parse_program(text)
            except ReproError:
                pass  # expected failure mode
            except RecursionError:
                pass  # deep nesting from '(' soup is acceptable too
            except Exception as exc:  # pragma: no cover - the assertion
                crashes.append((text, repr(exc)))
        assert not crashes, crashes[:3]
