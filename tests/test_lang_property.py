"""Property-based round-trip: format_event(parse(format_event(e))) is stable.

Random event expressions are generated over a small vocabulary of
readers, objects and variables; every generated expression must print to
text that re-parses to a structurally identical expression (equal
``key()``), and compile into an engine without errors when wrapped in a
WITHIN (which guarantees detectability).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine
from repro.core.expressions import (
    And,
    Not,
    Or,
    Seq,
    TSeq,
    TSeqPlus,
    Var,
    Within,
    obs,
)
from repro.lang import format_event, parse_event

_READERS = ["r1", "r2", None]
_VARS = ["o", "p", "q"]


@st.composite
def primitive_events(draw):
    reader = draw(st.sampled_from(_READERS))
    if reader is None and draw(st.booleans()):
        reader = Var(draw(st.sampled_from(["r", "s"])))
    obj = draw(st.sampled_from([None, "tag9"] + _VARS))
    if isinstance(obj, str) and obj in _VARS:
        obj = Var(obj)
    obj_type = draw(st.sampled_from([None, "case", "laptop"]))
    group = None
    if isinstance(reader, Var) and draw(st.booleans()):
        group = draw(st.sampled_from(["g1", "dock"]))
    t = Var(draw(st.sampled_from(["t1", "t2"]))) if draw(st.booleans()) else None
    return obs(reader, obj, group=group, obj_type=obj_type, t=t)


def _bounds(draw):
    lower = draw(st.integers(0, 4)) * 0.5
    upper = lower + draw(st.integers(1, 6)) * 0.5
    return lower, upper


@st.composite
def composite_events(draw, depth=2):
    if depth == 0:
        return draw(primitive_events())
    child = composite_events(depth=depth - 1)
    choice = draw(st.integers(0, 5))
    if choice == 0:
        return Or(draw(child), draw(child))
    if choice == 1:
        left, right = draw(child), draw(child)
        if isinstance(left, Not) and isinstance(right, Not):
            right = draw(primitive_events())
        return And(left, right)
    if choice == 2:
        left, right = draw(child), draw(child)
        if isinstance(left, Not) and isinstance(right, Not):
            right = draw(primitive_events())
        return Seq(left, right)
    if choice == 3:
        lower, upper = _bounds(draw)
        left, right = draw(child), draw(child)
        if isinstance(left, Not) and isinstance(right, Not):
            right = draw(primitive_events())
        return TSeq(left, right, lower, upper)
    if choice == 4:
        lower, upper = _bounds(draw)
        inner = draw(child)
        if isinstance(inner, Not):
            inner = draw(primitive_events())
        return TSeqPlus(inner, lower, upper)
    inner = draw(child)
    if isinstance(inner, Not):
        return Not(draw(primitive_events()))
    return Not(inner)


@given(composite_events())
@settings(max_examples=300, deadline=None)
def test_print_parse_roundtrip(event):
    text = format_event(event)
    parsed = parse_event(text)
    assert parsed.key() == event.key()
    # And the round-trip is a fixed point textually.
    assert format_event(parsed) == text


@given(composite_events())
@settings(max_examples=100, deadline=None)
def test_printed_rules_compile(event):
    source = (
        f"CREATE RULE p1, property rule ON WITHIN({format_event(event)}, 1hour) "
        "IF true DO ALERT 'ok'"
    )
    from repro.core.errors import CompileError
    from repro.lang import parse_rules

    rules = parse_rules(source)
    try:
        Engine(rules)
    except CompileError:
        # Some shapes stay undetectable even when bounded (e.g. an AND of
        # only negations can't occur); rejection is the correct outcome.
        pass
