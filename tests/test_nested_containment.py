"""Nested containment: items → cases → pallets, two aggregation rules.

The paper's containment model is hierarchical (items in cases, cases on
pallets); this integration test runs two containment rules at different
granularities on one engine and verifies the full tree, the temporal
queries across unpacking, and the interaction with the sale rule.
"""

import random

import pytest

from repro import Engine, Observation
from repro.apps import containment_rule, sale_rule, unpacking_rule
from repro.simulator import PackingConfig, simulate_packing
from repro.store import RfidStore


@pytest.fixture
def packed_world():
    """Items packed into cases (simulated), cases packed onto a pallet
    (derived second-stage stream), with both rules on one engine."""
    trace = simulate_packing(
        PackingConfig(cases=4, items_per_case=3), rng=random.Random(12)
    )
    # Second stage: the four cases ride a pallet conveyor (reader r3)
    # 0.5s apart, then the pallet tag is read by r4 fifteen seconds on.
    stage_start = trace.end_time + 30.0
    second_stage = [
        Observation("r3", case.case_epc, stage_start + index * 0.5)
        for index, case in enumerate(trace.cases)
    ]
    pallet_time = stage_start + 1.5 + 15.0
    second_stage.append(Observation("r4", "PALLET-1", pallet_time))

    store = RfidStore()
    engine = Engine(
        [
            containment_rule("r1", "r2", rule_id="items-into-cases"),
            containment_rule("r3", "r4", rule_id="cases-onto-pallet"),
        ],
        store=store,
    )
    stream = trace.observations + second_stage
    for observation in stream:
        engine.submit(observation)
    engine.flush()
    return trace, store, engine, pallet_time


class TestNestedContainment:
    def test_two_level_tree(self, packed_world):
        trace, store, _engine, _pallet_time = packed_world
        tree = store.containment_tree("PALLET-1")
        assert set(tree) == {case.case_epc for case in trace.cases}
        for case in trace.cases:
            assert set(tree[case.case_epc]) == set(case.item_epcs)

    def test_item_grandparent_via_parents(self, packed_world):
        trace, store, _engine, _pallet_time = packed_world
        item = trace.cases[0].item_epcs[0]
        case = store.parent_of(item)
        assert case == trace.cases[0].case_epc
        assert store.parent_of(case) == "PALLET-1"

    def test_rules_counted_separately(self, packed_world):
        trace, _store, engine, _pallet_time = packed_world
        assert engine.stats.per_rule["items-into-cases"] == len(trace.cases)
        assert engine.stats.per_rule["cases-onto-pallet"] == 1

    def test_temporal_tree_before_pallet(self, packed_world):
        trace, store, _engine, pallet_time = packed_world
        before = pallet_time - 1.0
        assert store.containment_tree("PALLET-1", at=before) == {}
        case = trace.cases[0].case_epc
        assert store.parent_of(case, at=before) is None


class TestUnpackAndSell:
    def test_unpacking_pallet_keeps_case_contents(self, packed_world):
        trace, store, _engine, pallet_time = packed_world
        store.unpack("PALLET-1", pallet_time + 100.0)
        assert store.containment_tree("PALLET-1") == {}
        case = trace.cases[0]
        assert store.contents_of(case.case_epc) == sorted(case.item_epcs)

    def test_sale_removes_item_from_case_only(self, packed_world):
        trace, store, _engine, pallet_time = packed_world
        # A separate engine sells one item later.
        seller = Engine([sale_rule(("pos1",))], store=store)
        sold = trace.cases[0].item_epcs[0]
        list(seller.run([Observation("pos1", sold, pallet_time + 500.0)]))
        case = trace.cases[0].case_epc
        assert sold not in store.contents_of(case)
        assert store.parent_of(case) == "PALLET-1"  # pallet level untouched


class TestUnpackingRuleAtPalletLevel:
    def test_pallet_unpack_station(self, packed_world):
        trace, store, _engine, pallet_time = packed_world
        unpack_engine = Engine([unpacking_rule("r9")], store=store)
        list(unpack_engine.run([Observation("r9", "PALLET-1", pallet_time + 50.0)]))
        assert store.containment_tree("PALLET-1") == {}
        # History preserved: the tree still exists in the past.
        past = pallet_time + 10.0
        assert set(store.containment_tree("PALLET-1", at=past)) == {
            case.case_epc for case in trace.cases
        }
