"""Tests for the networkx-based supply network simulator and rendering."""

import random

import pytest

from repro import Engine
from repro.apps import location_rule
from repro.simulator import SupplyNetwork, default_network
from repro.store import RfidStore, render_summary, render_timeline


class TestNetworkConstruction:
    def test_sites_and_routes(self):
        network = default_network()
        assert network.reader_of("factory") == "portal_factory"
        placements = dict(network.reader_placements())
        assert placements["portal_dc-east"] == "dc-east"

    def test_route_prefers_fastest(self):
        network = default_network()
        # store-2 is reachable via both DCs; east is faster.
        assert network.route("factory", "store-2") == [
            "factory",
            "dc-east",
            "store-2",
        ]

    def test_unreachable_route(self):
        network = SupplyNetwork()
        network.add_site("a")
        network.add_site("b")
        with pytest.raises(ValueError):
            network.route("a", "b")

    def test_validation(self):
        network = SupplyNetwork()
        network.add_site("a")
        with pytest.raises(ValueError):
            network.add_route("a", "missing", transit=(1, 2))
        with pytest.raises(ValueError):
            network.add_site("bad", dwell=(5.0, 1.0))
        network.add_site("b")
        with pytest.raises(ValueError):
            network.add_route("a", "b", transit=(0, 1))


class TestFlows:
    def test_flow_visits_route_in_order(self):
        network = default_network()
        trace = network.flow("factory", "store-3", objects=3,
                             rng=random.Random(2))
        for epc, route in trace.routes.items():
            assert route == ["factory", "dc-west", "store-3"]
            visits = [v for v in trace.visits if v.obj_epc == epc]
            assert [v.location for v in visits] == route
            times = [v.arrive for v in visits]
            assert times == sorted(times)

    def test_observations_ordered(self):
        from repro.readers import assert_ordered

        network = default_network()
        trace = network.flow("factory", "store-1", objects=5,
                             rng=random.Random(3))
        assert_ordered(trace.observations)
        assert len(trace.observations) == 5 * 3

    def test_end_to_end_with_location_rule(self):
        network = default_network()
        trace = network.flow("factory", "store-2", objects=4,
                             rng=random.Random(4))
        store = RfidStore()
        for reader, site in network.reader_placements():
            store.place_reader(reader, site)
        engine = Engine([location_rule()], store=store)
        for observation in trace.observations:
            engine.submit(observation)
        engine.flush()
        for epc, route in trace.routes.items():
            history = [loc for loc, _s, _e in store.location_history(epc)]
            assert history == route


class TestRendering:
    def test_timeline_bar_lengths(self):
        store = RfidStore()
        store.update_location("box", "factory", 0.0)
        store.update_location("box", "store", 75.0)
        text = render_timeline(store, "box", width=20, now=100.0)
        lines = text.splitlines()
        assert "factory" in lines[1] and "store" in lines[2]
        factory_bar = lines[1].count("=")
        store_bar = lines[2].count("=")
        assert factory_bar > store_bar  # 75s vs 25s

    def test_timeline_no_history(self):
        store = RfidStore()
        assert "no location history" in render_timeline(store, "ghost")

    def test_summary_lists_tables_and_alerts(self):
        store = RfidStore()
        store.send_alert("r5", "boom", 1.0)
        text = render_summary(store)
        assert "OBJECTLOCATION" in text
        assert "boom" in text

    def test_inspect_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        store = RfidStore()
        store.update_location("box", "dock", 1.0)
        store.add_containment(["box"], "pallet", 2.0)
        path = str(tmp_path / "store.json")
        store.save_json(path)
        assert main(["inspect", "--store", path, "--object", "box"]) == 0
        output = capsys.readouterr().out
        assert "dock" in output and "pallet" in output
