"""Tests for the NFA baseline, including differential validation against
the graph engine's unrestricted context."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine, Observation, Var, Within, obs
from repro.baselines import NfaSequenceDetector, PatternStep
from repro.core.expressions import Seq


class TestNfaUnit:
    def _ab(self, window=10.0, correlate=False):
        return NfaSequenceDetector(
            [PatternStep(reader="A"), PatternStep(reader="B")],
            window=window,
            correlate_object=correlate,
        )

    def test_simple_match(self):
        detector = self._ab()
        detector.submit(Observation("A", "x", 0.0))
        matches = detector.submit(Observation("B", "x", 1.0))
        assert len(matches) == 1

    def test_all_matches_semantics(self):
        detector = self._ab()
        detector.submit(Observation("A", "x", 0.0))
        detector.submit(Observation("A", "y", 1.0))
        matches = detector.submit(Observation("B", "z", 2.0))
        assert len(matches) == 2  # both As pair with the B

    def test_partial_runs_not_consumed(self):
        detector = self._ab()
        detector.submit(Observation("A", "x", 0.0))
        detector.submit(Observation("B", "x", 1.0))
        matches = detector.submit(Observation("B", "x", 2.0))
        assert len(matches) == 1  # the same A matches the second B too

    def test_window_expiry(self):
        detector = self._ab(window=5.0)
        detector.submit(Observation("A", "x", 0.0))
        assert detector.submit(Observation("B", "x", 6.0)) == []
        assert detector.runs == []  # expired run pruned

    def test_strict_order(self):
        detector = self._ab()
        detector.submit(Observation("A", "x", 5.0))
        assert detector.submit(Observation("B", "x", 5.0)) == []

    def test_object_correlation(self):
        detector = self._ab(correlate=True)
        detector.submit(Observation("A", "x", 0.0))
        assert detector.submit(Observation("B", "other", 1.0)) == []
        assert len(detector.submit(Observation("B", "x", 2.0))) == 1

    def test_three_step_pattern(self):
        detector = NfaSequenceDetector(
            [PatternStep(reader=r) for r in ("A", "B", "C")], window=10.0
        )
        matches = detector.run(
            [Observation(r, "x", float(i)) for i, r in enumerate("ABC")]
        )
        assert len(matches) == 1

    def test_predicate_step(self):
        detector = NfaSequenceDetector(
            [PatternStep(predicate=lambda o: o.obj.startswith("special"))],
            window=5.0,
        )
        assert detector.run([Observation("r", "special-1", 0.0),
                             Observation("r", "plain", 1.0)]) != []
        assert len(detector.matches) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            NfaSequenceDetector([], window=1.0)
        with pytest.raises(ValueError):
            NfaSequenceDetector([PatternStep()], window=0.0)

    def test_peak_runs_tracks_blowup(self):
        detector = self._ab(window=100.0)
        for index in range(20):
            detector.submit(Observation("A", f"t{index}", float(index)))
        assert detector.peak_runs == 20


@st.composite
def abc_streams(draw):
    entries = draw(
        st.lists(
            st.tuples(st.sampled_from("ABC"), st.integers(1, 6)),
            max_size=25,
        )
    )
    stream = []
    time = 0.0
    for reader, gap in entries:
        time += gap * 0.5
        stream.append(Observation(reader, f"o{len(stream)}", time))
    return stream


class TestDifferentialAgainstEngine:
    @staticmethod
    def engine_matches(stream, window):
        engine = Engine(context="unrestricted")
        engine.watch(Within(Seq(Seq(obs("A"), obs("B")), obs("C")), window))
        found = set()
        for detection in engine.run(stream):
            observations = detection.instance.observations()
            found.add(tuple(o.timestamp for o in observations))
        return found

    @staticmethod
    def nfa_matches(stream, window):
        detector = NfaSequenceDetector(
            [PatternStep(reader=r) for r in "ABC"], window=window
        )
        detector.run(stream)
        return {
            tuple(o.timestamp for o in match) for match in detector.matches
        }

    @given(abc_streams(), st.integers(2, 12))
    @settings(max_examples=150, deadline=None)
    def test_nfa_equals_unrestricted_engine(self, stream, window_halves):
        window = window_halves * 0.5
        assert self.nfa_matches(stream, window) == self.engine_matches(
            stream, window
        )
