"""Unit tests for runtime-node internals: history, queries, join keys."""

import pytest

from repro import Engine, Observation, Var, obs
from repro.core.expressions import Not, Or, Seq, SeqPlus, TSeqPlus, Within
from repro.core.graph import EventGraph
from repro.core.instances import PrimitiveInstance
from repro.core.nodes import (
    create_state,
    merge_group_bindings,
    project,
)


def prim(t, bindings=None, obj="x"):
    return PrimitiveInstance(Observation("r", obj, t), bindings or {})


@pytest.fixture
def leaf_state():
    engine = Engine()
    engine.watch(obs("r", Var("o")))
    return engine.states[0]


class TestHistory:
    def test_record_keeps_sorted_order(self, leaf_state):
        for t in (5.0, 1.0, 3.0, 3.0, 2.0):
            leaf_state.record(prim(t))
        assert [i.t_end for i in leaf_state.history] == [1.0, 2.0, 3.0, 3.0, 5.0]

    def test_equal_keys_preserve_arrival_order(self, leaf_state):
        first = prim(3.0, {"o": "first"})
        second = prim(3.0, {"o": "second"})
        leaf_state.record(first)
        leaf_state.record(second)
        assert leaf_state.history == [first, second]

    def test_query_window_boundaries(self, leaf_state):
        for t in (1.0, 2.0, 3.0):
            leaf_state.record(prim(t))
        assert [i.t_end for i in leaf_state.query(1.0, 3.0, {})] == [1.0, 2.0, 3.0]
        assert [i.t_end for i in leaf_state.query(1.0, 3.0, {},
                                                  closed_start=False)] == [2.0, 3.0]
        assert [i.t_end for i in leaf_state.query(1.0, 3.0, {},
                                                  closed_end=False)] == [1.0, 2.0]

    def test_query_binding_filter(self, leaf_state):
        leaf_state.record(prim(1.0, {"o": "a"}))
        leaf_state.record(prim(2.0, {"o": "b"}))
        assert len(leaf_state.query(0.0, 10.0, {"o": "b"})) == 1
        assert len(leaf_state.query(0.0, 10.0, {"o": "zzz"})) == 0
        assert len(leaf_state.query(0.0, 10.0, {})) == 2

    def test_gc_prunes_prefix(self, leaf_state):
        for t in (1.0, 2.0, 3.0, 4.0):
            leaf_state.record(prim(t))
        removed = leaf_state.gc(3.0)
        assert removed == 2
        assert [i.t_end for i in leaf_state.history] == [3.0, 4.0]


class TestBindingHelpers:
    def test_project(self):
        assert project({"a": 1, "b": 2}, ("b", "a")) == (2, 1)
        assert project({"a": 1}, ("a", "missing")) == (1, None)
        assert project({}, ()) == ()

    def test_merge_group_bindings_union(self):
        merged = merge_group_bindings([prim(0, {"a": 1}), prim(1, {"b": 2})])
        assert merged == {"a": 1, "b": 2}

    def test_merge_group_bindings_drops_conflicts(self):
        merged = merge_group_bindings(
            [prim(0, {"a": 1, "c": 9}), prim(1, {"a": 2}), prim(2, {"a": 1})]
        )
        assert merged == {"c": 9}  # 'a' conflicted and stays dropped


class TestJoinKeys:
    def _root_state(self, expr):
        engine = Engine()
        engine.watch(expr)
        root = engine.graph.roots[0]
        return engine.states[root.node_id]

    def test_guaranteed_join_vars_used(self):
        state = self._root_state(
            Within(Seq(obs("A", Var("o")), obs("B", Var("o"))), 100)
        )
        assert state.join_vars == ("o",)

    def test_or_branch_without_var_falls_back(self):
        left = obs("A1", Var("o"))
        right = obs("A2")
        state = self._root_state(
            Within(Seq(Or(left, right), obs("B", Var("o"))), 100)
        )
        assert state.join_vars == ()  # 'o' not guaranteed by the OR branch

    def test_bucketing_by_join_key(self):
        engine = Engine()
        engine.watch(Within(Seq(obs("A", Var("o")), obs("B", Var("o"))), 100))
        state = engine.states[engine.graph.roots[0].node_id]
        engine.submit(Observation("A", "x", 0.0))
        engine.submit(Observation("A", "y", 1.0))
        assert set(state.buckets) == {("x",), ("y",)}


class TestPrimitiveMatching:
    def test_match_returns_none_fast_for_wrong_reader(self, leaf_state):
        assert leaf_state.match(Observation("other", "o", 0.0)) is None

    def test_match_binds_all_variables(self):
        engine = Engine()
        engine.watch(obs(Var("r"), Var("o"), t=Var("t")))
        state = engine.states[0]
        bindings = state.match(Observation("rdr", "tag", 7.5))
        assert bindings == {"r": "rdr", "o": "tag", "t": 7.5}


class TestStateFactory:
    def test_every_kind_has_a_state_class(self):
        engine = Engine()
        graph = EventGraph()
        shapes = [
            obs("a"),
            Or(obs("a"), obs("b")),
            Within(obs("a") & Not(obs("b")), 5),
            obs("a") >> obs("b"),
            TSeqPlus(obs("a"), 0, 1),
            Within(SeqPlus(obs("a")), 5),
        ]
        for shape in shapes:
            root = graph.add_root(shape)
            state = create_state(root, engine)
            assert state.node is root
