"""Tests for repro.obs: metrics registry, typed tracing, API redesign."""

import json
import random
import warnings

import pytest

from repro import Engine, Observation, OutOfOrderPolicy, TSeq, TSeqPlus, Var, obs
from repro.core.sharding import ShardedEngine
from repro.obs import (
    CallableObserver,
    EngineObserver,
    MetricsRegistry,
    MulticastObserver,
    RecordingObserver,
    Span,
    as_observer,
    rollup,
)
from repro.rules import Rule


def containment(rule_id, item_reader, case_reader):
    return Rule(
        rule_id,
        rule_id,
        TSeq(
            TSeqPlus(obs(item_reader, Var("o1")), 0.1, 1.0),
            obs(case_reader, Var("o2")),
            10,
            20,
        ),
    )


def packing_stream(item_reader, case_reader, cases, start=0.0):
    """One packing line: per case, 3 items then the case reading."""
    observations = []
    time = start
    for index in range(cases):
        for item in range(3):
            observations.append(
                Observation(item_reader, f"{item_reader}-i{index}-{item}", time)
            )
            time += 0.5
        observations.append(
            Observation(case_reader, f"{case_reader}-c{index}", time + 12.0)
        )
        time += 30.0
    return observations


# ---------------------------------------------------------------------------
# metrics primitives


class TestMetricsPrimitives:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.dec(4)
        gauge.inc()
        assert gauge.value == 7

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            histogram.observe(value)
        sample = registry.get("h").snapshot()["samples"][0]
        assert sample["buckets"] == {"1": 2, "10": 3, "+Inf": 4}
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(106.2)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(10.0, 1.0))

    def test_labels_create_cached_children(self):
        registry = MetricsRegistry()
        family = registry.counter("by_kind", labelnames=("kind",))
        family.labels(kind="seq").inc()
        family.labels(kind="seq").inc()
        family.labels(kind="and").inc()
        samples = registry.get("by_kind").snapshot()["samples"]
        values = {sample["labels"]["kind"]: sample["value"] for sample in samples}
        assert values == {"seq": 2.0, "and": 1.0}

    def test_wrong_labelnames_rejected(self):
        family = MetricsRegistry().counter("c", labelnames=("kind",))
        with pytest.raises(ValueError):
            family.labels(node="seq")
        with pytest.raises(ValueError):
            family.inc()  # labeled family has no solo child

    def test_registration_is_idempotent_but_type_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total")
        assert registry.counter("x_total") is first
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.counter("x_total", labelnames=("other",))

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        histogram = registry.histogram("h", buckets=(1.0,))
        counter.inc(5)
        histogram.observe(0.5)
        registry.reset()
        assert counter.value == 0
        assert registry.get("h").snapshot()["samples"][0]["count"] == 0
        assert registry.names() == ["c_total", "h"]

    def test_rollup_sums_counters_and_merges_histograms(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labelnames=("engine",))
        family.labels(engine="a").inc(2)
        family.labels(engine="b").inc(3)
        assert rollup(registry, "c_total") == 5
        hist = registry.histogram("h", labelnames=("engine",), buckets=(1.0,))
        hist.labels(engine="a").observe(0.5)
        hist.labels(engine="b").observe(2.0)
        merged = rollup(registry, "h")
        assert merged["count"] == 2
        assert merged["buckets"] == {"1": 1, "+Inf": 2}
        assert rollup(registry, "missing") is None


class TestExposition:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "A demo counter.").inc(3)
        registry.gauge("demo_depth", "A demo gauge.", labelnames=("engine",)).labels(
            engine="main"
        ).set(2)
        histogram = registry.histogram(
            "demo_seconds", "A demo histogram.", buckets=(0.01, 0.1)
        )
        histogram.observe(0.005)
        histogram.observe(0.05)
        histogram.observe(5.0)
        return registry

    def test_prometheus_golden(self):
        expected = (
            "# HELP demo_depth A demo gauge.\n"
            "# TYPE demo_depth gauge\n"
            'demo_depth{engine="main"} 2\n'
            "# HELP demo_seconds A demo histogram.\n"
            "# TYPE demo_seconds histogram\n"
            'demo_seconds_bucket{le="0.01"} 1\n'
            'demo_seconds_bucket{le="0.1"} 2\n'
            'demo_seconds_bucket{le="+Inf"} 3\n'
            "demo_seconds_sum 5.055\n"
            "demo_seconds_count 3\n"
            "# HELP demo_total A demo counter.\n"
            "# TYPE demo_total counter\n"
            "demo_total 3\n"
        )
        assert self.build().render_prometheus() == expected

    def test_snapshot_golden_and_json_serialisable(self):
        snapshot = self.build().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["demo_total"] == {
            "type": "counter",
            "help": "A demo counter.",
            "samples": [{"labels": {}, "value": 3.0}],
        }
        assert snapshot["demo_seconds"]["samples"][0]["buckets"] == {
            "0.01": 1,
            "0.1": 2,
            "+Inf": 3,
        }

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labelnames=("path",)).labels(path='a"\\\n').inc()
        rendered = registry.render_prometheus()
        assert 'path="a\\"\\\\\\n"' in rendered

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
        assert MetricsRegistry().snapshot() == {}


class TestSpan:
    def test_span_feeds_histogram(self):
        registry = MetricsRegistry()
        latency = registry.histogram("step_seconds")
        with Span(latency):
            pass
        sample = registry.get("step_seconds").snapshot()["samples"][0]
        assert sample["count"] == 1
        assert sample["sum"] >= 0

    def test_span_records_elapsed_without_sink(self):
        ticks = iter([1.0, 3.5])
        span = Span(clock=lambda: next(ticks))
        with span:
            pass
        assert span.elapsed == 2.5


# ---------------------------------------------------------------------------
# observer API redesign


class TestObserverProtocol:
    def test_typed_events_cover_engine_lifecycle(self):
        from repro.core.expressions import And, Not, Within

        recorder = RecordingObserver()
        engine = Engine(observer=recorder, gc_every=1)
        engine.watch(Within(And(obs("A"), Not(obs("B"))), 10))
        engine.submit(Observation("B", "x", 0.0))
        engine.submit(Observation("A", "y", 5.0))   # killed by lookback
        engine.submit(Observation("A", "y", 50.0))  # pending, confirmed
        engine.flush()
        kinds = set(recorder.kinds())
        assert {"observation", "emit", "kill", "pseudo", "detection"} <= kinds
        (detection,) = recorder.of_kind("detection")[-1]
        assert detection.time == 50.0 + 10

    def test_partial_observer_subclass(self):
        class EmitOnly(EngineObserver):
            def __init__(self):
                self.emitted = []

            def on_emit(self, node, instance):
                self.emitted.append(node.kind)

        observer = EmitOnly()
        engine = Engine(observer=observer)
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 1.0))
        assert observer.emitted == ["obs"]

    def test_multicast_fans_out_in_order(self):
        first, second = RecordingObserver(), RecordingObserver()
        engine = Engine(observer=MulticastObserver(first, second))
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 1.0))
        assert first.kinds() == second.kinds() != []

    def test_observer_and_trace_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Engine(observer=RecordingObserver(), trace=lambda kind, payload: None)


class TestLegacyTraceShim:
    def test_bare_callable_warns_and_wraps(self):
        events = []
        with pytest.warns(DeprecationWarning, match="EngineObserver"):
            engine = Engine(trace=lambda kind, payload: events.append(kind))
        assert isinstance(engine.observer, CallableObserver)
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 1.0))
        assert events == ["observation", "emit", "detection"]

    def test_shim_reproduces_legacy_payload_shapes(self):
        captured = []
        with pytest.warns(DeprecationWarning):
            engine = Engine(trace=lambda kind, payload: captured.append((kind, payload)))
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 1.0))
        payloads = dict(captured)
        assert payloads["observation"]["observation"].obj == "a"
        assert payloads["emit"]["node"] == 0
        assert payloads["detection"]["detection"].time == 1.0

    def test_trace_property_round_trips(self):
        def callback(kind, payload):
            pass

        with pytest.warns(DeprecationWarning):
            engine = Engine(trace=callback)
        assert engine.trace is callback
        assert Engine().trace is None

    def test_as_observer_passthrough_and_rejection(self):
        recorder = RecordingObserver()
        assert as_observer(recorder) is recorder
        assert as_observer(None) is None
        with pytest.raises(TypeError):
            as_observer(42)

    def test_engine_observer_instances_never_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Engine(observer=RecordingObserver())


# ---------------------------------------------------------------------------
# OutOfOrderPolicy


class TestOutOfOrderPolicy:
    def test_enum_accepted(self):
        engine = Engine(out_of_order=OutOfOrderPolicy.DROP)
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 10))
        assert engine.submit(Observation("r", "a", 5)) == []
        assert engine.stats.dropped_out_of_order == 1

    def test_legacy_strings_still_accepted(self):
        for spelling in ("raise", "drop", "accept"):
            assert Engine(out_of_order=spelling)._out_of_order is OutOfOrderPolicy(
                spelling
            )

    def test_enum_compares_equal_to_string(self):
        assert OutOfOrderPolicy.RAISE == "raise"
        assert OutOfOrderPolicy("drop") is OutOfOrderPolicy.DROP

    def test_bad_policy_rejected_with_options_listed(self):
        with pytest.raises(ValueError, match="raise"):
            Engine(out_of_order="shuffle")

    def test_exported_from_package_root(self):
        import repro

        assert repro.OutOfOrderPolicy is OutOfOrderPolicy
        assert "OutOfOrderPolicy" in repro.__all__

    def test_drop_policy_counts_into_metrics(self):
        registry = MetricsRegistry()
        engine = Engine(out_of_order=OutOfOrderPolicy.DROP, metrics=registry)
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 10))
        engine.submit(Observation("r", "a", 5))
        assert rollup(registry, "rceda_dropped_out_of_order_total") == 1


# ---------------------------------------------------------------------------
# submit_many


class TestSubmitMany:
    def stream(self):
        return packing_stream("a", "b", cases=4)

    def test_matches_per_observation_loop(self):
        loop_engine = Engine([containment("r", "a", "b")])
        batch_engine = Engine([containment("r", "a", "b")])
        loop_detections = []
        for observation in self.stream():
            loop_detections.extend(loop_engine.submit(observation))
        loop_detections.extend(loop_engine.flush())
        batch_detections = batch_engine.submit_many(self.stream())
        batch_detections.extend(batch_engine.flush())
        assert [d.time for d in batch_detections] == [
            d.time for d in loop_detections
        ]
        assert len(batch_detections) == 4

    def test_respects_reorder_buffer(self):
        engine = Engine(reorder_delay=5.0)
        engine.watch(obs("r"))
        shuffled = [
            Observation("r", "a", 10.0),
            Observation("r", "b", 8.0),
            Observation("r", "c", 20.0),
        ]
        detections = engine.submit_many(shuffled)
        detections.extend(engine.flush())
        assert [d.time for d in detections] == [8.0, 10.0, 20.0]

    def test_sharded_engine_has_it_too(self):
        rules = [containment("r1", "a", "b"), containment("r2", "c", "d")]
        stream = sorted(
            packing_stream("a", "b", 3) + packing_stream("c", "d", 3, start=7.0),
            key=lambda observation: observation.timestamp,
        )
        sharded = ShardedEngine(rules, max_shards=2)
        single = Engine(rules)
        sharded_detections = sharded.submit_many(stream) + sharded.flush()
        single_detections = single.submit_many(stream) + single.flush()
        assert len(sharded_detections) == len(single_detections) == 6


# ---------------------------------------------------------------------------
# reset audit


class TestResetClearsObservability:
    def test_reset_clears_reorder_buffer_and_metrics_then_reuses(self):
        registry = MetricsRegistry()
        engine = Engine(
            [containment("r", "a", "b")], reorder_delay=5.0, metrics=registry
        )
        stream = packing_stream("a", "b", cases=3)

        first = engine.submit_many(stream) + engine.flush()
        first_snapshot = registry.snapshot()
        assert rollup(registry, "rceda_observations_total") == len(stream)

        engine.reset()
        # Metrics slice zeroed, reorder buffer empty: nothing carried over.
        assert rollup(registry, "rceda_observations_total") == 0
        assert rollup(registry, "rceda_detections_total") == 0
        assert engine._reorder._heap == []
        assert list(engine._reorder.drain()) == []

        second = engine.submit_many(stream) + engine.flush()
        assert [d.time for d in second] == [d.time for d in first]

        def deterministic(snapshot):
            """Drop wall-clock histogram content; keep counts and counters."""
            out = {}
            for name, family in snapshot.items():
                samples = []
                for sample in family["samples"]:
                    sample = dict(sample)
                    if "seconds" in name:
                        sample.pop("sum", None)
                        sample.pop("buckets", None)
                    samples.append(sample)
                out[name] = samples
            return out

        assert deterministic(registry.snapshot()) == deterministic(first_snapshot)

    def test_reset_keeps_reorder_instrumentation_attached(self):
        registry = MetricsRegistry()
        engine = Engine(reorder_delay=5.0, metrics=registry)
        engine.watch(obs("r"))
        engine.submit(Observation("r", "a", 10.0))
        engine.reset()
        assert engine._reorder.instruments is not None
        engine.submit(Observation("r", "a", 1.0))
        engine.submit(Observation("r", "b", 20.0))
        merged = rollup(registry, "rceda_reorder_lateness_seconds")
        assert merged["count"] == 2


# ---------------------------------------------------------------------------
# instrumented engine + sharded rollup equivalence


class TestEngineInstrumentation:
    def test_instrumented_run_reports_hot_path_metrics(self):
        registry = MetricsRegistry()
        # The second rule never completes: its "a" initiators expire and
        # must be reclaimed by GC.
        stale = Rule(
            "stale",
            "stale",
            TSeq(obs("a", Var("x")), obs("never", Var("x")), 0, 5),
        )
        engine = Engine(
            [containment("r", "a", "b"), stale], metrics=registry, gc_every=4
        )
        detections = engine.submit_many(packing_stream("a", "b", cases=6))
        detections += engine.flush()
        assert len(detections) == 6

        snapshot = registry.snapshot()
        stats = engine.stats
        assert rollup(registry, "rceda_observations_total") == stats.observations
        assert rollup(registry, "rceda_detections_total") == stats.detections
        assert (
            rollup(registry, "rceda_pseudo_scheduled_total")
            == stats.pseudo_scheduled
        )
        assert rollup(registry, "rceda_pseudo_fired_total") == stats.pseudo_fired
        assert rollup(registry, "rceda_gc_reclaimed_total") == stats.gc_removed
        assert stats.gc_removed > 0

        latency = snapshot["rceda_observation_latency_seconds"]["samples"][0]
        assert latency["count"] == stats.observations

        match_samples = snapshot["rceda_node_match_seconds"]["samples"]
        counts_by_kind = {
            sample["labels"]["kind"]: sample["count"]
            for sample in match_samples
            if sample["count"]
        }
        # Primitive matching plus the tseq/tseq+ composite propagation.
        assert "obs" in counts_by_kind
        assert "tseq" in counts_by_kind and "tseq+" in counts_by_kind

        emits = {
            sample["labels"]["kind"]: sample["value"]
            for sample in snapshot["rceda_emits_total"]["samples"]
            if sample["value"]
        }
        assert emits["tseq"] == 6

        assert "rceda_pseudo_queue_depth" in snapshot

    def test_no_metrics_attached_means_no_obs_state(self):
        engine = Engine()
        assert engine.metrics is None
        assert engine._instr is None


class TestShardedRollupEquivalence:
    def random_stream(self, pairs, seed, n=120):
        rng = random.Random(seed)
        observations = []
        time = 0.0
        for _ in range(n):
            time += rng.uniform(0.2, 2.0)
            item_reader, case_reader = rng.choice(pairs)
            if rng.random() < 0.7:
                observations.append(
                    Observation(item_reader, f"i{rng.randrange(40)}", time)
                )
            else:
                observations.append(
                    Observation(case_reader, f"c{rng.randrange(20)}", time)
                )
        return observations

    @pytest.mark.parametrize("seed", [3, 17])
    def test_rollup_matches_single_engine(self, seed):
        pairs = [("a1", "b1"), ("a2", "b2"), ("a3", "b3")]
        rules = [
            containment(f"r{index}", item, case)
            for index, (item, case) in enumerate(pairs)
        ]
        stream = self.random_stream(pairs, seed)

        single_registry = MetricsRegistry()
        single = Engine(rules, metrics=single_registry)
        single_detections = single.submit_many(stream) + single.flush()

        sharded_registry = MetricsRegistry()
        sharded = ShardedEngine(rules, max_shards=3, metrics=sharded_registry)
        sharded_detections = sharded.submit_many(stream) + sharded.flush()

        assert len(sharded_detections) == len(single_detections)
        # Each shard reports under its own engine label in ONE registry;
        # the cross-shard rollup equals the single-engine totals.
        for name in (
            "rceda_detections_total",
            "rceda_pseudo_scheduled_total",
            "rceda_pseudo_fired_total",
            "rceda_kills_total",
        ):
            assert rollup(sharded_registry, name) == rollup(
                single_registry, name
            ), name
        shard_labels = {
            sample["labels"]["engine"]
            for sample in sharded_registry.snapshot()[
                "rceda_observations_total"
            ]["samples"]
        }
        assert len(shard_labels) == len(sharded.shards)
