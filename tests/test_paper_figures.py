"""The paper's worked examples as exact fixtures.

* Fig. 4 — the event history that breaks type-level ECA detection;
* Fig. 8 — the pseudo-event walk-through for WITHIN(E1 ∧ ¬E2, 10s);
* Examples 1 and 2 of the introduction, end to end.
"""

from repro import Engine, FunctionRegistry, Observation, Var, Within, obs
from repro.baselines import TypeLevelEcaDetector
from repro.core.expressions import And, Not, TSeq, TSeqPlus

FIG4_HISTORY = [
    Observation("r1", "item@1", 1.0),
    Observation("r1", "item@2", 2.0),
    Observation("r1", "item@3", 3.0),
    Observation("r1", "item@5", 5.0),
    Observation("r1", "item@6", 6.0),
    Observation("r1", "item@7", 7.0),
    Observation("r2", "case@12", 12.0),
    Observation("r2", "case@15", 15.0),
]

FIG4_EVENT = TSeq(
    TSeqPlus(obs("r1", Var("o1")), 0.0, 1.0), obs("r2", Var("o2")), 5.0, 10.0
)


class TestFig4:
    def test_rceda_finds_both_instances(self):
        engine = Engine()
        engine.watch(FIG4_EVENT)
        detections = list(engine.run(FIG4_HISTORY))
        assert len(detections) == 2
        first = [o.timestamp for o in detections[0].instance.observations()]
        second = [o.timestamp for o in detections[1].instance.observations()]
        # The paper: {e1@1, e1@2, e1@3, e2@12} and {e1@5, e1@6, e1@7, e2@15}.
        assert first == [1.0, 2.0, 3.0, 12.0]
        assert second == [5.0, 6.0, 7.0, 15.0]

    def test_type_level_eca_finds_nothing(self):
        naive = TypeLevelEcaDetector("r1", "r2", (0.0, 1.0), (5.0, 10.0))
        accepted = naive.run(FIG4_HISTORY)
        assert accepted == []
        # Its single type-level candidate is the paper's
        # {e1@1..e1@7} ; e2@12, rejected because dist(e1@3, e1@5) > 1s.
        assert len(naive.candidates) >= 1
        rejected = naive.rejected[0]
        assert [o.timestamp for o in rejected.members] == [1, 2, 3, 5, 6, 7]
        assert rejected.terminator.timestamp == 12.0

    def test_chain_split_is_where_the_paper_says(self):
        engine = Engine()
        engine.watch(TSeqPlus(obs("r1", Var("o")), 0.0, 1.0))
        detections = list(engine.run(FIG4_HISTORY[:6]))
        assert [len(d.instance.constituents) for d in detections] == [3, 3]


class TestFig8:
    def _engine(self):
        engine = Engine()
        engine.watch(Within(And(obs("rA"), Not(obs("rB"))), 10.0))
        return engine

    def test_walkthrough_detects_once_at_30(self):
        engine = self._engine()
        history = [
            Observation("rB", "e2", 2.0),
            Observation("rA", "e1", 10.0),
            Observation("rA", "e1b", 20.0),
        ]
        detections = list(engine.run(history))
        assert len(detections) == 1
        assert detections[0].time == 30.0
        instance = detections[0].instance
        assert (instance.t_begin, instance.t_end) == (20.0, 30.0)

    def test_step_counts_match_the_figure(self):
        engine = self._engine()
        engine.submit(Observation("rB", "e2", 2.0))
        engine.submit(Observation("rA", "e1", 10.0))
        # Fig. 8d: e1@10 deleted because e2@2 in [0, 10].
        assert engine.stats.pending_killed == 1
        assert engine.stats.pseudo_scheduled == 0
        engine.submit(Observation("rA", "e1b", 20.0))
        # Fig. 8f: pseudo event e'[20,30] scheduled.
        assert engine.stats.pseudo_scheduled == 1
        detections = engine.flush()
        # Fig. 8h: occurrence detected after the pseudo event fires.
        assert engine.stats.pseudo_fired == 1
        assert len(detections) == 1


class TestExample1Packing:
    """Intro Example 1: items through reader A, case through reader B."""

    def test_containment_complex_event(self):
        engine = Engine()
        event = TSeq(
            TSeqPlus(obs(None, Var("o1"), group="A"), 0.1, 1.0),
            obs(None, Var("o2"), group="B"),
            10.0,
            20.0,
        )
        functions = FunctionRegistry(
            group=lambda reader: "A" if reader.startswith("a") else "B"
        )
        engine = Engine(functions=functions)
        engine.watch(event)
        stream = [
            Observation("a1", "item1", 0.0),
            Observation("a2", "item2", 0.4),  # another reader of group A
            Observation("a1", "item3", 0.8),
            Observation("b1", "case", 12.0),
        ]
        detections = list(engine.run(stream))
        assert len(detections) == 1
        assert [o.obj for o in detections[0].instance.observations()] == [
            "item1",
            "item2",
            "item3",
            "case",
        ]


class TestExample2AssetMonitoring:
    """Intro Example 2: laptop leaves without a superuser within 5s."""

    def _engine(self):
        types = {"laptop1": "laptop", "boss": "superuser"}
        functions = FunctionRegistry(obj_type=types.get)
        engine = Engine(functions=functions)
        laptop = obs("exit", Var("o4"), obj_type="laptop")
        badge = obs("exit", Var("o5"), obj_type="superuser")
        engine.watch(Within(And(laptop, Not(badge)), 5.0))
        return engine

    def test_unauthorized_alarm(self):
        engine = self._engine()
        detections = list(engine.run([Observation("exit", "laptop1", 100.0)]))
        assert len(detections) == 1
        assert detections[0].time == 105.0

    def test_authorized_no_alarm(self):
        engine = self._engine()
        detections = list(
            engine.run(
                [
                    Observation("exit", "laptop1", 100.0),
                    Observation("exit", "boss", 103.0),
                ]
            )
        )
        assert detections == []

    def test_badge_before_laptop_also_authorizes(self):
        engine = self._engine()
        detections = list(
            engine.run(
                [
                    Observation("exit", "boss", 98.0),
                    Observation("exit", "laptop1", 100.0),
                ]
            )
        )
        assert detections == []
