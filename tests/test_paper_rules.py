"""The paper's Rules 1-5, written in the rule language, run end to end."""

import pytest

from repro import Engine, FunctionRegistry, Observation
from repro.lang import parse_program
from repro.store import UC, RfidStore


def make_engine(source, store=None, functions=None):
    program = parse_program(source)
    store = store if store is not None else RfidStore()
    engine = Engine(program.rules, store=store, functions=functions)
    return engine, store, program


class TestRule1Duplicates:
    SOURCE = """
    CREATE RULE r1, duplicate detection rule
    ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
    IF true
    DO ALERT 'duplicate of {o} at reader {r}'
    """

    def test_duplicate_marked(self):
        engine, store, _ = make_engine(self.SOURCE)
        list(engine.run([Observation("r1", "x", 0.0), Observation("r1", "x", 2.0)]))
        assert store.alerts == [("r1", "duplicate of x at reader r1", 2.0)]

    def test_different_reader_not_duplicate(self):
        engine, store, _ = make_engine(self.SOURCE)
        list(engine.run([Observation("r1", "x", 0.0), Observation("r2", "x", 2.0)]))
        assert store.alerts == []

    def test_outside_window_not_duplicate(self):
        engine, store, _ = make_engine(self.SOURCE)
        list(engine.run([Observation("r1", "x", 0.0), Observation("r1", "x", 7.0)]))
        assert store.alerts == []


class TestRule2Infield:
    SOURCE = """
    CREATE RULE r2, infield filtering
    ON WITHIN(¬observation(r, o, t1); observation(r, o, t2), 30sec)
    IF true
    DO INSERT INTO OBSERVATION VALUES (r, o, t2)
    """

    def test_only_first_readings_stored(self):
        engine, store, _ = make_engine(self.SOURCE)
        stream = [
            Observation("shelf", "mug", 0.0),
            Observation("shelf", "mug", 30.0),
            Observation("shelf", "pen", 45.0),
            Observation("shelf", "mug", 60.0),
        ]
        list(engine.run(stream))
        rows = store.database.query(
            "SELECT object_epc, timestamp FROM OBSERVATION ORDER BY timestamp"
        )
        assert rows == [("mug", 0.0), ("pen", 45.0)]


class TestRule3Location:
    SOURCE = """
    CREATE RULE r3, location change rule
    ON observation(r, o, t)
    IF true
    DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = 'UC';
       INSERT INTO OBJECTLOCATION VALUES (o, r, t, 'UC')
    """

    def test_location_periods(self):
        # The textual rule uses the reader id as the location id, exactly
        # as the paper's Rule 3 sketch hard-codes "loc2".
        engine, store, _ = make_engine(self.SOURCE)
        list(engine.run([
            Observation("dockA", "box", 10.0),
            Observation("dockB", "box", 50.0),
        ]))
        history = store.database.query(
            "SELECT loc_id, tstart, tend FROM OBJECTLOCATION "
            "WHERE object_epc = 'box' ORDER BY tstart"
        )
        assert history == [("dockA", 10.0, 50.0), ("dockB", 50.0, UC)]


class TestRule4Containment:
    SOURCE = """
    DEFINE E1 = observation("r1", o1, t1)
    DEFINE E2 = observation("r2", o2, t2)
    CREATE RULE r4, containment rule
    ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec)
    IF true
    DO BULK INSERT INTO CONTAINMENT VALUES (o1, o2, t2, 'UC')
    """

    def test_bulk_containment(self):
        engine, store, _ = make_engine(self.SOURCE)
        stream = [Observation("r1", f"item{k}", 0.5 * k) for k in range(1, 4)]
        stream.append(Observation("r2", "case", 12.0))
        list(engine.run(stream))
        assert store.contents_of("case") == ["item1", "item2", "item3"]
        rows = store.database.query(
            "SELECT tstart, tend FROM OBJECTCONTAINMENT WHERE parent_epc = 'case'"
        )
        assert rows == [(12.0, UC)] * 3

    def test_no_case_no_containment(self):
        engine, store, _ = make_engine(self.SOURCE)
        list(engine.run([Observation("r1", "item1", 0.0)]))
        assert store.database.query("SELECT * FROM OBJECTCONTAINMENT") == []


class TestRule5AssetMonitoring:
    SOURCE = """
    DEFINE E4 = observation("r4", o4, t4), type(o4) = "laptop"
    DEFINE E5 = observation("r4", o5, t5), type(o5) = "superuser"
    CREATE RULE r5, asset monitoring rule
    ON WITHIN(E4 ∧ ¬E5, 5sec)
    IF true
    DO ALERT 'unauthorized laptop {o4}'
    """

    @pytest.fixture
    def functions(self):
        types = {"laptop9": "laptop", "badge7": "superuser"}
        return FunctionRegistry(obj_type=types.get)

    def test_alarm_for_unescorted_laptop(self, functions):
        engine, store, _ = make_engine(self.SOURCE, functions=functions)
        list(engine.run([Observation("r4", "laptop9", 10.0)]))
        assert store.alerts == [("r5", "unauthorized laptop laptop9", 15.0)]

    def test_superuser_suppresses_alarm(self, functions):
        engine, store, _ = make_engine(self.SOURCE, functions=functions)
        list(
            engine.run(
                [Observation("r4", "laptop9", 10.0), Observation("r4", "badge7", 12.0)]
            )
        )
        assert store.alerts == []

    def test_unrelated_objects_ignored(self, functions):
        engine, store, _ = make_engine(self.SOURCE, functions=functions)
        list(engine.run([Observation("r4", "pallet", 10.0)]))
        assert store.alerts == []


class TestAllRulesTogether:
    def test_one_engine_many_rules(self):
        source = (
            TestRule1Duplicates.SOURCE
            + TestRule4Containment.SOURCE
        )
        program = parse_program(source)
        store = RfidStore()
        engine = Engine(program.rules, store=store)
        stream = [Observation("r1", f"item{k}", 0.5 * k) for k in range(1, 4)]
        stream.append(Observation("r1", "item3", 1.6))  # duplicate of item3@1.5
        stream.append(Observation("r2", "case", 12.0))
        list(engine.run(stream))
        assert store.contents_of("case") == ["item1", "item2", "item3"]
        assert any("duplicate" in message for _r, message, _t in store.alerts)
