"""Property-based tests: the engine against independent oracles.

Each property implements the intended semantics a second time, directly
over the raw event list (no incremental state, no pseudo events), and
checks the streaming engine agrees on randomized inputs.  Timestamps are
drawn from a 0.5-second grid so boundary conditions (distances exactly
at a bound) are exercised constantly.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine, Observation, Var, Within, obs
from repro.core.expressions import And, Not, Seq, TSeq, TSeqPlus

OBJECTS = ("o1", "o2", "o3")


@st.composite
def observation_streams(draw, readers=("A", "B"), max_size=40):
    """A time-ordered stream over a small reader/object space."""
    entries = draw(
        st.lists(
            st.tuples(
                st.sampled_from(readers),
                st.sampled_from(OBJECTS),
                st.integers(min_value=0, max_value=8),  # gap in half-seconds
            ),
            max_size=max_size,
        )
    )
    stream = []
    time = 0.0
    for reader, object_epc, gap in entries:
        time += gap * 0.5
        stream.append(Observation(reader, object_epc, time))
    return stream


def tseq_oracle(stream, lower, upper, within=math.inf):
    """Chronicle TSEQ(A;B) with object correlation, directly computed."""
    buffers = {}
    matches = []
    for observation in stream:
        if observation.reader == "A":
            buffers.setdefault(observation.obj, []).append(observation.timestamp)
        elif observation.reader == "B":
            bucket = buffers.get(observation.obj, [])
            for index, t_init in enumerate(bucket):
                distance = observation.timestamp - t_init
                if (
                    t_init < observation.timestamp
                    and lower <= distance <= upper
                    and observation.timestamp - t_init <= within
                ):
                    matches.append((observation.obj, t_init, observation.timestamp))
                    del bucket[index]
                    break
    return matches


@given(observation_streams(), st.integers(0, 4), st.integers(0, 8))
@settings(max_examples=200, deadline=None)
def test_tseq_matches_oracle(stream, lower_halves, extra_halves):
    lower = lower_halves * 0.5
    upper = lower + extra_halves * 0.5
    engine = Engine()
    engine.watch(TSeq(obs("A", Var("o")), obs("B", Var("o")), lower, upper))
    detections = list(engine.run(stream))
    got = [
        (
            detection.bindings["o"],
            detection.instance.t_begin,
            detection.instance.t_end,
        )
        for detection in detections
    ]
    assert got == tseq_oracle(stream, lower, upper)


def chain_oracle(times, lower, upper):
    """Maximal-chain partition of a time sequence."""
    chains = []
    for time in times:
        if chains and lower <= time - chains[-1][-1] <= upper:
            chains[-1].append(time)
        else:
            chains.append([time])
    return chains


@given(
    st.lists(st.integers(0, 6), max_size=30),
    st.integers(0, 2),
    st.integers(0, 6),
)
@settings(max_examples=200, deadline=None)
def test_tseqplus_partitions_like_oracle(gaps, lower_halves, extra_halves):
    lower = lower_halves * 0.5
    upper = lower + extra_halves * 0.5
    times = []
    current = 0.0
    for gap in gaps:
        current += gap * 0.5
        times.append(current)
    stream = [Observation("R", f"t{i}", t) for i, t in enumerate(times)]

    engine = Engine()
    engine.watch(TSeqPlus(obs("R", Var("o")), lower, upper))
    detections = list(engine.run(stream))
    got = [
        [member.t_end for member in detection.instance.constituents]
        for detection in detections
    ]
    assert got == chain_oracle(times, lower, upper)
    # Chains partition the stream: every occurrence in exactly one chain.
    assert sorted(t for chain in got for t in chain) == sorted(times)


def dedup_oracle(stream, window):
    """Chronicle pairing of same-(reader, object) readings within the window.

    Each reading first tries to terminate the oldest unconsumed earlier
    reading of its key (strictly earlier, within the window), then joins
    the buffer itself; the terminated reading's time is the duplicate.
    """
    buffers = {}
    duplicates = []
    for observation in stream:
        key = (observation.reader, observation.obj)
        bucket = buffers.setdefault(key, [])
        for index, earlier in enumerate(bucket):
            if earlier < observation.timestamp <= earlier + window:
                duplicates.append(earlier)
                del bucket[index]
                break
        bucket.append(observation.timestamp)
    return sorted(duplicates)


@given(observation_streams(readers=("A",)), st.integers(1, 10))
@settings(max_examples=150, deadline=None)
def test_duplicate_rule_matches_oracle(stream, window_halves):
    window = window_halves * 0.5
    reader_var, object_var = Var("r"), Var("o")
    engine = Engine()
    engine.watch(
        Within(Seq(obs(reader_var, object_var), obs(reader_var, object_var)), window)
    )
    detections = list(engine.run(stream))
    got = sorted(detection.instance.t_begin for detection in detections)
    assert got == dedup_oracle(stream, window)


def negation_oracle(stream, tau):
    """Alarm iff no B within tau of an A on either side."""
    a_times = [o.timestamp for o in stream if o.reader == "A"]
    b_times = [o.timestamp for o in stream if o.reader == "B"]
    alarms = []
    for t in a_times:
        if not any(t - tau <= tb <= t + tau for tb in b_times):
            alarms.append(t + tau)
    return sorted(alarms)


@given(observation_streams(), st.integers(1, 8))
@settings(max_examples=150, deadline=None)
def test_negation_matches_oracle(stream, tau_halves):
    tau = tau_halves * 0.5
    engine = Engine()
    engine.watch(Within(And(obs("A"), Not(obs("B"))), tau))
    detections = list(engine.run(stream))
    got = sorted(detection.time for detection in detections)
    assert got == negation_oracle(stream, tau)


@given(observation_streams())
@settings(max_examples=50, deadline=None)
def test_engine_is_deterministic(stream):
    def run_once():
        engine = Engine()
        engine.watch(TSeq(obs("A", Var("o")), obs("B", Var("o")), 0.5, 2.0))
        engine.watch(Within(And(obs("A"), Not(obs("B"))), 1.5))
        return [
            (detection.rule.rule_id, detection.time, detection.instance.t_begin)
            for detection in engine.run(stream)
        ]

    assert run_once() == run_once()


@given(observation_streams(max_size=25))
@settings(max_examples=50, deadline=None)
def test_chronicle_never_reuses_constituents(stream):
    engine = Engine()
    engine.watch(TSeq(obs("A", Var("o")), obs("B", Var("o")), 0.0, 5.0))
    # Hold references while comparing ids: CPython reuses addresses of
    # collected objects, so ids are only unique among *live* instances.
    members = []
    for detection in engine.run(stream):
        members.extend(detection.instance.constituents)
    identities = [id(member) for member in members]
    assert len(identities) == len(set(identities))
