"""Additional property-based suites: filtering oracles, SQL differential
testing, reorder-buffer invariants, store invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine, Observation, Var, Within, obs
from repro.core.expressions import Not, Seq
from repro.filtering import DuplicateFilter
from repro.readers import ReorderBuffer, assert_ordered
from repro.sql import Database
from repro.store import RfidStore

# ---------------------------------------------------------------------------
# infield / outfield oracles
# ---------------------------------------------------------------------------


@st.composite
def reading_times(draw):
    """Strictly ordered reading times for one object on a 0.5s grid."""
    gaps = draw(st.lists(st.integers(1, 12), min_size=1, max_size=25))
    times = []
    current = 0.0
    for gap in gaps:
        current += gap * 0.5
        times.append(current)
    return times


def infield_oracle(times, period):
    """A reading is infield iff no reading in the closed-left lookback."""
    events = []
    for index, time in enumerate(times):
        prior = [t for t in times[:index] if time - period <= t < time]
        if not prior:
            events.append(time)
    return events


def outfield_oracle(times, period):
    """Outfield fires one period after a reading with no successor within
    the period (closed-right boundary keeps the object present)."""
    events = []
    for index, time in enumerate(times):
        successors = [t for t in times[index + 1 :] if time < t <= time + period]
        if not successors:
            events.append(time + period)
    return events


@given(reading_times(), st.integers(2, 10))
@settings(max_examples=150, deadline=None)
def test_infield_rule_matches_oracle(times, period_halves):
    period = period_halves * 0.5
    reader_var, object_var = Var("r"), Var("o")
    engine = Engine()
    engine.watch(
        Within(Seq(Not(obs(reader_var, object_var)), obs(reader_var, object_var)),
               period)
    )
    stream = [Observation("s", "x", time) for time in times]
    got = [detection.instance.t_end for detection in engine.run(stream)]
    assert got == infield_oracle(times, period)


@given(reading_times(), st.integers(2, 10))
@settings(max_examples=150, deadline=None)
def test_outfield_rule_matches_oracle(times, period_halves):
    period = period_halves * 0.5
    reader_var, object_var = Var("r"), Var("o")
    engine = Engine()
    engine.watch(
        Within(Seq(obs(reader_var, object_var), Not(obs(reader_var, object_var))),
               period)
    )
    stream = [Observation("s", "x", time) for time in times]
    got = sorted(detection.time for detection in engine.run(stream))
    assert got == sorted(outfield_oracle(times, period))


@given(reading_times(), st.integers(2, 10))
@settings(max_examples=100, deadline=None)
def test_duplicate_filter_matches_oracle(times, window_halves):
    window = window_halves * 0.5
    stream = [Observation("s", "x", time) for time in times]
    passed = [o.timestamp for o in DuplicateFilter(window).filter(stream)]
    expected = []
    last = -math.inf
    for time in times:
        if time - last >= window:
            expected.append(time)
            last = time
    assert passed == expected


# ---------------------------------------------------------------------------
# SQL differential oracle
# ---------------------------------------------------------------------------


@st.composite
def table_operations(draw):
    """A random workload of inserts/updates/deletes over a 2-column table."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("insert"), st.integers(0, 5), st.integers(0, 100)
                ),
                st.tuples(
                    st.just("update"), st.integers(0, 5), st.integers(0, 100)
                ),
                st.tuples(st.just("delete"), st.integers(0, 5), st.just(0)),
            ),
            max_size=40,
        )
    )


@given(table_operations())
@settings(max_examples=150, deadline=None)
def test_sql_matches_python_oracle(operations):
    database = Database()
    database.execute("CREATE TABLE t (k, v)")
    database.execute("CREATE INDEX ON t (k)")
    oracle: list[dict] = []
    for kind, key, value in operations:
        if kind == "insert":
            database.execute("INSERT INTO t VALUES (a, b)", {"a": key, "b": value})
            oracle.append({"k": key, "v": value})
        elif kind == "update":
            database.execute(
                "UPDATE t SET v = b WHERE k = a", {"a": key, "b": value}
            )
            for row in oracle:
                if row["k"] == key:
                    row["v"] = value
        else:
            database.execute("DELETE FROM t WHERE k = a", {"a": key})
            oracle = [row for row in oracle if row["k"] != key]

    assert database.query("SELECT COUNT(*) FROM t") == [(len(oracle),)]
    for key in range(6):
        got = sorted(database.query("SELECT v FROM t WHERE k = a", {"a": key}))
        expected = sorted((row["v"],) for row in oracle if row["k"] == key)
        assert got == expected
    totals = database.query("SELECT SUM(v) FROM t")[0][0]
    expected_total = sum(row["v"] for row in oracle) if oracle else None
    assert totals == expected_total


# ---------------------------------------------------------------------------
# reorder buffer invariants
# ---------------------------------------------------------------------------


@given(
    st.lists(st.integers(0, 100), max_size=40),
    st.integers(0, 20),
)
@settings(max_examples=150, deadline=None)
def test_reorder_buffer_invariants(arrival_times, delay):
    arrivals = [
        Observation("r", str(index), float(time))
        for index, time in enumerate(arrival_times)
    ]
    buffer = ReorderBuffer(delay=float(delay))
    output = list(buffer.reorder(arrivals))
    # Output is ordered and output + dropped accounts for every arrival.
    assert_ordered(output)
    assert len(output) + buffer.dropped_late == len(arrivals)
    # Nothing is fabricated.
    assert {o.obj for o in output} <= {o.obj for o in arrivals}


@given(st.lists(st.integers(0, 50), max_size=30))
@settings(max_examples=100, deadline=None)
def test_reorder_with_large_delay_is_full_sort(arrival_times):
    arrivals = [
        Observation("r", str(index), float(time))
        for index, time in enumerate(arrival_times)
    ]
    buffer = ReorderBuffer(delay=1000.0)
    output = list(buffer.reorder(arrivals))
    assert [o.timestamp for o in output] == sorted(o.timestamp for o in arrivals)
    assert buffer.dropped_late == 0


# ---------------------------------------------------------------------------
# store invariants
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.sampled_from(["x", "y"])),
        max_size=25,
    )
)
@settings(max_examples=100, deadline=None)
def test_location_periods_partition_time(moves):
    """Location periods of an object never overlap and chain exactly."""
    store = RfidStore()
    time = 0.0
    for _object_location, location in moves:
        time += 1.0
        store.update_location("obj", location, time)
    history = store.location_history("obj")
    for (earlier_loc, earlier_start, earlier_end), (later_loc, later_start, _e) in zip(
        history, history[1:]
    ):
        assert earlier_end == later_start  # contiguous periods
        assert earlier_loc != later_loc  # re-observation merged, not split
    if history:
        assert history[-1][2] == "UC"
