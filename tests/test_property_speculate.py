"""Property-based tests for REVISE-mode revision records.

The speculation contract, checked on randomized streams under seeded
skew/disorder/duplicate perturbation:

* ``revision`` numbers are strictly increasing per ``detection_id`` in
  emission order;
* every ``retract`` withdraws a revision that was previously emitted
  for the same ``detection_id`` (never a phantom);
* the sealed ``final`` records equal what a plain engine finds over the
  same readings in canonical timestamp order — the in-order oracle —
  whenever nothing fell outside the revise horizon.

Perturbations draw real lateness through :class:`ChaosInjector`, so the
streams exercise genuine buffering, speculative rebuilds and
retractions, not just the in-order fast path.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine, Observation, Var, Within, obs
from repro.core.expressions import Not, Seq
from repro.core.speculate import FINAL, PROVISIONAL, RETRACT, REVISED, canonical_key
from repro.resilience.chaos import ChaosConfig, ChaosInjector
from repro.rules import Rule

#: Perturbation bounds; the horizon covers their sum so nothing is ever
#: dropped past the watermark (the finals == oracle guarantee only
#: holds for data inside the promised horizon).
MAX_SKEW = 1.0
MAX_LATENESS = 2.0
HORIZON = 2 * (MAX_SKEW + MAX_LATENESS)

OBJECTS = ("o1", "o2", "o3")


def _rules():
    """One pair rule and one negation rule (the retraction generator).

    The negation window is what makes late data *withdraw* answers: a
    provisional "no B followed A" detection dies retroactively when a
    delayed B lands inside the window.
    """
    pair = Rule(
        "pair",
        "A then B on one object",
        Within(
            Seq(obs("A", Var("o"), t=Var("t1")), obs("B", Var("o"), t=Var("t2"))),
            4.0,
        ),
    )
    missing = Rule(
        "missing",
        "A with no B within the window",
        Within(
            Seq(obs("A", Var("o"), t=Var("t1")), Not(obs("B", Var("o"), t=Var("t2")))),
            3.0,
        ),
    )
    return [pair, missing]


@st.composite
def skewed_runs(draw, max_size=30):
    """An in-order stream plus a chaos seed to perturb its arrival."""
    entries = draw(
        st.lists(
            st.tuples(
                st.sampled_from(("A", "B")),
                st.sampled_from(OBJECTS),
                st.integers(min_value=0, max_value=6),  # gap in half-seconds
            ),
            max_size=max_size,
        )
    )
    stream = []
    time = 0.0
    for reader, object_epc, gap in entries:
        time += gap * 0.5
        stream.append(Observation(reader, object_epc, time))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return stream, seed


def _perturb(stream, seed):
    injector = ChaosInjector(
        ChaosConfig(
            seed=seed,
            skew_rate=0.3,
            max_skew=MAX_SKEW,
            disorder_rate=0.3,
            max_lateness=MAX_LATENESS,
            duplicate_rate=0.1,
            duplicate_max_extra=1,
        )
    )
    return list(injector.inject(stream))


def _canon(detections):
    return sorted(
        (
            d.rule.rule_id,
            round(d.time, 9),
            tuple(sorted((k, str(v)) for k, v in d.bindings.items())),
        )
        for d in detections
    )


@given(skewed_runs())
@settings(max_examples=30, deadline=None)
def test_revision_lifecycle_invariants(run):
    stream, seed = run
    arrival = _perturb(stream, seed)
    engine = Engine(_rules(), out_of_order="revise", revise_horizon=HORIZON)
    records = engine.submit_many(arrival)
    records += engine.flush()
    assert engine.stats.dropped_too_late == 0

    seen: dict[str, list] = {}
    for record in records:
        assert record.status in (PROVISIONAL, REVISED, RETRACT, FINAL)
        assert record.detection_id
        history = seen.setdefault(record.detection_id, [])
        if history:
            # Strictly increasing per detection_id, in emission order.
            assert record.revision > history[-1].revision, (
                f"revision {record.revision} after {history[-1].revision} "
                f"for {record.detection_id}"
            )
        else:
            # A lifecycle opens with an answer, never a withdrawal.
            assert record.status in (PROVISIONAL, FINAL)
        if record.status == RETRACT:
            # A retract withdraws something previously emitted: an
            # earlier non-retract record for the same detection_id.
            assert any(entry.status != RETRACT for entry in history), (
                f"retract of never-emitted detection {record.detection_id}"
            )
        history.append(record)

    # No lifecycle continues past its terminal record.
    for history in seen.values():
        for entry in history[:-1]:
            assert entry.status != FINAL, "record emitted after seal"


@given(skewed_runs())
@settings(max_examples=30, deadline=None)
def test_finals_equal_in_order_oracle(run):
    stream, seed = run
    arrival = _perturb(stream, seed)
    engine = Engine(_rules(), out_of_order="revise", revise_horizon=HORIZON)
    records = engine.submit_many(arrival)
    records += engine.flush()
    assert engine.stats.dropped_too_late == 0
    finals = [record for record in records if record.status == FINAL]

    oracle_engine = Engine(_rules())
    oracle = list(oracle_engine.run(sorted(arrival, key=canonical_key)))
    assert _canon(finals) == _canon(oracle)

    # Finals are the only records that survive: each detection_id seals
    # exactly once (retracted lifecycles end in RETRACT instead).
    by_id: dict[str, int] = {}
    for record in finals:
        by_id[record.detection_id] = by_id.get(record.detection_id, 0) + 1
    assert all(count == 1 for count in by_id.values())
