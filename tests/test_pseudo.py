"""Unit tests for pseudo events and their scheduling queue."""

import pytest

from repro.core.pseudo import PseudoEvent, PseudoQueue


def make(t_execute, t_create=0.0, kind="close-chain"):
    return PseudoEvent(0, t_create, t_execute, kind)


class TestPseudoEvent:
    def test_fields(self):
        event = PseudoEvent(3, 1.0, 5.0, "confirm-negation", {"pending": 7})
        assert event.target_node_id == 3
        assert event.t_create == 1.0
        assert event.t_execute == 5.0
        assert event.payload == {"pending": 7}

    def test_execution_before_creation_rejected(self):
        with pytest.raises(ValueError):
            PseudoEvent(0, 5.0, 4.0, "close-chain")

    def test_repr(self):
        assert "close-chain" in repr(make(2.0))


class TestPseudoQueue:
    def test_orders_by_execution_time(self):
        queue = PseudoQueue()
        for t in (5.0, 1.0, 3.0):
            queue.schedule(make(t))
        times = [event.t_execute for event in queue.drain()]
        assert times == [1.0, 3.0, 5.0]

    def test_ties_fire_in_schedule_order(self):
        queue = PseudoQueue()
        first, second = make(2.0, kind="a"), make(2.0, kind="b")
        queue.schedule(first)
        queue.schedule(second)
        drained = queue.drain()
        assert drained == [first, second]

    def test_pop_due_inclusive(self):
        queue = PseudoQueue()
        queue.schedule(make(2.0))
        assert queue.pop_due(1.9) is None
        assert queue.pop_due(2.0) is not None

    def test_pop_due_exclusive(self):
        queue = PseudoQueue()
        queue.schedule(make(2.0))
        assert queue.pop_due(2.0, inclusive=False) is None
        assert queue.pop_due(2.1, inclusive=False) is not None

    def test_peek_time(self):
        queue = PseudoQueue()
        assert queue.peek_time() is None
        queue.schedule(make(4.0))
        queue.schedule(make(2.0))
        assert queue.peek_time() == 2.0

    def test_len_and_bool(self):
        queue = PseudoQueue()
        assert not queue and len(queue) == 0
        queue.schedule(make(1.0))
        assert queue and len(queue) == 1

    def test_pop_from_empty(self):
        assert PseudoQueue().pop_due(100.0) is None
