"""Tests for the reader simulation substrate."""

import random

import pytest

from repro import Observation
from repro.readers import (
    Reader,
    ReaderArray,
    assert_ordered,
    inject_duplicates,
    merge_streams,
    sort_stream,
)


class TestReader:
    def test_reliable_read(self):
        reader = Reader("r1", location="dock")
        assert reader.observe("tag", 1.0) == [Observation("r1", "tag", 1.0)]

    def test_miss_rate(self):
        reader = Reader("r1", miss_rate=0.5, rng=random.Random(1))
        results = [bool(reader.observe("tag", t)) for t in range(200)]
        hits = sum(results)
        assert 60 < hits < 140  # roughly half

    def test_miss_rate_validation(self):
        with pytest.raises(ValueError):
            Reader("r1", miss_rate=1.0)
        with pytest.raises(ValueError):
            Reader("r1", miss_rate=-0.1)

    def test_observe_reliably_retries(self):
        reader = Reader("r1", miss_rate=0.9, rng=random.Random(7))
        result = reader.observe_reliably("tag", 0.0, attempts=100)
        assert len(result) == 1

    def test_bulk_read(self):
        reader = Reader("shelf")
        observations = reader.bulk_read(["a", "b", "c"], 30.0)
        assert [o.obj for o in observations] == ["a", "b", "c"]
        assert all(o.timestamp == 30.0 for o in observations)

    def test_dwell_reports_once_per_frame(self):
        reader = Reader("r1")
        observations = reader.dwell("tag", 0.0, 2.0, frame_period=0.5)
        assert [o.timestamp for o in observations] == [0.0, 0.5, 1.0, 1.5, 2.0]

    def test_dwell_validates_period(self):
        with pytest.raises(ValueError):
            Reader("r1").dwell("tag", 0.0, 1.0, frame_period=0.0)

    def test_location_defaults_to_epc(self):
        assert Reader("r9").location == "r9"


class TestReaderArray:
    def test_full_overlap_duplicates(self):
        array = ReaderArray([Reader("a"), Reader("b")], overlap=1.0,
                            rng=random.Random(1))
        observations = array.observe("tag", 0.0)
        assert [o.reader for o in observations] == ["a", "b"]
        assert observations[1].timestamp > observations[0].timestamp

    def test_zero_overlap_single_reading(self):
        array = ReaderArray([Reader("a"), Reader("b")], overlap=0.0,
                            rng=random.Random(1))
        assert [o.reader for o in array.observe("tag", 0.0)] == ["a"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ReaderArray([])
        with pytest.raises(ValueError):
            ReaderArray([Reader("a")], overlap=1.5)


class TestStreams:
    def test_merge_preserves_order(self):
        left = [Observation("a", "x", t) for t in (0.0, 2.0, 4.0)]
        right = [Observation("b", "y", t) for t in (1.0, 3.0)]
        merged = list(merge_streams(left, right))
        assert [o.timestamp for o in merged] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_merge_is_lazy(self):
        def infinite():
            t = 0.0
            while True:
                yield Observation("a", "x", t)
                t += 1.0

        merged = merge_streams(infinite())
        assert next(iter(merged)).timestamp == 0.0

    def test_sort_stream(self):
        shuffled = [Observation("a", "x", t) for t in (3.0, 1.0, 2.0)]
        assert [o.timestamp for o in sort_stream(shuffled)] == [1.0, 2.0, 3.0]

    def test_assert_ordered_accepts_sorted(self):
        assert_ordered([Observation("a", "x", 0.0), Observation("a", "x", 1.0)])

    def test_assert_ordered_rejects_regression(self):
        with pytest.raises(ValueError):
            assert_ordered([Observation("a", "x", 1.0), Observation("a", "x", 0.0)])


class TestDuplicateInjection:
    def _stream(self, gap=1.0, count=50):
        return [Observation("r", f"tag{i}", i * gap) for i in range(count)]

    def test_zero_rate_is_identity(self):
        stream = self._stream()
        assert list(inject_duplicates(stream, 0.0)) == stream

    def test_duplicates_share_reader_and_object(self):
        stream = self._stream()
        output = list(inject_duplicates(stream, 1.0, random.Random(1)))
        assert len(output) > len(stream)
        by_key = {}
        for observation in output:
            by_key.setdefault((observation.reader, observation.obj), []).append(
                observation
            )
        assert all(len(group) >= 2 for group in by_key.values())

    def test_output_stays_ordered(self):
        output = list(inject_duplicates(self._stream(), 0.5, random.Random(3)))
        assert_ordered(output)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            list(inject_duplicates(self._stream(), 1.5))
