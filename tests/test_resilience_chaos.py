"""Chaos harness: deterministic fault injection and recovery under fire."""

import pytest

from repro import Engine, Observation, OutOfOrderPolicy, Var, obs
from repro.core.expressions import TSeq
from repro.obs import MetricsRegistry
from repro.resilience import (
    ChaosConfig,
    ChaosInjector,
    MalformedObservation,
    SupervisedEngine,
    kill_and_restore_run,
)
from repro.rules import Rule


def pair_rules():
    return [
        Rule(
            "pair",
            "pair",
            TSeq(obs("a", Var("x")), obs("b", Var("x")), 0.0, 10.0),
        )
    ]


def clean_stream(n=40):
    observations = []
    for index in range(n):
        observations.append(Observation("a", f"o{index}", index * 1.0))
        observations.append(Observation("b", f"o{index}", index * 1.0 + 4.0))
    observations.sort(key=lambda observation: observation.timestamp)
    return observations


def fingerprint(item):
    if isinstance(item, MalformedObservation):
        return ("malformed", item.reader, item.obj, item.timestamp)
    return (item.reader, item.obj, item.timestamp)


class TestDeterminism:
    CONFIG = ChaosConfig(
        seed=42,
        dropout_rate=0.05,
        skew_rate=0.1,
        duplicate_rate=0.1,
        disorder_rate=0.15,
        malformed_rate=0.05,
    )

    def test_same_seed_same_schedule(self):
        stream = clean_stream()
        first = ChaosInjector(self.CONFIG)
        second = ChaosInjector(self.CONFIG)
        assert [fingerprint(i) for i in first.inject(stream)] == [
            fingerprint(i) for i in second.inject(stream)
        ]
        assert first.counts == second.counts

    def test_different_seed_different_schedule(self):
        stream = clean_stream()
        first = list(ChaosInjector(self.CONFIG).inject(stream))
        other = ChaosConfig(
            seed=43,
            dropout_rate=0.05,
            skew_rate=0.1,
            duplicate_rate=0.1,
            disorder_rate=0.15,
            malformed_rate=0.05,
        )
        second = list(ChaosInjector(other).inject(stream))
        assert [fingerprint(i) for i in first] != [fingerprint(i) for i in second]

    def test_zero_rates_pass_through_untouched(self):
        stream = clean_stream()
        injector = ChaosInjector(ChaosConfig(seed=1))
        assert list(injector.inject(stream)) == stream
        assert injector.counts["delivered"] == len(stream)
        assert sum(
            count for key, count in injector.counts.items() if key != "delivered"
        ) == 0

    def test_counts_balance(self):
        stream = clean_stream()
        injector = ChaosInjector(self.CONFIG)
        output = list(injector.inject(stream))
        counts = injector.counts
        # Every input reading is either dropped or (eventually) delivered.
        assert counts["delivered"] + counts["dropped"] == len(stream)
        # Output = delivered + injected extras.
        assert len(output) == (
            counts["delivered"] + counts["duplicated"] + counts["malformed"]
        )
        malformed = [i for i in output if isinstance(i, MalformedObservation)]
        assert len(malformed) == counts["malformed"]


class TestFaults:
    def test_dropout_silences_a_reader_window(self):
        stream = [Observation("a", f"o{i}", float(i)) for i in range(50)]
        injector = ChaosInjector(
            ChaosConfig(seed=3, dropout_rate=0.2, dropout_duration=5.0)
        )
        survivors = list(injector.inject(stream))
        assert injector.counts["dropped"] > 0
        assert len(survivors) == 50 - injector.counts["dropped"]

    def test_disorder_produces_late_arrivals(self):
        stream = clean_stream()
        injector = ChaosInjector(
            ChaosConfig(seed=5, disorder_rate=0.3, max_lateness=3.0)
        )
        output = list(injector.inject(stream))
        assert injector.counts["delayed"] > 0
        inversions = sum(
            1
            for earlier, later in zip(output, output[1:])
            if later.timestamp < earlier.timestamp
        )
        assert inversions > 0
        # Lateness is bounded: a late reading never trails the stream's
        # high-water mark by more than max_lateness (plus one gap).
        high_water = 0.0
        for item in output:
            assert item.timestamp > high_water - 3.0 - 1.0
            high_water = max(high_water, item.timestamp)

    def test_malformed_crashes_bare_engine(self):
        engine = Engine(pair_rules())
        with pytest.raises(TypeError):
            engine.submit(MalformedObservation("a", "o", None))


class TestOutOfOrderPoliciesUnderChaos:
    """Satellite: DROP/ACCEPT under chaos-injected out-of-order spikes."""

    def _spiky_stream(self):
        injector = ChaosInjector(
            ChaosConfig(seed=11, disorder_rate=0.3, max_lateness=3.0)
        )
        output = list(injector.inject(clean_stream()))
        assert injector.counts["delayed"] > 0
        return output

    def test_drop_policy_counts_late_readings(self):
        registry = MetricsRegistry()
        engine = Engine(
            pair_rules(), out_of_order=OutOfOrderPolicy.DROP, metrics=registry
        )
        list(engine.run(self._spiky_stream()))  # must not raise
        assert engine.stats.dropped_out_of_order > 0
        samples = registry.snapshot()["rceda_dropped_out_of_order_total"]["samples"]
        assert samples[0]["value"] == engine.stats.dropped_out_of_order

    def test_accept_policy_processes_everything(self):
        engine = Engine(pair_rules(), out_of_order=OutOfOrderPolicy.ACCEPT)
        stream = self._spiky_stream()
        list(engine.run(stream))
        assert engine.stats.observations == len(stream)
        assert engine.stats.dropped_out_of_order == 0

    def test_reorder_buffer_lateness_metrics_populated(self):
        registry = MetricsRegistry()
        engine = Engine(
            pair_rules(),
            reorder_delay=3.0,
            out_of_order=OutOfOrderPolicy.RAISE,  # buffer absorbs the spikes
            metrics=registry,
        )
        list(engine.run(self._spiky_stream()))  # must not raise
        snapshot = registry.snapshot()
        lateness = snapshot["rceda_reorder_lateness_seconds"]["samples"][0]
        assert lateness["count"] > 0  # late readings were measured
        assert lateness["sum"] > 0
        occupancy = snapshot["rceda_reorder_occupancy"]["samples"][0]
        assert occupancy["value"] == 0  # drained by flush

    def test_reorder_buffer_recovers_detections_drop_loses(self):
        stream = self._spiky_stream()
        dropping = Engine(pair_rules(), out_of_order=OutOfOrderPolicy.DROP)
        buffered = Engine(
            pair_rules(), reorder_delay=3.0, out_of_order=OutOfOrderPolicy.RAISE
        )
        dropped_detections = len(list(dropping.run(stream)))
        buffered_detections = len(list(buffered.run(stream)))
        assert buffered_detections >= dropped_detections


class TestRecoveryUnderChaos:
    def test_kill_and_restore_equals_uninterrupted_on_chaotic_stream(self):
        injector = ChaosInjector(
            ChaosConfig(
                seed=23,
                duplicate_rate=0.1,
                disorder_rate=0.2,
                max_lateness=2.0,
                skew_rate=0.1,
            )
        )
        stream = list(injector.inject(clean_stream()))

        def build():
            return Engine(
                pair_rules(),
                reorder_delay=2.5,
                out_of_order=OutOfOrderPolicy.ACCEPT,
            )

        def canon(detections):
            return [
                (d.rule.rule_id, d.time, sorted(d.bindings.items()))
                for d in detections
            ]

        baseline = canon(list(build().run(stream)))
        assert baseline
        for kill_at in (1, len(stream) // 2, len(stream) - 1):
            detections, _revived = kill_and_restore_run(build, stream, kill_at)
            assert canon(detections) == baseline, f"diverged at kill_at={kill_at}"

    def test_supervised_kill_and_restore_under_full_chaos(self):
        injector = ChaosInjector(
            ChaosConfig(
                seed=31,
                duplicate_rate=0.1,
                disorder_rate=0.15,
                max_lateness=2.0,
                malformed_rate=0.1,
            )
        )
        stream = list(injector.inject(clean_stream()))
        assert injector.counts["malformed"] > 0

        def build():
            return SupervisedEngine(
                pair_rules(), out_of_order=OutOfOrderPolicy.ACCEPT
            )

        baseline = build()
        expected = [
            (d.time, sorted(d.bindings.items()))
            for d in baseline.run(stream)
        ]
        detections, revived = kill_and_restore_run(build, stream, len(stream) // 2)
        assert [(d.time, sorted(d.bindings.items())) for d in detections] == expected
        # The second life quarantined its share of the malformed frames.
        total_quarantined = baseline.failures.quarantined
        assert total_quarantined == injector.counts["malformed"]
        assert revived.failures.quarantined <= total_quarantined
