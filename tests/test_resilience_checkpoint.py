"""Checkpoint/restore: a killed engine resumes with identical detections."""

import json

import pytest

from repro import Engine, FunctionRegistry, Observation, OutOfOrderPolicy, Var, obs
from repro.apps import (
    asset_monitoring_rule,
    containment_rule,
    location_rule,
    sale_rule,
)
from repro.core.errors import CheckpointError
from repro.core.expressions import Not, Periodic, Seq, TSeq, TSeqPlus, Within
from repro.core.sharding import ShardedEngine
from repro.epc import ReaderGroupRegistry
from repro.filtering import infield_rule, outfield_rule
from repro.resilience import (
    engine_fingerprint,
    kill_and_restore_run,
    load_checkpoint,
    save_checkpoint,
)
from repro.rules import Rule
from repro.simulator import (
    SupplyChainConfig,
    gate_type_function,
    reader_placements,
    simulate_supply_chain,
)
from repro.store import RfidStore


def canon(detections):
    """Order-preserving canonical form: rule, time, bindings, leaf readings."""
    return [
        (
            detection.rule.rule_id,
            detection.time,
            sorted(detection.bindings.items(), key=lambda item: item[0]),
            [
                (reading.reader, reading.obj, reading.timestamp)
                for reading in detection.instance.observations()
            ],
        )
        for detection in detections
    ]


def pair_rules():
    return [
        Rule(
            "pair",
            "pair",
            TSeq(obs("a", Var("x")), obs("b", Var("x")), 0.0, 10.0),
            actions=[],
        )
    ]


def pair_stream():
    observations = [Observation("a", f"o{i}", float(i)) for i in range(6)]
    observations += [Observation("b", f"o{i}", float(i) + 4.0) for i in range(6)]
    observations.sort(key=lambda observation: observation.timestamp)
    return observations


class TestEngineRoundTrip:
    def test_equal_detections_at_every_kill_point(self):
        stream = pair_stream()
        baseline = canon(list(Engine(pair_rules()).run(stream)))
        for kill_at in range(len(stream) + 1):
            detections, _revived = kill_and_restore_run(
                lambda: Engine(pair_rules()), stream, kill_at
            )
            assert canon(detections) == baseline, f"diverged at kill_at={kill_at}"

    def test_snapshot_is_json_clean(self):
        engine = Engine(pair_rules())
        for observation in pair_stream()[:5]:
            engine.submit(observation)
        snapshot = engine.checkpoint()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped == snapshot

    def test_save_and_load_file(self, tmp_path):
        stream = pair_stream()
        engine = Engine(pair_rules())
        for observation in stream[:5]:
            engine.submit(observation)
        path = str(tmp_path / "engine.ckpt.json")
        save_checkpoint(engine.checkpoint(), path)

        revived = Engine(pair_rules())
        revived.restore(load_checkpoint(path))
        tail = [
            detection
            for observation in stream[5:]
            for detection in revived.submit(observation)
        ]
        tail += revived.flush()

        resumed_baseline = Engine(pair_rules())
        expected = []
        for index, observation in enumerate(stream):
            found = resumed_baseline.submit(observation)
            if index >= 5:
                expected.extend(found)
        expected += resumed_baseline.flush()
        assert canon(tail) == canon(expected)

    def test_stats_and_clock_survive(self):
        stream = pair_stream()
        engine = Engine(pair_rules())
        for observation in stream[:7]:
            engine.submit(observation)
        revived = Engine(pair_rules())
        revived.restore(engine.checkpoint())
        assert revived.clock == engine.clock
        assert revived.stats == engine.stats

    def test_negation_and_periodic_state_survive(self):
        def build():
            return Engine(
                [
                    Rule(
                        "noexit",
                        "no b after a",
                        Within(Seq(obs("a", Var("x")), Not(obs("b", Var("x")))), 5.0),
                        actions=[],
                    ),
                    Rule(
                        "tick",
                        "periodic after a",
                        Within(Periodic(obs("a"), 2.0), 9.0),
                        actions=[],
                    ),
                ]
            )

        stream = [
            Observation("a", "u", 0.0),
            Observation("b", "u", 1.0),
            Observation("a", "v", 2.0),
            Observation("a", "w", 6.5),
            Observation("b", "w", 7.0),
        ]
        baseline = canon(list(build().run(stream)))
        for kill_at in range(len(stream) + 1):
            detections, _revived = kill_and_restore_run(build, stream, kill_at)
            assert canon(detections) == baseline, f"diverged at kill_at={kill_at}"


class TestSupplyChainRoundTrip:
    """The acceptance bar: Fig. 9 workload, kill mid-stream, equal output."""

    def _build(self, config, store, sinks):
        rules = [
            containment_rule(
                config.packing.item_reader, config.packing.case_reader
            ),
            location_rule(rule_id="r3"),
            asset_monitoring_rule(
                config.gate.reader,
                config.gate.tau,
                on_alarm=lambda epc, time: sinks["alarms"].append((epc, time)),
            ),
            infield_rule(
                config.shelf.read_period,
                reader=config.shelf.reader,
                on_infield=lambda r, o, t: sinks["shelf"].append(("in", o, t)),
                rule_id="shelf-in",
            ),
            outfield_rule(
                config.shelf.read_period,
                reader=config.shelf.reader,
                on_outfield=lambda r, o, t: sinks["shelf"].append(("out", o, t)),
                rule_id="shelf-out",
            ),
            sale_rule(config.checkout.pos_readers),
        ]
        return Engine(
            rules,
            store=store,
            functions=FunctionRegistry(
                group=ReaderGroupRegistry(), obj_type=gate_type_function(config.gate)
            ),
        )

    def _store(self, config):
        store = RfidStore()
        store.place_reader(config.packing.item_reader, "conveyor")
        store.place_reader(config.packing.case_reader, "packing-station")
        for reader, location in reader_placements(config.movement):
            store.place_reader(reader, location)
        for pos in config.checkout.pos_readers:
            store.place_reader(pos, "checkout")
        return store

    def test_kill_and_restore_matches_uninterrupted(self):
        config = SupplyChainConfig(seed=99)
        stream = simulate_supply_chain(config).observations

        baseline_sinks = {"alarms": [], "shelf": []}
        baseline_engine = self._build(config, self._store(config), baseline_sinks)
        baseline = canon(list(baseline_engine.run(stream)))
        assert len(baseline) > 50  # the workload is substantial

        # One store shared by both engine lives — the durable database
        # that survives the crash, exactly as deployed middleware would.
        for kill_at in (1, len(stream) // 3, len(stream) // 2, len(stream) - 2):
            store = self._store(config)
            sinks = {"alarms": [], "shelf": []}
            detections, _revived = kill_and_restore_run(
                lambda: self._build(config, store, sinks), stream, kill_at
            )
            assert canon(detections) == baseline, f"diverged at kill_at={kill_at}"


class TestShardedRoundTrip:
    def _containment(self, rule_id, item_reader, case_reader):
        chain = TSeqPlus(obs(item_reader, Var("items")), 0.1, 1.0)
        return Rule(
            rule_id,
            rule_id,
            TSeq(chain, obs(case_reader, Var("case")), 10.0, 20.0),
            actions=[],
        )

    def _build(self):
        return ShardedEngine(
            [
                self._containment("pack-a", "a1", "b1"),
                self._containment("pack-b", "a2", "b2"),
            ],
            max_shards=2,
        )

    def _stream(self):
        observations = []
        for index in range(4):
            observations.append(Observation("a1", f"i{index}", index * 1.0))
            observations.append(Observation("a2", f"j{index}", index * 1.0 + 0.5))
        observations.append(Observation("b1", "case1", 14.0))
        observations.append(Observation("b2", "case2", 14.5))
        observations.sort(key=lambda observation: observation.timestamp)
        return observations

    def test_kill_and_restore_matches_uninterrupted(self):
        stream = self._stream()
        baseline = canon(list(self._build().run(stream)))
        assert baseline  # sanity: the workload detects something
        for kill_at in range(len(stream) + 1):
            detections, _revived = kill_and_restore_run(self._build, stream, kill_at)
            assert canon(detections) == baseline, f"diverged at kill_at={kill_at}"

    def test_snapshot_names_every_shard(self):
        sharded = self._build()
        snapshot = sharded.checkpoint()
        assert set(snapshot["shards"]) == set(sharded.shards)

    def test_shard_layout_mismatch_rejected(self):
        snapshot = self._build().checkpoint()
        other = ShardedEngine(
            [self._containment("pack-a", "a1", "b1")], max_shards=2
        )
        with pytest.raises(CheckpointError, match="shard layout"):
            other.restore(snapshot)


class TestReorderBufferRoundTrip:
    def _build(self):
        return Engine(
            pair_rules(),
            reorder_delay=3.0,
            out_of_order=OutOfOrderPolicy.ACCEPT,
        )

    def test_buffered_readings_survive(self):
        # Late readings interleaved so the buffer is non-empty mid-stream.
        stream = [
            Observation("a", "o0", 0.0),
            Observation("a", "o1", 2.0),
            Observation("b", "o0", 4.5),
            Observation("a", "o2", 3.0),  # late but within delay
            Observation("b", "o1", 7.0),
            Observation("b", "o2", 8.0),
        ]
        baseline = canon(list(self._build().run(stream)))
        assert baseline
        for kill_at in range(len(stream) + 1):
            detections, _revived = kill_and_restore_run(self._build, stream, kill_at)
            assert canon(detections) == baseline, f"diverged at kill_at={kill_at}"

    def test_reorder_config_mismatch_rejected(self):
        engine = self._build()
        engine.submit(Observation("a", "x", 0.0))
        snapshot = engine.checkpoint()
        plain = Engine(pair_rules())
        with pytest.raises(CheckpointError):
            plain.restore(snapshot)


class TestValidation:
    def test_fingerprint_differs_across_rule_sets(self):
        assert engine_fingerprint(Engine(pair_rules())) != engine_fingerprint(
            Engine(
                [Rule("other", "other", obs("a"), actions=[])]
            )
        )

    def test_restore_rejects_different_rules(self):
        engine = Engine(pair_rules())
        engine.submit(Observation("a", "x", 0.0))
        snapshot = engine.checkpoint()
        other = Engine([Rule("other", "other", obs("a"), actions=[])])
        with pytest.raises(CheckpointError, match="different compiled rule graph"):
            other.restore(snapshot)

    def test_restore_rejects_wrong_version(self):
        engine = Engine(pair_rules())
        snapshot = engine.checkpoint()
        snapshot["version"] = 999
        with pytest.raises(CheckpointError, match="version"):
            Engine(pair_rules()).restore(snapshot)

    def test_restore_rejects_garbage(self):
        with pytest.raises(CheckpointError):
            Engine(pair_rules()).restore({"hello": "world"})
        with pytest.raises(CheckpointError):
            Engine(pair_rules()).restore("not a dict")

    def test_restore_requires_fresh_engine(self):
        engine = Engine(pair_rules())
        engine.submit(Observation("a", "x", 0.0))
        snapshot = engine.checkpoint()
        used = Engine(pair_rules())
        used.submit(Observation("a", "y", 0.0))
        with pytest.raises(CheckpointError, match="fresh"):
            used.restore(snapshot)

    def test_kill_at_out_of_range(self):
        with pytest.raises(ValueError, match="kill_at"):
            kill_and_restore_run(lambda: Engine(pair_rules()), pair_stream(), 99)
