"""Supervision: quarantine, circuit breakers, retry, dead letters."""

import pytest

from repro import Engine, Observation, Var, obs
from repro.core.expressions import TSeq
from repro.obs import MetricsRegistry
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    DeadLetterQueue,
    MalformedObservation,
    RetryPolicy,
    SupervisedEngine,
)
from repro.rules import Rule


def pair_rule(actions=()):
    return Rule(
        "pair",
        "pair",
        TSeq(obs("a", Var("x")), obs("b", Var("x")), 0.0, 10.0),
        actions=list(actions),
    )


def pair_stream():
    observations = [Observation("a", f"o{i}", float(i)) for i in range(5)]
    observations += [Observation("b", f"o{i}", float(i) + 3.0) for i in range(5)]
    observations.sort(key=lambda observation: observation.timestamp)
    return observations


def poisoned(stream, every=3):
    """Interleave a malformed frame before every ``every``-th reading."""
    out = []
    for index, observation in enumerate(stream):
        if index % every == 0:
            out.append(
                MalformedObservation(observation.reader, observation.obj, None)
            )
        out.append(observation)
    return out


class TestPoisonAcceptance:
    """The issue's acceptance test: malformed input + raising action."""

    def test_zero_crashes_full_delivery_full_accounting(self):
        def bomb(context):
            raise RuntimeError("side effect exploded")

        stream = pair_stream()
        baseline = list(Engine([pair_rule()]).run(stream))
        assert baseline

        registry = MetricsRegistry()
        supervised = SupervisedEngine(
            [pair_rule(actions=[bomb])],
            retry=RetryPolicy(attempts=2, sleep=lambda _delay: None),
            metrics=registry,
        )
        dirty = poisoned(stream, every=3)
        detections = list(supervised.run(dirty))  # must not raise

        # Every healthy detection delivered, none invented.
        assert [
            (d.rule.rule_id, d.time, sorted(d.bindings.items())) for d in detections
        ] == [
            (d.rule.rule_id, d.time, sorted(d.bindings.items())) for d in baseline
        ]

        malformed_count = sum(
            1 for item in dirty if isinstance(item, MalformedObservation)
        )
        # Every malformed frame quarantined, with context.
        assert supervised.failures.quarantined == malformed_count
        assert len(supervised.quarantine) == malformed_count
        for entry in supervised.quarantine:
            assert entry.kind == "observation"
            assert entry.error_type == "TypeError"
            assert isinstance(entry.observation, MalformedObservation)
            assert entry.traceback

        # Every activation's action failure dead-lettered after retries.
        assert supervised.failures.action_dead_letters == len(baseline)
        for entry in supervised.action_dead_letters:
            assert entry.kind == "action"
            assert entry.rule_id == "pair"
            assert entry.attempts == 2
            assert entry.error == "side effect exploded"
            assert "x" in entry.bindings

        # And the metrics agree.
        snapshot = registry.snapshot()
        assert (
            snapshot["rceda_quarantined_total"]["samples"][0]["value"]
            == malformed_count
        )
        assert snapshot["rceda_action_dead_letters_total"]["samples"][0][
            "value"
        ] == len(baseline)
        failure_samples = snapshot["rceda_rule_failures_total"]["samples"]
        assert any(
            sample["labels"] == {"engine": "main", "rule": "pair", "stage": "action"}
            and sample["value"] == len(baseline)
            for sample in failure_samples
        )

    def test_submit_many_survives_mid_batch_poison(self):
        supervised = SupervisedEngine([pair_rule()])
        stream = pair_stream()
        dirty = stream[:4] + [MalformedObservation("a", "oX", None)] + stream[4:]
        detections = supervised.submit_many(dirty)
        detections += supervised.flush()
        baseline = list(Engine([pair_rule()]).run(stream))
        assert len(detections) == len(baseline)
        assert supervised.failures.quarantined == 1

    def test_condition_failure_skips_only_that_activation(self):
        def grumpy(context):
            if context.bindings["x"] == "o2":
                raise ValueError("bad binding")
            return True

        supervised = SupervisedEngine(
            [
                Rule(
                    "pair",
                    "pair",
                    TSeq(obs("a", Var("x")), obs("b", Var("x")), 0.0, 10.0),
                    condition=grumpy,
                )
            ]
        )
        detections = list(supervised.run(pair_stream()))
        assert {d.bindings["x"] for d in detections} == {"o0", "o1", "o3", "o4"}
        assert supervised.failures.condition_failures == 1


class TestCircuitBreaker:
    def test_trips_after_threshold_and_isolates_one_rule(self):
        def bomb(context):
            raise RuntimeError("kaput")

        registry = MetricsRegistry()
        supervised = SupervisedEngine(
            [
                Rule("bad", "bad", obs("b"), actions=[bomb]),
                Rule("good", "good", obs("a")),
            ],
            retry=RetryPolicy(attempts=1),
            breaker_threshold=2,
            metrics=registry,
        )
        for index in range(6):
            supervised.submit(Observation("b", f"y{index}", float(index)))
            supervised.submit(Observation("a", f"x{index}", float(index)))
        supervised.flush()

        assert supervised.breaker("bad").state is BreakerState.OPEN
        assert supervised.breaker("good").state is BreakerState.CLOSED
        assert supervised.failures.breaker_opens == 1
        # After 2 failures the breaker opened; the other 4 were skipped.
        assert supervised.failures.breaker_skips == 4
        assert supervised.failures.action_dead_letters == 2
        # The healthy rule fired every time, unaffected.
        assert supervised.stats.per_rule["good"] == 6

        gauges = registry.snapshot()["rceda_breaker_state"]["samples"]
        by_rule = {sample["labels"]["rule"]: sample["value"] for sample in gauges}
        assert by_rule == {"bad": 1.0, "good": 0.0}

    def test_half_open_trial_closes_on_success(self):
        fail = {"on": True}

        def flaky(context):
            if fail["on"]:
                raise RuntimeError("down")

        supervised = SupervisedEngine(
            [Rule("r", "r", obs("a"), actions=[flaky])],
            retry=RetryPolicy(attempts=1),
            breaker_threshold=1,
            breaker_cooldown=10.0,
        )
        supervised.submit(Observation("a", "x", 0.0))
        assert supervised.breaker("r").state is BreakerState.OPEN
        # Before the cooldown elapses (logical time): skipped.
        supervised.submit(Observation("a", "y", 5.0))
        assert supervised.failures.breaker_skips == 1
        # After the cooldown: trial activation, which now succeeds.
        fail["on"] = False
        supervised.submit(Observation("a", "z", 11.0))
        assert supervised.breaker("r").state is BreakerState.CLOSED
        assert supervised.stats.per_rule["r"] == 2  # y was skipped

    def test_half_open_trial_failure_reopens(self):
        def bomb(context):
            raise RuntimeError("still down")

        supervised = SupervisedEngine(
            [Rule("r", "r", obs("a"), actions=[bomb])],
            retry=RetryPolicy(attempts=1),
            breaker_threshold=1,
            breaker_cooldown=10.0,
        )
        supervised.submit(Observation("a", "x", 0.0))
        supervised.submit(Observation("a", "y", 11.0))  # trial fails
        breaker = supervised.breaker("r")
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2
        assert breaker.opened_at == 11.0  # cooldown restarted

    def test_manual_reset(self):
        def bomb(context):
            raise RuntimeError("kaput")

        supervised = SupervisedEngine(
            [Rule("r", "r", obs("a"), actions=[bomb])],
            retry=RetryPolicy(attempts=1),
            breaker_threshold=1,
        )
        supervised.submit(Observation("a", "x", 0.0))
        assert supervised.breaker("r").state is BreakerState.OPEN
        supervised.reset_breaker("r")
        assert supervised.breaker("r").state is BreakerState.CLOSED

    def test_breaker_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestRetry:
    def test_backoff_schedule_and_eventual_success(self):
        attempts = {"n": 0}
        delays = []

        def flaky(context):
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise RuntimeError("transient")

        supervised = SupervisedEngine(
            [Rule("r", "r", obs("a"), actions=[flaky])],
            retry=RetryPolicy(
                attempts=4, base_delay=0.1, multiplier=2.0, sleep=delays.append
            ),
        )
        detections = supervised.submit(Observation("a", "x", 0.0))
        assert len(detections) == 1  # the detection is delivered regardless
        assert attempts["n"] == 3
        assert delays == [0.1, 0.2]
        assert supervised.failures.action_retries == 2
        assert supervised.failures.action_dead_letters == 0
        assert supervised.breaker("r").state is BreakerState.CLOSED

    def test_exhausted_retries_dead_letter(self):
        delays = []

        def bomb(context):
            raise RuntimeError("permanent")

        supervised = SupervisedEngine(
            [Rule("r", "r", obs("a"), actions=[bomb])],
            retry=RetryPolicy(attempts=3, base_delay=1.0, sleep=delays.append),
        )
        supervised.submit(Observation("a", "x", 0.0))
        assert delays == [1.0, 2.0]
        entries = supervised.action_dead_letters.entries()
        assert len(entries) == 1
        assert entries[0].attempts == 3

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(attempts=10, base_delay=1.0, multiplier=10.0, max_delay=5.0)
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 5.0
        assert policy.delay(9) == 5.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestDeadLetterQueue:
    def test_bounded_with_exact_accounting(self):
        from repro.resilience.supervise import DeadLetterEntry

        queue = DeadLetterQueue(capacity=2)

        def entry(tag):
            return DeadLetterEntry(
                kind="observation",
                observation=tag,
                rule_id=None,
                bindings={},
                error_type="E",
                error="",
                traceback="",
                time=0.0,
            )

        for tag in ("a", "b", "c"):
            queue.push(entry(tag))
        assert len(queue) == 2
        assert [item.observation for item in queue] == ["b", "c"]
        assert queue.total == 3
        assert queue.dropped == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadLetterQueue(capacity=0)


class TestPassthrough:
    def test_checkpoint_restore_round_trip(self):
        stream = pair_stream()
        first = SupervisedEngine([pair_rule()])
        collected = []
        for observation in stream[:4]:
            collected.extend(first.submit(observation))
        snapshot = first.checkpoint()

        revived = SupervisedEngine([pair_rule()])
        revived.restore(snapshot)
        for observation in stream[4:]:
            collected.extend(revived.submit(observation))
        collected.extend(revived.flush())

        baseline = list(Engine([pair_rule()]).run(stream))
        assert [(d.time, sorted(d.bindings.items())) for d in collected] == [
            (d.time, sorted(d.bindings.items())) for d in baseline
        ]

    def test_report_shape(self):
        supervised = SupervisedEngine([pair_rule()])
        list(supervised.run(pair_stream()))
        report = supervised.report()
        assert report["quarantined"] == 0
        assert report["detections"] == supervised.stats.detections
        assert report["breakers"] == {"pair": "closed"}
        assert report["ooo_dropped"] == 0

    def test_add_rule_is_guarded(self):
        def bomb(context):
            raise RuntimeError("kaput")

        supervised = SupervisedEngine(retry=RetryPolicy(attempts=1))
        supervised.add_rule(Rule("r", "r", obs("a"), actions=[bomb]))
        supervised.submit(Observation("a", "x", 0.0))  # must not raise
        assert supervised.failures.action_failures == 1
