"""Tests for rules, conditions and actions (repro.rules)."""

import pytest

from repro import Engine, Observation, Var, obs
from repro.core.errors import ActionError, ConditionError
from repro.core.expressions import TSeq, TSeqPlus
from repro.rules import (
    AlertAction,
    CallableAction,
    Rule,
    SqlAction,
    SqlCondition,
    iter_sequence_members,
    normalize_action,
    sequence_member_rows,
)
from repro.store import RfidStore


def chain_rule(actions=(), condition=None):
    event = TSeq(
        TSeqPlus(obs("A", Var("o1"), t=Var("t1")), 0, 1),
        obs("B", Var("o2"), t=Var("t2")),
        5,
        10,
    )
    return Rule("rc", "chain", event, condition=condition, actions=actions)


def chain_stream():
    return [
        Observation("A", "i1", 0.0),
        Observation("A", "i2", 0.5),
        Observation("B", "case", 7.0),
    ]


class TestNormalization:
    def test_string_becomes_sql_action(self):
        action = normalize_action("INSERT INTO ALERT VALUES ('r', 'm', 0)")
        assert isinstance(action, SqlAction)

    def test_callable_wrapped(self):
        action = normalize_action(lambda context: None)
        assert isinstance(action, CallableAction)

    def test_action_passthrough(self):
        action = AlertAction("x")
        assert normalize_action(action) is action

    def test_garbage_rejected(self):
        with pytest.raises(TypeError, match=r"cannot interpret 42 \(type int\)"):
            normalize_action(42)

    def test_garbage_error_names_value_and_type(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        with pytest.raises(TypeError) as excinfo:
            normalize_action(Opaque())
        message = str(excinfo.value)
        assert "<opaque>" in message
        assert "Opaque" in message
        assert "callable" in message

    def test_empty_sql_rejected(self):
        with pytest.raises(ActionError):
            SqlAction("   ")


class TestConditions:
    def test_true_strings_and_none(self):
        for condition in (None, True, "true", "TRUE"):
            assert Rule("r", "n", obs("a"), condition=condition).condition is None

    def test_false_condition(self):
        rule = Rule("r", "n", obs("a"), condition=False)
        engine = Engine([rule])
        assert engine.submit(Observation("a", "x", 0)) == []

    def test_sql_condition_true_when_rows(self):
        store = RfidStore()
        store.update_location("x", "dock", 0.0)
        rule = Rule(
            "r",
            "n",
            obs("a", Var("o")),
            condition="SELECT * FROM OBJECTLOCATION WHERE object_epc = o",
        )
        engine = Engine([rule], store=store)
        assert len(engine.submit(Observation("a", "x", 1))) == 1
        assert engine.submit(Observation("a", "unknown", 2)) == []

    def test_sql_condition_must_be_select(self):
        with pytest.raises(ConditionError):
            Rule("r", "n", obs("a"), condition="DELETE FROM ALERT")

    def test_sql_condition_requires_store(self):
        rule = Rule("r", "n", obs("a"), condition="SELECT * FROM ALERT")
        engine = Engine([rule])
        with pytest.raises(ConditionError):
            engine.submit(Observation("a", "x", 0))

    def test_callable_condition_receives_context(self):
        rule = Rule(
            "r", "n", obs("a", Var("o")),
            condition=lambda context: context.bindings["o"] == "wanted",
        )
        engine = Engine([rule])
        assert engine.submit(Observation("a", "other", 0)) == []
        assert len(engine.submit(Observation("a", "wanted", 1))) == 1

    def test_invalid_condition_type(self):
        with pytest.raises(ConditionError):
            Rule("r", "n", obs("a"), condition=3.14)


class TestSqlActions:
    def test_multi_statement_script(self):
        store = RfidStore()
        rule = Rule(
            "r",
            "n",
            obs("a", Var("o"), t=Var("t")),
            actions=[
                "INSERT INTO OBSERVATION VALUES ('a', o, t);"
                "INSERT INTO ALERT VALUES ('r', o, t)"
            ],
        )
        engine = Engine([rule], store=store)
        engine.submit(Observation("a", "x", 5))
        assert len(store.database.table("OBSERVATION")) == 1
        assert len(store.database.table("ALERT")) == 1

    def test_sql_action_without_store(self):
        rule = Rule("r", "n", obs("a"), actions=["INSERT INTO T VALUES (1)"])
        engine = Engine([rule])
        with pytest.raises(ActionError):
            engine.submit(Observation("a", "x", 0))

    def test_bulk_insert_per_member(self):
        store = RfidStore()
        rule = chain_rule(
            actions=["BULK INSERT INTO CONTAINMENT VALUES (o1, o2, t2, 'UC')"]
        )
        engine = Engine([rule], store=store)
        list(engine.run(chain_stream()))
        assert store.contents_of("case") == ["i1", "i2"]

    def test_bulk_insert_without_sequence_fails(self):
        store = RfidStore()
        rule = Rule(
            "r",
            "n",
            obs("a", Var("o")),
            actions=["BULK INSERT INTO ALERT VALUES ('r', o, 0)"],
        )
        engine = Engine([rule], store=store)
        with pytest.raises(ActionError):
            engine.submit(Observation("a", "x", 0))


class TestAlertAction:
    def test_template_formatting(self):
        store = RfidStore()
        rule = Rule(
            "r9", "n", obs("a", Var("o")),
            actions=[AlertAction("saw {o} at {time}")],
        )
        engine = Engine([rule], store=store)
        engine.submit(Observation("a", "x", 4.0))
        assert store.alerts == [("r9", "saw x at 4.0", 4.0)]

    def test_unknown_field_raises(self):
        store = RfidStore()
        rule = Rule("r", "n", obs("a"), actions=[AlertAction("bad {missing}")])
        engine = Engine([rule], store=store)
        with pytest.raises(ActionError):
            engine.submit(Observation("a", "x", 0))

    def test_requires_store(self):
        rule = Rule("r", "n", obs("a"), actions=[AlertAction("m")])
        engine = Engine([rule])
        with pytest.raises(ActionError):
            engine.submit(Observation("a", "x", 0))


class TestSequenceHelpers:
    def _detection(self):
        collected = []
        rule = chain_rule(actions=[lambda context: collected.append(context)])
        engine = Engine([rule])
        list(engine.run(chain_stream()))
        return collected[0]

    def test_iter_sequence_members(self):
        context = self._detection()
        members = iter_sequence_members(context.instance)
        assert [m.bindings["o1"] for m in members] == ["i1", "i2"]

    def test_sequence_member_rows_merge_outer(self):
        context = self._detection()
        rows = list(sequence_member_rows(context))
        assert rows[0]["o1"] == "i1" and rows[0]["o2"] == "case"
        assert rows[1]["o1"] == "i2"
        assert rows[0]["t2"] == 7.0

    def test_no_sequence_returns_none(self):
        engine = Engine()
        collected = []
        engine.watch(obs("a"), callback=collected.append)
        engine.submit(Observation("a", "x", 0))
        assert iter_sequence_members(collected[0].instance) is None

    def test_actions_run_in_order(self):
        order = []
        rule = Rule(
            "r", "n", obs("a"),
            actions=[lambda c: order.append(1), lambda c: order.append(2)],
        )
        engine = Engine([rule])
        engine.submit(Observation("a", "x", 0))
        assert order == [1, 2]

    def test_rule_repr(self):
        assert "rc" in repr(chain_rule())
