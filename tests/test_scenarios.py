"""Scenario packs: registry mechanics, seeded oracles, plugin discovery.

Every registered pack must pass its own ground-truth oracle across
seeds — the registry is only worth having if ``scenario run`` can vouch
for every name it resolves.
"""

import textwrap

import pytest

from repro.scenarios import (
    ScenarioPack,
    ScenarioRun,
    discover_external_packs,
    discovery_errors,
    execute_run,
    get_pack,
    is_builtin,
    iter_packs,
    pack_names,
    register_pack,
    unregister_pack,
)

BUILTINS = [
    "checkout",
    "cold-chain",
    "gate",
    "hospital-assets",
    "movement",
    "packing",
    "returns-fraud",
    "shelf",
]


class _ToyPack(ScenarioPack):
    name = "toy"
    description = "fixture pack"

    def build(self, *, seed: int = 7, size=None):
        return ScenarioRun(
            pack=self.name, seed=seed, size=size or 1, rules=[],
            observations=[],
        )


class TestRegistry:
    def test_builtins_registered(self):
        assert [n for n in pack_names() if is_builtin(n)] == BUILTINS

    def test_iter_packs_order_matches_names(self):
        assert [pack.name for pack in iter_packs()] == pack_names()

    def test_get_pack_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="packing"):
            get_pack("no-such-pack")

    def test_register_duplicate_rejected_then_replace(self):
        register_pack(_ToyPack())
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_pack(_ToyPack())
            register_pack(_ToyPack(), replace=True)
            assert get_pack("toy").description == "fixture pack"
            assert not is_builtin("toy")
        finally:
            unregister_pack("toy")
        assert "toy" not in pack_names()

    def test_register_nameless_rejected(self):
        class Nameless(ScenarioPack):
            name = ""

        with pytest.raises(ValueError, match="no usable name"):
            register_pack(Nameless())


class TestOracles:
    @pytest.mark.parametrize("name", BUILTINS)
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_pack_oracle_passes(self, name, seed):
        report = execute_run(get_pack(name).build(seed=seed))
        assert report["ok"], report["checks"]
        assert report["observations"] > 0

    def test_size_scales_stream(self):
        small = get_pack("packing").build(seed=3, size=2)
        large = get_pack("packing").build(seed=3, size=8)
        assert len(large.observations) > len(small.observations)
        assert large.expected_detections["r4"] == 8

    def test_same_seed_same_stream(self):
        def key(run):
            return [
                (o.reader, o.obj, o.timestamp) for o in run.observations
            ]

        a = get_pack("hospital-assets").build(seed=9)
        b = get_pack("hospital-assets").build(seed=9)
        c = get_pack("hospital-assets").build(seed=10)
        assert key(a) == key(b)
        assert key(a) != key(c)

    def test_oracle_catches_broken_engine(self):
        """A run with a rule removed must fail its oracle, not pass it."""
        run = get_pack("returns-fraud").build(seed=7)
        run.rules = [r for r in run.rules if r.rule_id != "rf1"]
        report = execute_run(run)
        assert not report["ok"]
        assert not report["checks"]["detections_rf1"]["ok"]


class TestEnvDiscovery:
    def test_env_var_spec_loads_pack(self, tmp_path, monkeypatch):
        module_dir = tmp_path / "plugins"
        module_dir.mkdir()
        (module_dir / "my_ext_pack.py").write_text(
            textwrap.dedent(
                """
                from repro.scenarios import ScenarioPack, ScenarioRun

                class ExtPack(ScenarioPack):
                    name = "ext-demo"
                    description = "external fixture"

                    def build(self, *, seed=7, size=None):
                        return ScenarioRun(
                            pack=self.name, seed=seed, size=size or 1,
                            rules=[], observations=[],
                        )

                SCENARIO_PACKS = [ExtPack()]
                """
            )
        )
        monkeypatch.syspath_prepend(str(module_dir))
        monkeypatch.setenv("REPRO_SCENARIO_PACKS", "my_ext_pack")
        try:
            assert discover_external_packs(force=True) >= 1
            assert not is_builtin("ext-demo")
            assert execute_run(get_pack("ext-demo").build())["ok"]
        finally:
            unregister_pack("ext-demo")

    def test_broken_spec_recorded_not_fatal(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO_PACKS", "no_such_module_xyz")
        discover_external_packs(force=True)
        assert any(
            "no_such_module_xyz" in error for error in discovery_errors()
        )
        # The registry itself must be unharmed.
        assert get_pack("packing").name == "packing"


class TestWorkloadCapability:
    def test_episode_sources(self):
        capable = {
            pack.name
            for pack in iter_packs()
            if pack.episode_source() is not None
        }
        assert capable == {"checkout", "packing", "returns-fraud"}

    def test_replay_only_packs_return_none(self):
        assert get_pack("gate").episode_source() is None
        assert get_pack("cold-chain").episode_source() is None
