"""The bounded chaos soak: the serving layer's headline robustness claim.

Marked ``chaos`` (excluded from the default tier-1 run; CI runs it as
its own step).  One seeded drill streams a packing workload through a
real TCP :class:`~repro.serve.ChaosProxy` — fragmentation, corruption,
resets, stalls — into a durable server from concurrent v1 and v2
clients, kills the server mid-stream and recovers it, then asserts
exactly-once observations, baseline-identical detections and agreeing
frontiers.  A failure message carries the full report; the seed inside
reproduces the run via ``python -m repro chaos serve --seed N``.
"""

import json

import pytest

from repro.serve.drill import default_fault_plan, run_chaos_serve_drill
from repro.serve.skew_drill import run_chaos_skew_drill

pytestmark = pytest.mark.chaos


def test_chaos_serve_drill_seed7():
    report = run_chaos_serve_drill(seed=7, cases=20)
    assert report["ok"], json.dumps(report, indent=2, sort_keys=True)
    # Every fault class must actually have fired — a drill that
    # happened to see a clean network proves nothing.
    faults = report["faults"]
    assert faults["fragments"] > 0
    assert faults["corruptions"] > 0
    assert faults["resets"] > 0
    # The v2 client was probed; the v1 client never was.
    assert report["checks"]["v2_heartbeats"]["ok"]
    assert report["checks"]["v1_never_pinged"]["ok"]


def test_chaos_serve_drill_other_seed():
    # A second seed guards against the first one being a lucky
    # schedule; determinism itself is asserted inside the drill
    # (same-seed plans replay identically — tests/test_serve_faults.py).
    report = run_chaos_serve_drill(seed=3, cases=20)
    assert report["ok"], json.dumps(report, indent=2, sort_keys=True)


def test_chaos_skew_drill_seed11():
    # The speculation headline: clock skew + out-of-order spikes +
    # duplicates through a REVISE-mode durable server, hard-killed and
    # recovered mid-stream, must converge to the in-order oracle with
    # finals-only side effects.
    report = run_chaos_skew_drill(seed=11, cases=16)
    assert report["ok"], json.dumps(report, indent=2, sort_keys=True)
    # The drill is only meaningful if speculation was really exercised:
    # provisionals were emitted, some were genuinely retracted, and the
    # outbox cancelled the corresponding parked intents.
    assert report["engine"]["speculative"] > 0
    assert report["engine"]["retracted"] > 0
    assert report["outbox"]["cancelled"] > 0
    assert report["recovery"]["suppressed_deliveries"] > 0


def test_chaos_skew_drill_other_seed():
    # A second seed guards against the first being a lucky schedule.
    report = run_chaos_skew_drill(seed=4, cases=12)
    assert report["ok"], json.dumps(report, indent=2, sort_keys=True)


def test_skew_drill_report_shape():
    report = run_chaos_skew_drill(seed=2, cases=8)
    assert report["ok"], json.dumps(report, indent=2, sort_keys=True)
    assert report["seed"] == 2
    for key in ("checks", "faults", "engine", "outbox", "recovery"):
        assert key in report, key
    # Artifact-ready: plain JSON all the way down.
    json.dumps(report)


def test_drill_report_shape():
    report = run_chaos_serve_drill(seed=5, cases=8)
    assert report["ok"], json.dumps(report, indent=2, sort_keys=True)
    assert report["seed"] == 5
    assert report["plan"] == default_fault_plan(5).describe()
    for key in ("checks", "faults", "proxy", "clients", "server", "recovery"):
        assert key in report, key
    # The report must be artifact-ready: plain JSON all the way down.
    json.dumps(report)
