"""Tests for the multi-process cluster layer: router, workers, fan-in.

Fast variants of the cluster guarantees run here in-process (workers in
the same event loop, crashes via ``abort()``): detection equivalence
with a single-process baseline, deterministic fan-in ordering, no
duplicates across crash recovery (WAL-tail replay) and live shard
migration, and the relayed-provenance batch API underneath it all.
The subprocess + SIGKILL variant is ``python -m repro chaos cluster``.
"""

import asyncio
import json
import os

import pytest

from repro import Engine
from repro.lang import parse_rules
from repro.resilience.durability import DurableEngine, read_wal
from repro.resilience.durability.engine import (
    CLIENT_KEY,
    _resolve_client_seqs,
)
from repro.serve import ClientError, ErrorFrame, RetryConfig, encode_frame
from repro.serve.client import AsyncClient, tcp_connector
from repro.serve.cluster import (
    SINK_FILENAME,
    Cluster,
    HashRing,
    plan_cluster,
)
from repro.serve.cluster_drill import cluster_program, run_cluster_drill
from repro.simulator import simulate_multi_packing
from repro.store import RfidStore


def build_workload(lines=2, cases_per_line=6, seed=5):
    trace = simulate_multi_packing(
        lines=lines, cases_per_line=cases_per_line, items_per_case=5, seed=seed
    )
    program = cluster_program(trace.reader_pairs)
    return program, list(trace.observations)


def canon_engine(detections):
    return sorted(
        (d.rule.rule_id, round(d.time, 9), tuple(sorted(d.bindings.items())))
        for d in detections
    )


def canon_frames(frames):
    return sorted(
        (f.rule, round(f.time, 9), tuple(sorted(f.bindings.items())))
        for f in frames
    )


def baseline(program, stream):
    engine = Engine(parse_rules(program), store=RfidStore())
    return canon_engine(engine.run(stream))


async def eventually(predicate, timeout=10.0, message="condition not reached"):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError(message)
        await asyncio.sleep(0.01)


class TestClusterPlan:
    def rules(self, lines=4):
        program, _stream = build_workload(lines=lines, cases_per_line=1)
        return parse_rules(program)

    def test_assignment_is_balanced(self):
        # Bounded-load consistent hashing: no node may hold more than
        # ceil(shards / nodes) shards, whatever the ring says.
        plan = plan_cluster(self.rules(lines=4), 2, max_shards=4)
        per_node = {}
        for node in plan.assignment.values():
            per_node[node] = per_node.get(node, 0) + 1
        assert sorted(per_node.values()) == [2, 2]

    def test_assignment_is_deterministic(self):
        first = plan_cluster(self.rules(), 3)
        second = plan_cluster(self.rules(), 3)
        assert first.assignment == second.assignment
        assert first.nodes == second.nodes

    def test_every_shard_is_assigned(self):
        plan = plan_cluster(self.rules(), 2)
        assert sorted(plan.assignment) == sorted(plan.shard_plan.shard_names)
        assert set(plan.assignment.values()) <= set(plan.nodes)

    def test_ring_walk_yields_distinct_nodes(self):
        ring = HashRing(["a", "b", "c"])
        walked = list(ring.nodes_for("some-shard"))
        assert sorted(walked) == ["a", "b", "c"]


class TestClusterEndToEnd:
    def _run_once(self, program, stream, expected_count, tmp, tag):
        async def scenario():
            cluster = Cluster(
                program,
                workers=2,
                directory=os.path.join(tmp, tag),
                inprocess=True,
            )
            try:
                port = await cluster.start()
                client = AsyncClient(
                    tcp_connector("127.0.0.1", port),
                    client_id="e2e",
                    subscribe=True,
                    batch_size=16,
                )
                async with client:
                    await client.submit_many(stream)
                    await client.flush(timeout=30)
                    await eventually(
                        lambda: len(client.detections) >= expected_count
                    )
                    return list(client.detections)
            finally:
                await cluster.stop()

        return asyncio.run(scenario())

    def test_detections_match_single_process_baseline(self, tmp_path):
        program, stream = build_workload()
        expected = baseline(program, stream)
        frames = self._run_once(
            program, stream, len(expected), str(tmp_path), "a"
        )
        assert canon_frames(frames) == expected

    def test_fan_in_order_is_deterministic_and_documented(self, tmp_path):
        # The documented order (see repro.serve.cluster): epochs release
        # in client-submission order; within an epoch, shards in route
        # order, each shard's detections in firing order; every frame is
        # re-stamped with the epoch's end seq and a per-epoch ordinal.
        program, stream = build_workload()
        expected = baseline(program, stream)
        first = self._run_once(program, stream, len(expected), str(tmp_path), "b1")
        second = self._run_once(program, stream, len(expected), str(tmp_path), "b2")
        as_tuples = lambda frames: [
            (f.rule, round(f.time, 9), f.seq, f.ordinal) for f in frames
        ]
        assert as_tuples(first) == as_tuples(second)
        keys = [(f.seq, f.ordinal) for f in first]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)
        # Ordinals are renumbered per epoch: each epoch's block starts at 0.
        by_seq = {}
        for f in first:
            by_seq.setdefault(f.seq, []).append(f.ordinal)
        for ordinals in by_seq.values():
            assert ordinals == list(range(len(ordinals)))


class TestClusterRecovery:
    def test_crash_recovery_replays_wal_tail_without_duplicates(
        self, tmp_path
    ):
        # Kill a worker without checkpointing (in-process abort), keep
        # streaming into the hole, recover it: recovery replays the WAL
        # tail through the outbox, so sink deliveries stay exactly-once
        # and no duplicate detections reach the subscriber.
        program, stream = build_workload(cases_per_line=8)
        expected = baseline(program, stream)
        directory = str(tmp_path / "crash")

        async def scenario():
            cluster = Cluster(
                program,
                workers=2,
                directory=directory,
                sink=True,
                inprocess=True,
            )
            try:
                port = await cluster.start()
                victim = cluster.plan.assignment[
                    sorted(cluster.plan.assignment)[0]
                ]
                client = AsyncClient(
                    tcp_connector("127.0.0.1", port),
                    client_id="crash",
                    subscribe=True,
                    batch_size=8,
                )
                async with client:
                    third = len(stream) // 3
                    await client.submit_many(stream[:third])
                    await cluster.kill_worker(victim)
                    await client.submit_many(stream[third : 2 * third])
                    await cluster.restart_worker(victim)
                    await client.submit_many(stream[2 * third :])
                    await client.flush(timeout=30)
                    await asyncio.sleep(0.2)
                    pushed = canon_frames(client.detections)
                return cluster.plan, pushed
            finally:
                await cluster.stop()

        plan, pushed = asyncio.run(scenario())
        assert len(pushed) == len(set(pushed))
        assert set(pushed) <= set(expected) and pushed

        deliveries = []
        for shard, node in plan.assignment.items():
            sink_path = os.path.join(directory, node, shard, SINK_FILENAME)
            if not os.path.exists(sink_path):
                continue
            with open(sink_path, encoding="utf-8") as handle:
                for line in handle:
                    payload = json.loads(line)
                    deliveries.append(
                        (
                            (shard, payload["seq"], payload["ordinal"]),
                            (
                                payload["rule"],
                                round(payload["time"], 9),
                                tuple(sorted(payload["bindings"].items())),
                            ),
                        )
                    )
        keys = [key for key, _ in deliveries]
        assert len(keys) == len(set(keys))
        assert sorted(canon for _, canon in deliveries) == expected

    def test_inprocess_drill_passes(self, tmp_path):
        report = run_cluster_drill(
            seed=13,
            lines=2,
            cases_per_line=6,
            workers=2,
            directory=str(tmp_path / "drill"),
            inprocess=True,
            timeout=60.0,
        )
        failed = {
            name: entry
            for name, entry in report["checks"].items()
            if not entry["ok"]
        }
        assert report["ok"], failed


class TestClusterMigration:
    def test_migration_keeps_detections_exactly_once(self, tmp_path):
        program, stream = build_workload(cases_per_line=8)
        expected = baseline(program, stream)
        directory = str(tmp_path / "migrate")

        async def scenario():
            cluster = Cluster(
                program,
                workers=2,
                directory=directory,
                sink=True,
                inprocess=True,
            )
            try:
                port = await cluster.start()
                shard = sorted(cluster.plan.assignment)[0]
                source = cluster.plan.assignment[shard]
                target = next(
                    node for node in cluster.plan.nodes if node != source
                )
                client = AsyncClient(
                    tcp_connector("127.0.0.1", port),
                    client_id="mover",
                    subscribe=True,
                    batch_size=8,
                )
                async with client:
                    half = len(stream) // 2
                    await client.submit_many(stream[:half])
                    await client.drain(timeout=30)
                    await cluster.migrate_shard(shard, target)
                    assert cluster.plan.assignment[shard] == target
                    await client.submit_many(stream[half:])
                    await client.flush(timeout=30)
                    await asyncio.sleep(0.2)
                    pushed = canon_frames(client.detections)
                return pushed
            finally:
                await cluster.stop()

        pushed = asyncio.run(scenario())
        assert len(pushed) == len(set(pushed))
        assert pushed == expected


class TestRelayedProvenance:
    """The per-observation client-seq batch API the router relies on."""

    def test_contiguous_form_unchanged(self):
        client_id, seqs = _resolve_client_seqs(("c", 7), 3)
        assert client_id == "c" and list(seqs) == [7, 8, 9]

    def test_explicit_seqs_accepted_with_gaps(self):
        client_id, seqs = _resolve_client_seqs(("c", (1, 4, 9)), 3)
        assert client_id == "c" and list(seqs) == [1, 4, 9]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            _resolve_client_seqs(("c", (1, 2)), 3)

    def test_non_ascending_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            _resolve_client_seqs(("c", (3, 2, 5)), 3)

    def test_gapped_batch_commits_exact_seqs_and_frontier(self, tmp_path):
        program, stream = build_workload(lines=1, cases_per_line=2)
        directory = str(tmp_path / "wal")
        factory = lambda: Engine(parse_rules(program), store=RfidStore())
        with DurableEngine(factory, directory) as durable:
            gapped = tuple(range(0, 2 * len(stream), 2))
            durable.submit_many(stream, client=("relay", gapped))
            assert durable.client_frontiers["relay"] == gapped[-1]
        recorded = [
            record.payload[CLIENT_KEY][1]
            for record in read_wal(os.path.join(directory, "wal"))
            if CLIENT_KEY in record.payload
        ]
        assert recorded == list(gapped)


REVISION_PROGRAM = """
CREATE RULE missing_case, item never cased
ON WITHIN(observation('dock', o, t1); NOT observation('case', o, t2), 5sec)
IF true
DO ALERT 'missing case'

CREATE RULE paired, keeps the second shard populated
ON WITHIN(observation('r3', o, t1); observation('r4', o, t2), 5sec)
IF true
DO ALERT 'pair'
"""


class TestRevisionFanIn:
    """Speculative (REVISE) workers behind the router.

    The router is a pure forwarder: workers tag detection payloads with
    ``(did, rev, status)``, the fan-in sort makes cross-shard merge
    order deterministic, and per-subscriber gating keeps v1 peers on a
    finals-only diet.  The headline scenario is the ISSUE one: a late
    observation submitted on one session retracts a detection that was
    already pushed to a *different* session's subscriber.
    """

    HORIZON = 100.0

    def test_late_event_retracts_detection_pushed_via_another_session(self):
        from repro import Observation, OutOfOrderPolicy
        from repro.serve.cluster import CepRouter
        from repro.serve.server import CepServer
        from repro.store import RfidStore

        async def scenario():
            rules = parse_rules(REVISION_PROGRAM)
            plan = plan_cluster(rules, 2, max_shards=2)
            assert len(plan.shard_plan.shard_names) == 2
            servers = []
            endpoints = {}
            for shard in plan.shard_plan.shard_names:
                engine = Engine(
                    plan.shard_plan.rules[shard],
                    store=RfidStore(),
                    out_of_order=OutOfOrderPolicy.REVISE,
                    revise_horizon=self.HORIZON,
                )
                server = CepServer(engine)
                port = await server.serve_tcp("127.0.0.1", 0)
                servers.append(server)
                endpoints[shard] = ("127.0.0.1", port)
            router = CepRouter(plan, endpoints)
            port = await router.serve_tcp("127.0.0.1", 0)

            watcher = AsyncClient(
                tcp_connector("127.0.0.1", port),
                client_id="watcher",
                subscribe=True,
            )
            legacy = AsyncClient(
                tcp_connector("127.0.0.1", port),
                client_id="legacy",
                subscribe=True,
                protocol_version=1,
            )
            producer = AsyncClient(
                tcp_connector("127.0.0.1", port), client_id="producer"
            )
            latecomer = AsyncClient(
                tcp_connector("127.0.0.1", port), client_id="latecomer"
            )
            try:
                async with watcher, legacy, producer, latecomer:
                    # o1 seen at the dock; a second dock read far past
                    # o1's 5s window lets the speculative engine close
                    # it: "o1 was never cased" fires *provisionally*.
                    await producer.submit_many(
                        [
                            Observation("dock", "o1", 0.0),
                            Observation("dock", "o2", 10.0),
                        ]
                    )
                    await eventually(
                        lambda: any(
                            f.status == "provisional"
                            and f.bindings.get("o") == "o1"
                            for f in watcher.detections
                        ),
                        message="provisional detection never pushed",
                    )
                    provisional = next(
                        f
                        for f in watcher.detections
                        if f.bindings.get("o") == "o1"
                    )
                    assert provisional.detection_id
                    assert provisional.revision == 0

                    # The late casing read arrives on a *different*
                    # session, is routed to shard-0, and must retract
                    # the detection the watcher already holds.
                    await latecomer.submit_many(
                        [Observation("case", "o1", 2.0)]
                    )
                    await eventually(
                        lambda: any(
                            f.status == "retract"
                            and f.detection_id == provisional.detection_id
                            for f in watcher.detections
                        ),
                        message="late event never retracted the push",
                    )
                    retract = next(
                        f
                        for f in watcher.detections
                        if f.status == "retract"
                    )
                    assert retract.detection_id == provisional.detection_id
                    assert retract.revision == provisional.revision + 1

                    # Push the watermark past o2's window close: its
                    # detection seals, and only *that* final reaches the
                    # v1 subscriber — stripped of revision keys.
                    await producer.submit_many(
                        [Observation("dock", "o3", 120.0)]
                    )
                    await eventually(
                        lambda: any(
                            f.status == "final"
                            and f.bindings.get("o") == "o2"
                            for f in watcher.detections
                        ),
                        message="watermark passage never sealed o2",
                    )
                    await eventually(
                        lambda: len(legacy.detections) >= 1,
                        message="v1 subscriber never saw the final",
                    )
                    return (
                        list(watcher.detections),
                        list(legacy.detections),
                    )
            finally:
                await router.close()
                for server in servers:
                    await server.close()

        frames, legacy_frames = asyncio.run(scenario())

        # Revisions are strictly increasing per detection_id, and every
        # frame from a REVISE worker carries the lifecycle fields.
        by_id = {}
        for frame in frames:
            assert frame.detection_id and frame.status
            by_id.setdefault(frame.detection_id, []).append(frame.revision)
        for revisions in by_id.values():
            assert revisions == sorted(revisions)
            assert len(set(revisions)) == len(revisions)

        # Fan-in determinism: within one epoch (= one seq), tagged
        # payloads are ordered by (detection_id, revision).
        by_seq = {}
        for frame in frames:
            by_seq.setdefault(frame.seq, []).append(
                (frame.detection_id, frame.revision)
            )
        for keys in by_seq.values():
            assert keys == sorted(keys)

        # The v1 subscriber saw finals only — never o1 (its lifecycle
        # was provisional -> retract) — and no revision fields at all.
        assert legacy_frames
        for frame in legacy_frames:
            assert frame.bindings.get("o") != "o1"
            assert frame.detection_id == ""
            assert frame.status == ""
            assert frame.revision == 0


class TestRetryHintPerAttempt:
    def test_failed_reconnect_attempt_reapplies_fresh_hint(self):
        # A server that sheds every handshake with ``retry_after`` must
        # see that hint honoured on *every* subsequent attempt, not just
        # the first dial — the regression was consuming the hint once
        # before the attempt loop.
        async def scenario():
            async def shed(reader, writer):
                writer.write(
                    encode_frame(
                        ErrorFrame(
                            code="overloaded",
                            message="go away",
                            retry_after=0.08,
                        )
                    )
                )
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(shed, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            sleeps = []
            real_sleep = asyncio.sleep

            async def recording_sleep(delay, *args, **kwargs):
                sleeps.append(delay)
                return await real_sleep(0)

            client = AsyncClient(
                tcp_connector("127.0.0.1", port),
                client_id="shed-me",
                retry=RetryConfig(
                    max_attempts=3, backoff_base=0.001, jitter=False
                ),
            )
            asyncio.sleep = recording_sleep
            try:
                with pytest.raises(ClientError):
                    await client.connect()
            finally:
                asyncio.sleep = real_sleep
                server.close()
                await server.wait_closed()
                await client.close()
            return sleeps

        sleeps = asyncio.run(scenario())
        # Attempts 2 and 3 each follow a shed handshake: both of their
        # backoff sleeps must be floored by the re-read 0.08s hint
        # (plain backoff would be ~0.001s/0.002s).
        assert len([delay for delay in sleeps if delay >= 0.08]) >= 2
