"""Wire-codec tests: negotiation, binary layout, mixed-version serving.

Covers the protocol-v2 codec surface end to end:

* codec registry and HELLO/WELCOME negotiation (v1 peers keep JSON);
* ``BBATCH`` round-trips for arbitrary unicode ids (property-style),
  the JSON fallback for unpackable batches, and decode hardening;
* ``DETBATCH`` push batching gated on the ``batch_push`` capability;
* a mixed-version soak: a raw protocol-v1 JSON peer and a v2 binary
  client sharing one durable server across a crash/recover cycle, with
  identical detections and exactly-once frontiers for both;
* the engine-side :class:`SubmitResult` compatibility contract and the
  client's chunk-granular unacked buffer.
"""

import asyncio
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine, Observation
from repro.apps import containment_rule, location_rule
from repro.core.detector import FunctionRegistry, SubmitResult
from repro.core.sharding import ShardedEngine
from repro.resilience.durability import DurableEngine
from repro.serve import (
    Ack,
    AsyncClient,
    Batch,
    BinaryBatch,
    CepServer,
    DetectionBatch,
    DetectionFrame,
    Flush,
    FrameDecoder,
    FrameError,
    Hello,
    ServeConfig,
    Submit,
    Subscribe,
    Welcome,
    codec_names,
    encode_frame,
    get_codec,
    loopback_connector,
    negotiate_codec,
    register_codec,
)
from repro.serve.client import _FLUSH
from repro.serve.protocol import WireCodec
from repro.simulator import PackingConfig, simulate_packing
from repro.store import RfidStore


def packing_stream(cases=5, seed=3):
    trace = simulate_packing(PackingConfig(cases=cases), rng=random.Random(seed))
    return trace.observations


def build_rules():
    return [containment_rule(), location_rule()]


def plain_engine():
    return Engine(build_rules(), store=RfidStore(), functions=FunctionRegistry())


def canon_engine(detections):
    return [
        (d.rule.rule_id, round(d.time, 9), tuple(sorted(d.bindings.items())))
        for d in detections
    ]


def canon_frames(frames):
    return [
        (f.rule, round(f.time, 9), tuple(sorted(f.bindings.items())))
        for f in frames
    ]


def decode_one(data: bytes):
    frames = list(FrameDecoder().feed(data))
    assert len(frames) == 1, frames
    return frames[0]


async def eventually(predicate, timeout=5.0, message="condition not reached"):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError(message)
        await asyncio.sleep(0.01)


# -- negotiation ---------------------------------------------------------------


class TestCodecRegistry:
    def test_builtin_codecs_registered(self):
        assert {"json", "binary"} <= set(codec_names())
        assert get_codec("json").name == "json"
        assert get_codec("binary").name == "binary"

    def test_unknown_codec_rejected(self):
        with pytest.raises(FrameError, match="unknown wire codec"):
            get_codec("brotli-ultra")

    def test_nameless_codec_rejected(self):
        with pytest.raises(ValueError):
            register_codec(WireCodec())

    def test_client_rejects_typo_codec_at_construction(self):
        with pytest.raises(FrameError, match="unknown wire codec"):
            AsyncClient(lambda: None, codec="binray")


class TestNegotiation:
    def test_v1_peer_always_gets_json(self):
        hello = Hello(client_id="legacy", version=1)
        assert negotiate_codec(hello, ["binary", "json"]) == "json"

    def test_v2_peer_without_offer_gets_json(self):
        hello = Hello(client_id="quiet", version=2)
        assert negotiate_codec(hello, ["binary", "json"]) == "json"

    def test_server_preference_order_wins(self):
        hello = Hello(
            client_id="c",
            version=2,
            capabilities={"codecs": ["json", "binary"]},
        )
        assert negotiate_codec(hello, ["binary", "json"]) == "binary"

    def test_unknown_offers_fall_back_to_json(self):
        hello = Hello(
            client_id="c", version=2, capabilities={"codecs": ["zstd-frames"]}
        )
        assert negotiate_codec(hello, ["binary", "json"]) == "json"

    def test_garbage_offer_shape_falls_back_to_json(self):
        hello = Hello(
            client_id="c", version=2, capabilities={"codecs": "binary"}
        )
        assert negotiate_codec(hello, ["binary", "json"]) == "json"

    @pytest.mark.parametrize("asked,negotiated", [
        (None, "binary"),
        ("binary", "binary"),
        ("json", "json"),
    ])
    def test_live_handshake_negotiates(self, asked, negotiated):
        async def scenario():
            async with CepServer(plain_engine()) as server:
                client = AsyncClient(loopback_connector(server), codec=asked)
                async with client:
                    assert client.codec == negotiated
                    await client.submit_many(packing_stream(cases=1))
                    await client.flush(timeout=10)

        asyncio.run(scenario())


# -- the binary layout ---------------------------------------------------------


ids = st.text(
    alphabet=st.characters(blacklist_characters="\0", blacklist_categories=("Cs",)),
    min_size=1,
    max_size=24,
)


class TestBinaryBatchRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                ids,
                ids,
                st.floats(
                    allow_nan=False, allow_infinity=False, width=64
                ),
            ),
            min_size=1,
            max_size=20,
        ),
        seq=st.integers(min_value=0, max_value=2**63),
        codec_name=st.sampled_from(["json", "binary"]),
    )
    def test_any_unicode_ids_round_trip(self, rows, seq, codec_name):
        """Reader/object ids — ASCII, CJK, emoji, whatever — survive the
        wire bit-exactly under both codecs (satellite: the non-ASCII id
        round-trip fix)."""
        observations = [Observation(r, o, t) for r, o, t in rows]
        codec = get_codec(codec_name)
        frame = decode_one(codec.encode_batch(seq, observations))
        decoded = list(frame.observations) if hasattr(frame, "observations") else [
            frame.observation
        ]
        assert [(d.reader, d.obj) for d in decoded] == [
            (r, o) for r, o, _t in rows
        ]
        assert [d.timestamp for d in decoded] == [t for _r, _o, t in rows]
        assert frame.seq == seq

    def test_non_ascii_ids_end_to_end(self):
        """The same ids through a live server: what is acked is what the
        engine saw, for both codecs."""
        exotic = [
            Observation("читатель-1", "objé-α", 1.0),
            Observation("読み取り機", "🏷️-tag", 2.0),
            Observation("reader‮bidi", "obßject", 3.0),
        ]

        async def scenario(codec):
            engine = plain_engine()
            seen = []
            original = engine.submit_many

            def spy(observations, *args, **kwargs):
                seen.extend(observations)
                return original(observations, *args, **kwargs)

            engine.submit_many = spy
            async with CepServer(engine) as server:
                client = AsyncClient(loopback_connector(server), codec=codec)
                async with client:
                    await client.submit_many(exotic)
                    await client.flush(timeout=10)
            return [(o.reader, o.obj, o.timestamp) for o in seen]

        want = [(o.reader, o.obj, o.timestamp) for o in exotic]
        assert asyncio.run(scenario("binary")) == want
        assert asyncio.run(scenario("json")) == want

    def test_binary_is_smaller_than_json(self):
        # Unique tags: the id strings dominate, but the framing still wins.
        unique = [
            Observation(f"dock-{i % 3}", f"urn:epc:id:sgtin:{i:012d}", float(i))
            for i in range(200)
        ]
        binary = get_codec("binary").encode_batch(0, unique)
        as_json = get_codec("json").encode_batch(0, unique)
        assert isinstance(decode_one(binary), BinaryBatch)
        assert len(binary) < len(as_json)
        # Re-read tags (portals see the same cases repeatedly): interning
        # ships each id once and the batch shrinks by multiples.
        reread = [
            Observation(f"dock-{i % 3}", f"urn:epc:id:sgtin:{i % 8:012d}", float(i))
            for i in range(200)
        ]
        binary = get_codec("binary").encode_batch(0, reread)
        as_json = get_codec("json").encode_batch(0, reread)
        assert len(binary) < len(as_json) // 3


class TestBinaryFallback:
    def test_nul_id_falls_back_to_json_batch(self):
        observations = [
            Observation("r\0eader", "o1", 1.0),
            Observation("r2", "o2", 2.0),
        ]
        frame = decode_one(get_codec("binary").encode_batch(5, observations))
        assert type(frame) is Batch
        assert frame.seq == 5
        assert [o.reader for o in frame.observations] == ["r\0eader", "r2"]

    def test_single_unpackable_falls_back_to_submit(self):
        frame = decode_one(
            get_codec("binary").encode_batch(
                9, [Observation("r", "o", 1.0, {"weight": 3})]
            )
        )
        assert type(frame) is Submit
        assert frame.seq == 9
        assert frame.observation.extra == {"weight": 3}

    def test_extra_payload_falls_back_and_survives(self):
        observations = [
            Observation("r1", "o1", 1.0, {"rssi": -40}),
            Observation("r2", "o2", 2.0),
        ]
        frame = decode_one(get_codec("binary").encode_batch(0, observations))
        assert type(frame) is Batch
        assert frame.observations[0].extra == {"rssi": -40}

    def test_non_finite_timestamp_fails_like_json(self):
        bad = [Observation("r", "o", math.inf), Observation("r", "o", 1.0)]
        with pytest.raises(FrameError):
            get_codec("binary").encode_batch(0, bad)
        with pytest.raises(FrameError):
            get_codec("json").encode_batch(0, bad)


class TestBinaryBatchDecodeHardening:
    def valid_body(self, n=3):
        observations = [
            Observation(f"r{i}", f"o{i}", float(i)) for i in range(n)
        ]
        return BinaryBatch(seq=0, observations=tuple(observations)).encode_body()

    def test_round_trip_of_reference_body(self):
        frame = BinaryBatch.decode_body(self.valid_body())
        assert len(frame.observations) == 3

    def test_truncated_body_rejected(self):
        body = self.valid_body()
        with pytest.raises(FrameError):
            BinaryBatch.decode_body(body[: len(body) - 4])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(FrameError, match="trailing"):
            BinaryBatch.decode_body(self.valid_body() + b"\x00")

    def test_truncated_string_table_rejected(self):
        # Lie about the reader-blob length: points past the body end.
        # Layout: 12 header bytes + 6 table-count bytes, then the
        # 4-byte reader-blob length.
        body = bytearray(self.valid_body())
        body[18:22] = (2**31).to_bytes(4, "big")
        with pytest.raises(FrameError, match="truncated|malformed"):
            BinaryBatch.decode_body(bytes(body))

    def test_table_count_mismatch_rejected(self):
        # Claim one more reader than the blob actually holds.
        body = bytearray(self.valid_body())
        body[12:14] = (4).to_bytes(2, "big")
        with pytest.raises(FrameError):
            BinaryBatch.decode_body(bytes(body))

    def test_invalid_utf8_in_table_rejected(self):
        body = bytearray(self.valid_body())
        body[22] = 0xFF  # first byte of the reader blob
        with pytest.raises(FrameError, match="malformed"):
            BinaryBatch.decode_body(bytes(body))

    def test_empty_batch_round_trips(self):
        frame = BinaryBatch.decode_body(
            BinaryBatch(seq=7, observations=()).encode_body()
        )
        assert frame.seq == 7
        assert frame.observations == ()


# -- detection push batching ---------------------------------------------------


class RawPeer:
    """A frame-level loopback peer with an explicit HELLO of our choosing."""

    def __init__(self, server):
        self.reader, self.writer = server.connect_loopback()
        self._decoder = FrameDecoder()
        self.frames = []
        self.detections = []
        self.acked = -1

    async def send(self, frame):
        self.writer.write(encode_frame(frame))
        await self.writer.drain()

    async def pump(self, timeout=0.2):
        """Read whatever is available, sorting frames into buckets."""
        try:
            data = await asyncio.wait_for(self.reader.read(65536), timeout)
        except asyncio.TimeoutError:
            return
        for frame in self._decoder.feed(data):
            if isinstance(frame, Ack):
                self.acked = max(self.acked, frame.seq)
            elif isinstance(frame, DetectionFrame):
                self.detections.append(frame)
            elif isinstance(frame, DetectionBatch):
                self.frames.append(frame)
                self.detections.extend(
                    DetectionFrame.from_payload(p) for p in frame.detections
                )
            else:
                self.frames.append(frame)

    async def pump_until(self, predicate, timeout=5.0):
        deadline = asyncio.get_running_loop().time() + timeout
        while not predicate():
            if asyncio.get_running_loop().time() > deadline:
                raise AssertionError("raw peer timed out")
            await self.pump()

    def batch_frames(self):
        return [f for f in self.frames if isinstance(f, DetectionBatch)]


class TestDetectionBatchPush:
    def run_with_subscriber(self, capabilities):
        stream = packing_stream(cases=4, seed=9)
        expected = canon_engine(plain_engine().run(stream))

        async def scenario():
            async with CepServer(plain_engine()) as server:
                watcher = RawPeer(server)
                await watcher.send(
                    Hello(client_id="watcher", capabilities=capabilities)
                )
                await watcher.pump_until(
                    lambda: any(isinstance(f, Welcome) for f in watcher.frames)
                )
                await watcher.send(Subscribe())
                ingest = AsyncClient(
                    loopback_connector(server), codec="binary", batch_size=256
                )
                async with ingest:
                    await ingest.submit_many(stream)
                    await ingest.flush(timeout=10)
                await watcher.pump_until(
                    lambda: len(watcher.detections) >= len(expected)
                )
                return watcher

        watcher = asyncio.run(scenario())
        assert canon_frames(watcher.detections) == expected
        return watcher

    def test_batch_push_peer_gets_coalesced_frames(self):
        watcher = self.run_with_subscriber({"batch_push": True})
        batches = watcher.batch_frames()
        assert batches, "batch_push subscriber never saw a DETBATCH"
        assert any(len(b.detections) > 1 for b in batches)
        # Ordinals disambiguate same-seq detections within a batch.
        for batch in batches:
            seqs = [(p["seq"], p["ordinal"]) for p in batch.detections]
            assert seqs == sorted(seqs)

    def test_peer_without_capability_gets_single_frames(self):
        watcher = self.run_with_subscriber({})
        assert watcher.batch_frames() == []


# -- mixed-version soak --------------------------------------------------------


class V1Peer(RawPeer):
    """A strict protocol-v1 JSON peer: no capabilities, SUBMIT per obs.

    This is what a pre-codec checkout speaks; the soak test asserts it
    keeps working, byte-for-byte, against a v2 server sharing its
    backend with binary-codec sessions.
    """

    def __init__(self, server, client_id, resume_from=-1):
        super().__init__(server)
        self.client_id = client_id
        self.next_seq = resume_from + 1
        self.acked = resume_from

    async def handshake(self, subscribe=False):
        await self.send(
            Hello(
                client_id=self.client_id,
                version=1,
                resume_from=self.acked,
            )
        )
        await self.pump_until(
            lambda: any(isinstance(f, Welcome) for f in self.frames)
        )
        welcome = next(f for f in self.frames if isinstance(f, Welcome))
        self.next_seq = max(self.next_seq, welcome.next_seq)
        if subscribe:
            await self.send(Subscribe())
        return welcome

    async def submit_stream(self, observations):
        for observation in observations:
            await self.send(Submit(seq=self.next_seq, observation=observation))
            self.next_seq += 1

    async def drain(self):
        await self.pump_until(lambda: self.acked >= self.next_seq - 1)

    async def flush(self):
        seq = self.next_seq
        self.next_seq += 1
        await self.send(Flush(seq=seq))
        await self.pump_until(lambda: self.acked >= seq)

    def assert_never_saw_v2_frames(self):
        assert not self.batch_frames(), "v1 peer received a DETBATCH"


class TestMixedVersionSoak:
    def test_v1_and_binary_clients_share_a_durable_server(self, tmp_path):
        """A legacy JSON peer and a binary v2 client interleave on one
        durable server, survive a crash/recover, and both end with the
        full, identical detection stream and exactly-once frontiers."""
        stream = packing_stream(cases=8, seed=21)
        expected = canon_engine(plain_engine().run(stream))
        directory = str(tmp_path / "mixed-durable")
        quarter = len(stream) // 4
        cuts = [quarter, 2 * quarter, 3 * quarter]
        # Detections the first two quarters fire *without* an
        # end-of-stream flush — what subscribers see mid-stream.
        prefix = canon_engine(plain_engine().submit_many(stream[: cuts[1]]))

        async def first_life():
            durable = DurableEngine(plain_engine, directory)
            try:
                async with CepServer(durable) as server:
                    legacy = V1Peer(server, "legacy-dock")
                    await legacy.handshake(subscribe=True)
                    modern = AsyncClient(
                        loopback_connector(server),
                        client_id="modern-dock",
                        codec="binary",
                        subscribe=True,
                        batch_size=32,
                    )
                    async with modern:
                        assert modern.codec == "binary"
                        # Interleaved, strictly ordered ingest:
                        # v1 takes the first quarter, v2 the second.
                        await legacy.submit_stream(stream[: cuts[0]])
                        await legacy.drain()
                        await modern.submit_many(stream[cuts[0] : cuts[1]])
                        await modern.drain(timeout=10)
                        await legacy.pump_until(
                            lambda: len(legacy.detections) >= len(prefix)
                        )
                        await eventually(
                            lambda: len(modern.detections) >= len(prefix)
                        )
                        assert canon_frames(legacy.detections) == prefix
                        assert canon_frames(modern.detections) == prefix
                        legacy.assert_never_saw_v2_frames()
                        return legacy.acked, modern.last_acked
            finally:
                durable.close()

        async def second_life(legacy_acked, modern_acked):
            durable, _report = DurableEngine.recover(plain_engine, directory)
            try:
                async with CepServer(durable) as server:
                    # Frontiers rebuilt from WAL provenance for *both*
                    # protocol generations.
                    assert server.client_frontier("legacy-dock") == legacy_acked
                    assert server.client_frontier("modern-dock") == modern_acked
                    legacy = V1Peer(
                        server, "legacy-dock", resume_from=legacy_acked - 2
                    )
                    welcome = await legacy.handshake(subscribe=True)
                    # The server's record wins over the under-reported ack.
                    assert welcome.next_seq == legacy_acked + 1
                    modern = AsyncClient(
                        loopback_connector(server),
                        client_id="modern-dock",
                        codec="binary",
                        subscribe=True,
                        resume_from=modern_acked,
                        batch_size=32,
                    )
                    async with modern:
                        await legacy.submit_stream(stream[cuts[1] : cuts[2]])
                        await legacy.drain()
                        await modern.submit_many(stream[cuts[2] :])
                        await modern.flush(timeout=10)
                        late = len(expected) - len(prefix)
                        await legacy.pump_until(
                            lambda: len(legacy.detections) >= late
                        )
                        await eventually(
                            lambda: len(modern.detections) >= late
                        )
                        assert server.stats.duplicates_skipped == 0
                        legacy.assert_never_saw_v2_frames()
                        return (
                            canon_frames(legacy.detections),
                            canon_frames(modern.detections),
                        )
            finally:
                durable.close()

        legacy_acked, modern_acked = asyncio.run(first_life())
        assert legacy_acked == cuts[0] - 1
        legacy_late, modern_late = asyncio.run(
            second_life(legacy_acked, modern_acked)
        )
        assert prefix + legacy_late == expected
        assert prefix + modern_late == expected


# -- CLI plumbing --------------------------------------------------------------


class TestServeCliCodecs:
    def rules_file(self, tmp_path):
        path = tmp_path / "rules.txt"
        path.write_text(
            'DEFINE E1 = observation("r1", o1, t1)\n'
            'DEFINE E2 = observation("r2", o2, t2)\n'
            "CREATE RULE contain, containment ON "
            "TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec) IF true "
            "DO BULK INSERT INTO CONTAINMENT VALUES (o1, o2, t2, 'UC')\n"
        )
        return str(path)

    def test_unknown_codec_rejected_before_binding(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(
            [
                "serve",
                "--rules",
                self.rules_file(tmp_path),
                "--port",
                "0",
                "--codecs",
                "binary,zstd-frames",
                "--max-seconds",
                "0.1",
            ]
        )
        assert code == 2
        assert "unknown wire codec" in capsys.readouterr().out

    def test_codecs_option_restricts_negotiation(self, tmp_path):
        """A json-only server makes every v2 client fall back to JSON."""
        async def scenario():
            config_server = CepServer(
                plain_engine(), config=ServeConfig(codecs=("json",))
            )
            async with config_server as server:
                client = AsyncClient(loopback_connector(server), codec=None)
                async with client:
                    assert client.codec == "json"

        asyncio.run(scenario())


# -- engine-side SubmitResult contract ----------------------------------------


class TestSubmitResultContract:
    def make_backend(self, kind, tmp_path):
        if kind == "plain":
            return plain_engine(), lambda: None
        if kind == "sharded":
            backend = ShardedEngine(
                build_rules(),
                max_shards=3,
                store=RfidStore(),
                functions=FunctionRegistry(),
            )
            return backend, lambda: None
        durable = DurableEngine(plain_engine, str(tmp_path / "d"))
        return durable, durable.close

    @pytest.mark.parametrize("kind", ["plain", "sharded", "durable"])
    def test_submit_many_returns_submit_result(self, kind, tmp_path):
        backend, closer = self.make_backend(kind, tmp_path)
        try:
            stream = packing_stream(cases=3, seed=7)
            result = backend.submit_many(stream)
            assert isinstance(result, SubmitResult)
            # The legacy contract: it IS the detection list.
            assert isinstance(result, list)
            assert result.detections is result
            assert result.accepted == len(stream)
            assert result.dropped == 0
            assert result.quarantined == 0
            assert canon_engine(result) == canon_engine(
                plain_engine().run(stream)
            )
            assert "accepted=" in repr(result)
        finally:
            closer()

    def test_empty_batch_is_an_empty_result(self):
        result = plain_engine().submit_many([])
        assert isinstance(result, SubmitResult)
        assert list(result) == []
        assert (result.accepted, result.dropped) == (0, 0)


# -- chunk-granular unacked buffer --------------------------------------------


class TestPendingChunks:
    def make_client(self):
        return AsyncClient(lambda: None, batch_size=10)

    def obs(self, n, start=0):
        return [Observation("r", f"o{start + i}", float(start + i)) for i in range(n)]

    def test_full_runs_are_dropped_whole(self):
        client = self.make_client()
        client._pending = [(0, self.obs(4)), (4, self.obs(4, 4))]
        client._advance_acks(3)
        assert client.last_acked == 3
        assert [entry[0] for entry in client._pending] == [4]

    def test_partial_ack_trims_the_head_run(self):
        client = self.make_client()
        run = self.obs(6)
        client._pending = [(0, run)]
        client._advance_acks(3)
        first, rest = client._pending[0]
        assert first == 4
        assert rest == run[4:]

    def test_flush_markers_are_acked_away(self):
        client = self.make_client()
        client._pending = [(0, self.obs(3)), (3, _FLUSH), (4, self.obs(2, 4))]
        client._advance_acks(3)
        assert [entry[0] for entry in client._pending] == [4]
        client._advance_acks(5)
        assert client._pending == []

    def test_stale_ack_is_ignored(self):
        client = self.make_client()
        client._pending = [(5, self.obs(2, 5))]
        client._advance_acks(6)
        client._advance_acks(4)  # out-of-order duplicate ack
        assert client.last_acked == 6
        assert client._pending == []

    def test_resend_merges_and_resplits_to_the_limit(self):
        client = self.make_client()
        client._server_max_batch = 4
        sent = []

        async def record_chunk(first, chunk):
            sent.append(("chunk", first, len(chunk)))

        async def record_raw(frame):
            sent.append(("flush", frame.seq))

        client._write_chunk = record_chunk
        client._send_raw = record_raw
        client._pending = [
            (0, self.obs(6)),
            (6, _FLUSH),
            (7, self.obs(2, 7)),
            (9, self.obs(1, 9)),
        ]
        asyncio.run(client._resend_pending())
        assert sent == [
            ("chunk", 0, 4),
            ("chunk", 4, 2),
            ("flush", 6),
            ("chunk", 7, 3),
        ]
