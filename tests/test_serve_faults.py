"""Unit tests for the network fault injector and the liveness machinery.

`tests/test_serve_chaos.py` runs the full soak drill; this file pins
the building blocks in isolation: schedule determinism (the property
that makes a failing chaos run reproducible from its seed), byte
preservation under fragmentation, CRC detection of injected
corruption, reset semantics, heartbeat capability gating, idle
reaping, overload shedding, and the sync client's leak reporting.
"""

import asyncio
import logging

import pytest

from repro import Engine, Observation
from repro.apps import containment_rule, location_rule
from repro.serve import (
    Ack,
    AsyncClient,
    CepServer,
    Client,
    ErrorFrame,
    FaultStats,
    FaultyTransport,
    FrameDecoder,
    FrameError,
    Hello,
    NetworkFaultPlan,
    ServeConfig,
    Submit,
    Welcome,
    encode_frame,
    loopback_connector,
    loopback_pair,
)

OBS = Observation("reader-1", "urn:epc:item:1", 12.5)

#: Every fault class enabled, rates high enough that a 40-chunk run
#: exercises them all.
BUSY_PLAN = NetworkFaultPlan(
    seed=11,
    jitter=0.001,
    fragment_rate=0.5,
    fragment_cuts=4,
    stall_rate=0.3,
    stall_seconds=0.01,
    reset_rate=0.2,
    corrupt_rate=0.3,
)

#: Deterministic chunk sizes spanning tiny to multi-frame.
CHUNKS = [bytes([i % 251]) * (1 + (i * 37) % 197) for i in range(40)]


def replay(plan, label, chunks):
    """Run a schedule over ``chunks``; return comparable decisions."""
    schedule = plan.schedule(label)
    decisions = []
    for chunk in chunks:
        out = schedule.plan_chunk(chunk)
        decisions.append((list(out.segments), round(out.delay, 12), out.reset))
    return decisions, schedule.stats


async def eventually(predicate, timeout=5.0, message="condition not reached"):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError(message)
        await asyncio.sleep(0.01)


class Raw:
    """A frame-level loopback client for poking at the protocol directly."""

    def __init__(self, server):
        self.reader, self.writer = server.connect_loopback()
        self._decoder = FrameDecoder()
        self._frames = []

    async def send(self, frame):
        self.writer.write(encode_frame(frame))
        await self.writer.drain()

    async def recv(self, timeout=2.0):
        while not self._frames:
            data = await asyncio.wait_for(self.reader.read(65536), timeout)
            if not data:
                raise AssertionError("peer closed while waiting for a frame")
            self._frames.extend(self._decoder.feed(data))
        return self._frames.pop(0)

    async def recv_until(self, frame_type, timeout=2.0):
        while True:
            frame = await self.recv(timeout)
            if isinstance(frame, frame_type):
                return frame


def build_engine():
    return Engine([containment_rule(), location_rule()])


class TestScheduleDeterminism:
    def test_same_seed_and_label_replays_identically(self):
        first, first_stats = replay(BUSY_PLAN, "up:0", CHUNKS)
        second, second_stats = replay(BUSY_PLAN, "up:0", CHUNKS)
        assert first == second
        assert first_stats.as_dict() == second_stats.as_dict()
        # The plan is busy enough that the run exercised real faults.
        assert first_stats.faults_fired > 0

    def test_directions_draw_independent_schedules(self):
        up, _ = replay(BUSY_PLAN, "up:0", CHUNKS)
        down, _ = replay(BUSY_PLAN, "down:0", CHUNKS)
        assert up != down

    def test_reseeding_changes_the_schedule(self):
        original, _ = replay(BUSY_PLAN, "up:0", CHUNKS)
        reseeded, _ = replay(BUSY_PLAN.reseeded(BUSY_PLAN.seed + 1), "up:0", CHUNKS)
        assert original != reseeded
        assert BUSY_PLAN.reseeded(99).fragment_rate == BUSY_PLAN.fragment_rate

    def test_fragmentation_preserves_bytes(self):
        plan = NetworkFaultPlan(seed=5, fragment_rate=1.0, fragment_cuts=8)
        schedule = plan.schedule("frag")
        for chunk in CHUNKS:
            out = schedule.plan_chunk(chunk)
            assert b"".join(out.segments) == chunk
            assert not out.reset
        assert schedule.stats.fragments > 0
        assert schedule.stats.corruptions == 0

    def test_zeroed_plan_forwards_verbatim(self):
        schedule = NetworkFaultPlan(seed=3).schedule("idle")
        for chunk in CHUNKS:
            out = schedule.plan_chunk(chunk)
            assert out.segments == [chunk]
            assert out.delay == 0.0 and not out.reset
        assert schedule.stats.faults_fired == 0
        assert schedule.stats.bytes_forwarded == sum(len(c) for c in CHUNKS)

    def test_shared_stats_aggregate_across_directions(self):
        stats = FaultStats()
        BUSY_PLAN.schedule("up:0", stats=stats).plan_chunk(CHUNKS[0])
        BUSY_PLAN.schedule("down:0", stats=stats).plan_chunk(CHUNKS[1])
        assert stats.chunks == 2

    @pytest.mark.parametrize("seed", range(20))
    def test_corruption_never_decodes_a_wrong_frame(self, seed):
        # One flipped byte anywhere in the frame must never survive to
        # a decoded frame: CRC failure (or, for a length-byte flip, an
        # incomplete frame) — a wrong Ack would be silent data loss.
        plan = NetworkFaultPlan(seed=seed, corrupt_rate=1.0)
        schedule = plan.schedule("corrupt")
        out = schedule.plan_chunk(encode_frame(Ack(seq=123456)))
        assert schedule.stats.corruptions == 1
        decoder = FrameDecoder()
        try:
            frames = list(decoder.feed(b"".join(out.segments)))
        except FrameError:
            return
        assert frames == []


class TestFaultyTransport:
    def test_fragmented_writes_decode_identically(self):
        async def scenario():
            a_end, b_end = loopback_pair()
            plan = NetworkFaultPlan(seed=9, fragment_rate=1.0, fragment_cuts=8)
            reader, writer = FaultyTransport(*a_end, plan.schedule("client"))
            sent = [Ack(seq=i) for i in range(30)]
            for frame in sent:
                writer.write(encode_frame(frame))
                await writer.drain()
            peer_reader, _peer_writer = b_end
            decoder = FrameDecoder()
            received = []
            while len(received) < len(sent):
                data = await asyncio.wait_for(peer_reader.read(65536), 2.0)
                assert data, "peer closed early"
                received.extend(decoder.feed(data))
            assert received == sent
            assert writer._schedule.stats.fragments > 0

        asyncio.run(scenario())

    def test_injected_reset_breaks_the_writer(self):
        async def scenario():
            a_end, _b_end = loopback_pair()
            plan = NetworkFaultPlan(seed=1, reset_rate=1.0)
            _reader, writer = FaultyTransport(*a_end, plan.schedule("client"))
            with pytest.raises(ConnectionResetError):
                writer.write(b"x" * 64)
            assert writer.is_closing()
            # The break is sticky: the connection is gone, not flaky.
            with pytest.raises(ConnectionResetError):
                writer.write(b"y")
            with pytest.raises(ConnectionResetError):
                await writer.drain()

        asyncio.run(scenario())

    def test_corrupted_stream_is_rejected_by_the_decoder(self):
        async def scenario():
            a_end, b_end = loopback_pair()
            # Seed chosen so the flip lands past the length prefix (the
            # corruption test above covers every landing zone).
            plan = NetworkFaultPlan(seed=2, corrupt_rate=1.0)
            _reader, writer = FaultyTransport(*a_end, plan.schedule("client"))
            writer.write(encode_frame(Ack(seq=7)))
            await writer.drain()
            peer_reader, _peer_writer = b_end
            data = await asyncio.wait_for(peer_reader.read(65536), 2.0)
            decoder = FrameDecoder()
            try:
                frames = list(decoder.feed(data))
            except FrameError:
                return
            assert frames == []

        asyncio.run(scenario())


class TestLiveness:
    def test_v2_client_is_pinged_and_answers(self):
        async def scenario():
            config = ServeConfig(heartbeat_interval=0.05)
            async with CepServer(build_engine(), config=config) as server:
                client = AsyncClient(loopback_connector(server))
                async with client:
                    await eventually(
                        lambda: client.heartbeats > 0,
                        message="client never saw a PING",
                    )
                    await eventually(
                        lambda: server.stats.pongs_received > 0,
                        message="server never saw the PONG",
                    )
                    assert server.stats.pings_sent > 0
                    assert server.stats.sessions_reaped == 0
                    # Answering PINGs kept the session alive.
                    assert server.stats.sessions_active == 1

        asyncio.run(scenario())

    def test_v1_peer_is_never_pinged(self):
        async def scenario():
            config = ServeConfig(heartbeat_interval=0.02)
            async with CepServer(build_engine(), config=config) as server:
                client = AsyncClient(
                    loopback_connector(server), protocol_version=1
                )
                async with client:
                    await asyncio.sleep(0.2)
                    assert server.stats.pings_sent == 0
                    assert client.heartbeats == 0
                    assert server.stats.sessions_active == 1

        asyncio.run(scenario())

    def test_idle_session_is_reaped_with_error(self):
        async def scenario():
            config = ServeConfig(idle_deadline=0.1)
            async with CepServer(build_engine(), config=config) as server:
                raw = Raw(server)
                await raw.send(Hello(client_id="quiet", resume_from=-1))
                await raw.recv_until(Welcome)
                error = await raw.recv_until(ErrorFrame, timeout=5.0)
                assert error.code == "idle"
                assert server.stats.sessions_reaped == 1

        asyncio.run(scenario())

    def test_pre_handshake_session_is_reaped(self):
        # A peer whose HELLO was lost (e.g. to corruption) must not
        # hold its connection forever.
        async def scenario():
            config = ServeConfig(idle_deadline=0.1)
            async with CepServer(build_engine(), config=config) as server:
                reader, writer = server.connect_loopback()
                writer.write(b"\xff\xff")  # a torn length prefix, then silence
                await writer.drain()
                await eventually(
                    lambda: server.stats.sessions_reaped == 1,
                    message="pre-handshake session never reaped",
                )

        asyncio.run(scenario())


class TestOverloadShedding:
    def test_saturated_queue_sheds_with_retry_after(self):
        async def scenario():
            config = ServeConfig(
                submit_queue=1, overload_grace=0.05, retry_after=0.5
            )
            server = CepServer(build_engine(), config=config)
            # Park the writer so the submit queue can only fill: the
            # test targets the shed path, not backend throughput.
            parked = asyncio.get_running_loop().create_future()

            async def parked_writer():
                await parked

            server._writer_task = asyncio.ensure_future(parked_writer())
            try:
                raw = Raw(server)
                await raw.send(Hello(client_id="flood", resume_from=-1))
                await raw.recv_until(Welcome)
                for seq in range(4):
                    await raw.send(Submit(seq=seq, observation=OBS))
                error = await raw.recv_until(ErrorFrame, timeout=5.0)
                assert error.code == "overloaded"
                assert error.retry_after == 0.5
                assert server.stats.overloads_shed == 1
            finally:
                parked.set_result(None)
                # close() enqueues a stop sentinel; make room for it in
                # the still-saturated bounded queue.
                while not server._queue.empty():
                    server._queue.get_nowait()
                await server.close()

        asyncio.run(scenario())


class _StuckThread:
    name = "repro-serve-client"

    def join(self, timeout=None):
        pass

    def is_alive(self):
        return True


class TestClientThreadLeak:
    def test_stop_loop_reports_a_leaked_io_thread(self, caplog):
        client = Client.__new__(Client)
        client._loop = asyncio.new_event_loop()
        client._thread = _StuckThread()
        with caplog.at_level(logging.WARNING, logger="repro.serve.client"):
            stopped = client._stop_loop()
        assert stopped is False
        assert "did not stop within" in caplog.text
        client._loop.close()

    def test_close_is_idempotent_after_loop_teardown(self):
        # An explicit close() after a `with` block must repeat the
        # verdict, not raise on the already-closed event loop.
        client = Client.__new__(Client)
        client._closed = True
        client._stopped = True
        assert client.close() is True

    def test_stop_loop_true_when_thread_exits(self):
        class DeadThread(_StuckThread):
            def is_alive(self):
                return False

        client = Client.__new__(Client)
        client._loop = asyncio.new_event_loop()
        client._thread = DeadThread()
        assert client._stop_loop() is True
        assert client._loop.is_closed()
