"""End-to-end serving tests over the in-memory loopback transport.

The correctness bar for the serving layer: detections observed over the
wire must equal an in-process run of the same rules over the same
stream — for every backend (plain, sharded, durable) — and the
resume-from-seq contract must hold across client crashes and server
restarts (durable backend, WAL tail).
"""

import asyncio
import random

import pytest

from repro import Engine, Observation
from repro.apps import containment_rule, location_rule
from repro.core.detector import FunctionRegistry
from repro.core.sharding import ShardedEngine
from repro.obs import MetricsRegistry, rollup
from repro.resilience.durability import DurableEngine
from repro.serve import (
    Ack,
    AsyncClient,
    Bye,
    CepServer,
    ClientError,
    ErrorFrame,
    FrameDecoder,
    Hello,
    RetryConfig,
    ServeConfig,
    SlowConsumerPolicy,
    Submit,
    Subscribe,
    Welcome,
    encode_frame,
    loopback_connector,
)
from repro.simulator import PackingConfig, simulate_packing
from repro.store import RfidStore


def packing_stream(cases=5, seed=3):
    trace = simulate_packing(PackingConfig(cases=cases), rng=random.Random(seed))
    return trace.observations


def build_rules():
    return [containment_rule(), location_rule()]


def plain_engine():
    return Engine(build_rules(), store=RfidStore(), functions=FunctionRegistry())


def expected_detections(stream):
    return canon_engine(plain_engine().run(stream))


def canon_engine(detections):
    return [
        (d.rule.rule_id, round(d.time, 9), tuple(sorted(d.bindings.items())))
        for d in detections
    ]


def canon_frames(frames):
    return [
        (f.rule, round(f.time, 9), tuple(sorted(f.bindings.items())))
        for f in frames
    ]


async def eventually(predicate, timeout=5.0, message="condition not reached"):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError(message)
        await asyncio.sleep(0.01)


class Raw:
    """A frame-level loopback client for poking at the protocol directly."""

    def __init__(self, server, max_buffer=None):
        if max_buffer is None:
            self.reader, self.writer = server.connect_loopback()
        else:
            self.reader, self.writer = server.connect_loopback(max_buffer)
        self._decoder = FrameDecoder()
        self._frames = []

    async def send(self, frame):
        self.writer.write(encode_frame(frame))
        await self.writer.drain()

    async def recv(self, timeout=2.0):
        while not self._frames:
            data = await asyncio.wait_for(self.reader.read(65536), timeout)
            if not data:
                raise AssertionError("peer closed while waiting for a frame")
            self._frames.extend(self._decoder.feed(data))
        return self._frames.pop(0)

    async def recv_until(self, frame_type, timeout=2.0):
        while True:
            frame = await self.recv(timeout)
            if isinstance(frame, frame_type):
                return frame


def make_backend(kind, tmp_path):
    """Returns ``(backend, closer)`` for one parametrized backend kind."""
    if kind == "plain":
        return plain_engine(), lambda: None
    if kind == "sharded":
        backend = ShardedEngine(
            build_rules(),
            max_shards=3,
            store=RfidStore(),
            functions=FunctionRegistry(),
        )
        return backend, lambda: None
    durable = DurableEngine(plain_engine, str(tmp_path / "durable"))
    return durable, durable.close


class TestWireEquivalence:
    @pytest.mark.parametrize("kind", ["plain", "sharded", "durable"])
    def test_detections_over_wire_match_in_process(self, kind, tmp_path):
        stream = packing_stream()
        expected = expected_detections(stream)
        assert expected  # the workload must actually detect something

        async def scenario():
            backend, closer = make_backend(kind, tmp_path)
            try:
                async with CepServer(backend) as server:
                    client = AsyncClient(
                        loopback_connector(server), subscribe=True, batch_size=7
                    )
                    async with client:
                        await client.submit_many(stream)
                        await client.flush(timeout=10)
                        await eventually(
                            lambda: len(client.detections) >= len(expected)
                        )
                        return canon_frames(client.detections), server.stats
            finally:
                closer()

        got, stats = asyncio.run(scenario())
        assert got == expected
        assert stats.submitted == len(stream)
        assert stats.duplicates_skipped == 0

    def test_separate_subscriber_sees_ingestors_detections(self):
        stream = packing_stream()
        expected = expected_detections(stream)

        async def scenario():
            async with CepServer(plain_engine()) as server:
                watcher = AsyncClient(
                    loopback_connector(server), client_id="watcher", subscribe=True
                )
                ingest = AsyncClient(
                    loopback_connector(server), client_id="ingest", batch_size=16
                )
                async with watcher, ingest:
                    await ingest.submit_many(stream)
                    await ingest.flush(timeout=10)
                    await eventually(
                        lambda: len(watcher.detections) >= len(expected)
                    )
                    return (
                        canon_frames(watcher.detections),
                        list(ingest.detections),
                    )

        watched, ingested = asyncio.run(scenario())
        assert watched == expected
        assert ingested == []  # no subscription, no pushes

    def test_rule_filter_limits_pushes(self):
        stream = packing_stream()
        expected = expected_detections(stream)
        rule_ids = {entry[0] for entry in expected}
        assert len(rule_ids) > 1, "need a multi-rule workload to filter"
        chosen = sorted(rule_ids)[0]

        async def scenario():
            async with CepServer(plain_engine()) as server:
                client = AsyncClient(
                    loopback_connector(server),
                    subscribe=True,
                    rules=[chosen],
                    batch_size=8,
                )
                async with client:
                    await client.submit_many(stream)
                    await client.flush(timeout=10)
                    wanted = [e for e in expected if e[0] == chosen]
                    await eventually(
                        lambda: len(client.detections) >= len(wanted)
                    )
                    await asyncio.sleep(0.05)  # would catch over-delivery
                    return canon_frames(client.detections)

        got = asyncio.run(scenario())
        assert got == [entry for entry in expected if entry[0] == chosen]


class TestProtocolEnforcement:
    def test_hello_must_come_first(self):
        async def scenario():
            async with CepServer(plain_engine()) as server:
                raw = Raw(server)
                await raw.send(Submit(seq=0, observation=Observation("r", "o", 0)))
                frame = await raw.recv()
                assert isinstance(frame, ErrorFrame)
                assert frame.code == "protocol"

        asyncio.run(scenario())

    def test_version_mismatch_refused(self):
        async def scenario():
            async with CepServer(plain_engine()) as server:
                raw = Raw(server)
                await raw.send(Hello(client_id="c", version=99))
                frame = await raw.recv()
                assert isinstance(frame, ErrorFrame)
                assert frame.code == "version"

        asyncio.run(scenario())

    def test_second_session_for_live_client_supersedes_first(self):
        # A client that died without a FIN (power loss, partition) leaves
        # its old session dangling until TCP times out; its reconnect
        # must not be refused behind that corpse — newest wins.
        async def scenario():
            async with CepServer(plain_engine()) as server:
                first = Raw(server)
                await first.send(Hello(client_id="dup"))
                assert isinstance(await first.recv(), Welcome)
                await first.send(Submit(seq=0, observation=Observation("r", "a", 0)))
                await first.recv_until(Ack)
                second = Raw(server)
                await second.send(Hello(client_id="dup"))
                welcome = await second.recv()
                assert isinstance(welcome, Welcome)
                # The frontier carries over: seq 0 is already applied.
                assert welcome.next_seq == 1
                assert server.stats.sessions_superseded == 1
                # The stale session is told why and then closed.
                frame = await first.recv_until(ErrorFrame)
                assert frame.code == "superseded"
                await eventually(lambda: server.stats.sessions_active == 1)
                # The survivor keeps working.
                await second.send(Submit(seq=1, observation=Observation("r", "b", 1)))
                ack = await second.recv_until(Ack)
                assert ack.seq == 1

        asyncio.run(scenario())

    def test_sequence_gap_errors_and_disconnects(self):
        async def scenario():
            async with CepServer(plain_engine()) as server:
                raw = Raw(server)
                await raw.send(Hello(client_id="gap"))
                assert isinstance(await raw.recv(), Welcome)
                await raw.send(Submit(seq=5, observation=Observation("r", "o", 0)))
                frame = await raw.recv_until(ErrorFrame)
                assert frame.code == "sequence"
                await eventually(lambda: server.stats.sessions_active == 0)
                assert server.stats.submitted == 0

        asyncio.run(scenario())

    def test_duplicates_below_frontier_are_skipped(self):
        async def scenario():
            async with CepServer(plain_engine()) as server:
                raw = Raw(server)
                await raw.send(Hello(client_id="dups"))
                welcome = await raw.recv()
                assert welcome.next_seq == 0
                await raw.send(Submit(seq=0, observation=Observation("r", "a", 0)))
                ack = await raw.recv_until(Ack)
                assert ack.seq == 0
                # Retransmit seq 0 (as a crashed client would), then continue.
                await raw.send(Submit(seq=0, observation=Observation("r", "a", 0)))
                await raw.send(Submit(seq=1, observation=Observation("r", "b", 1)))
                ack = await raw.recv_until(Ack)
                assert ack.seq == 1
                assert server.stats.duplicates_skipped == 1
                assert server.stats.submitted == 2
                assert server.client_frontier("dups") == 1

        asyncio.run(scenario())


class TestResume:
    def test_client_crash_and_resume_is_exactly_once(self):
        stream = packing_stream(cases=6, seed=11)
        expected = expected_detections(stream)
        half = len(stream) // 2

        async def scenario():
            async with CepServer(plain_engine()) as server:
                first = AsyncClient(
                    loopback_connector(server),
                    client_id="station-1",
                    subscribe=True,
                    batch_size=4,
                )
                await first.connect()
                await first.submit_many(stream[:half])
                await first.drain(timeout=10)
                early = list(first.detections)
                acked = first.last_acked
                assert acked == half - 1
                # The crash: the transport dies without a BYE.
                first._teardown_transport()
                await eventually(lambda: server.stats.sessions_active == 0)

                # New client life; it persisted nothing but its last ack
                # (and here even under-reports it — the server record wins).
                second = AsyncClient(
                    loopback_connector(server),
                    client_id="station-1",
                    subscribe=True,
                    resume_from=acked - 2,
                    batch_size=4,
                )
                async with second:
                    assert second.last_acked == acked  # learned from WELCOME
                    await second.submit_many(stream[half:])
                    await second.flush(timeout=10)
                    remaining = len(expected) - len(early)
                    await eventually(
                        lambda: len(second.detections) >= remaining
                    )
                    assert server.stats.duplicates_skipped == 0
                    assert server.stats.submitted == len(stream)
                    return canon_frames(early) + canon_frames(second.detections)

        assert asyncio.run(scenario()) == expected

    def test_durable_server_restart_resume_via_wal(self, tmp_path):
        stream = packing_stream(cases=6, seed=5)
        expected = expected_detections(stream)
        directory = str(tmp_path / "serve-durable")
        half = len(stream) // 2

        async def first_life():
            durable = DurableEngine(plain_engine, directory)
            try:
                async with CepServer(durable) as server:
                    client = AsyncClient(
                        loopback_connector(server),
                        client_id="station-1",
                        subscribe=True,
                        batch_size=5,
                    )
                    async with client:
                        await client.submit_many(stream[:half])
                        await client.drain(timeout=10)
                        # Acked ⇒ in the WAL: the durable backend appends
                        # before detecting, and the server acks after.
                        return client.last_acked, list(client.detections)
            finally:
                durable.close()

        async def second_life(resume_from, already):
            durable, report = DurableEngine.recover(plain_engine, directory)
            assert report.replayed_records >= half
            try:
                async with CepServer(durable) as server:
                    client = AsyncClient(
                        loopback_connector(server),
                        client_id="station-1",
                        subscribe=True,
                        resume_from=resume_from,
                        batch_size=5,
                    )
                    async with client:
                        # The restarted server rebuilt this client's
                        # frontier from WAL provenance; here it agrees
                        # with the client's own persisted ack.
                        assert server.client_frontier("station-1") == resume_from
                        assert client.last_acked == resume_from
                        await client.submit_many(stream[half:])
                        await client.flush(timeout=10)
                        remaining = len(expected) - already
                        await eventually(
                            lambda: len(client.detections) >= remaining
                        )
                        assert server.stats.duplicates_skipped == 0
                        return list(client.detections)
            finally:
                durable.close()

        acked, early = asyncio.run(first_life())
        assert acked == half - 1
        late = asyncio.run(second_life(acked, len(early)))
        assert canon_frames(early) + canon_frames(late) == expected

    def test_durable_restart_with_lost_acks_is_exactly_once(self, tmp_path):
        """Server crashes after WAL-appending observations whose ACKs
        never reached the client.

        The reconnecting client then under-reports ``resume_from`` and
        resends observations the WAL already holds; the restarted server
        must recognise them via the frontier it rebuilt from WAL
        provenance — not apply them a second time.
        """
        stream = packing_stream(cases=6, seed=5)
        directory = str(tmp_path / "serve-durable-lostack")
        half = len(stream) // 2
        lost = 3  # applied + logged, but their ACKs never arrive
        assert len(stream) > half + lost

        async def scenario():
            current = {}

            async def connector():
                return current["server"].connect_loopback()

            durable = DurableEngine(plain_engine, directory)
            server = CepServer(durable)
            await server.start()
            current["server"] = server
            client = AsyncClient(connector, client_id="station-1", batch_size=1)
            await client.connect()
            await client.submit_many(stream[:half])
            await client.drain(timeout=10)
            assert client.last_acked == half - 1
            # Ack loss: the client stops reading; the next submissions
            # are applied and WAL-appended, but their acks are lost.
            client._receiver.cancel()
            for observation in stream[half : half + lost]:
                await client.submit(observation)
            await eventually(
                lambda: server.client_frontier("station-1") == half + lost - 1
            )
            # The crash: both the transport and the server process die.
            client._teardown_transport()
            await server.close()
            durable.close()

            durable2, _report = DurableEngine.recover(plain_engine, directory)
            # The frontier was rebuilt from WAL provenance — ahead of the
            # client's own ack record.
            assert durable2.client_frontiers == {"station-1": half + lost - 1}
            server2 = CepServer(durable2)
            await server2.start()
            current["server"] = server2
            try:
                # Reconnect resends the unacked tail; the server must
                # recognise it as already applied, not apply it again.
                await client.connect()
                assert client.last_acked == half + lost - 1
                await client.submit_many(stream[half + lost :])
                await client.flush(timeout=10)
                assert server2.stats.submitted == len(stream) - half - lost
                await client.close()
                return durable2.next_seq
            finally:
                await server2.close()
                durable2.close()

        next_seq = asyncio.run(scenario())
        # One WAL record per observation plus the flush — a duplicate
        # application would have appended extra records.
        assert next_seq == len(stream) + 1

    def test_connect_gives_up_after_retries(self):
        async def refuse():
            raise ConnectionRefusedError("nobody home")

        async def scenario():
            client = AsyncClient(
                refuse,
                retry=RetryConfig(max_attempts=3, backoff_base=0.001),
            )
            with pytest.raises(ClientError, match="3 attempts"):
                await client.connect()

        asyncio.run(scenario())


class TestClientRecordCap:
    def test_idle_client_records_are_bounded(self):
        # Auto-id clients get a fresh id per process; without a cap the
        # server would keep one frontier record per dead client forever.
        async def scenario():
            config = ServeConfig(client_record_cap=3)
            async with CepServer(plain_engine(), config=config) as server:
                for index in range(6):
                    raw = Raw(server)
                    await raw.send(Hello(client_id=f"ephemeral-{index}"))
                    assert isinstance(await raw.recv(), Welcome)
                    await raw.send(Bye())
                    await eventually(lambda: server.stats.sessions_active == 0)
                summary = server.session_summary()
                assert summary["client_records"] == 3
                assert server.stats.client_records_evicted == 3

        asyncio.run(scenario())

    def test_exactly_cap_records_keeps_all(self):
        # The boundary itself: cap records is *at* the bound, not past
        # it — nothing may be evicted until record cap+1 arrives.
        async def scenario():
            config = ServeConfig(client_record_cap=3)
            async with CepServer(plain_engine(), config=config) as server:
                for index in range(3):
                    raw = Raw(server)
                    await raw.send(Hello(client_id=f"edge-{index}"))
                    assert isinstance(await raw.recv(), Welcome)
                    await raw.send(Bye())
                    await eventually(lambda: server.stats.sessions_active == 0)
                assert server.session_summary()["client_records"] == 3
                assert server.stats.client_records_evicted == 0
                # cap+1: exactly one eviction, and it is the
                # least-recently-connected record.
                raw = Raw(server)
                await raw.send(Hello(client_id="edge-3"))
                assert isinstance(await raw.recv(), Welcome)
                assert server.session_summary()["client_records"] == 3
                assert server.stats.client_records_evicted == 1
                assert "edge-0" not in server._clients
                assert "edge-3" in server._clients

        asyncio.run(scenario())

    def test_live_sessions_are_never_evicted_even_above_cap(self):
        # Every record pinned by a live connection survives, even when
        # the live sessions alone exceed the cap — eviction only ever
        # considers idle records.
        async def scenario():
            config = ServeConfig(client_record_cap=2)
            async with CepServer(plain_engine(), config=config) as server:
                raws = []
                for index in range(4):
                    raw = Raw(server)
                    await raw.send(Hello(client_id=f"live-{index}"))
                    assert isinstance(await raw.recv(), Welcome)
                    raws.append(raw)
                assert server.session_summary()["client_records"] == 4
                assert server.stats.client_records_evicted == 0
                assert all(
                    server._clients[f"live-{index}"].active_session
                    is not None
                    for index in range(4)
                )
                # Once they disconnect they become candidates: the next
                # handshake prunes the now-idle surplus down to the cap.
                for raw in raws:
                    await raw.send(Bye())
                await eventually(lambda: server.stats.sessions_active == 0)
                raw = Raw(server)
                await raw.send(Hello(client_id="latecomer"))
                assert isinstance(await raw.recv(), Welcome)
                assert server.session_summary()["client_records"] == 2
                assert "latecomer" in server._clients

        asyncio.run(scenario())


class TestSlowConsumers:
    def _congest(self, policy):
        """Run a never-reading subscriber against a small push buffer."""
        stream = packing_stream()

        async def scenario():
            config = ServeConfig(push_queue=4, push_policy=policy)
            async with CepServer(plain_engine(), config=config) as server:
                slow = Raw(server, max_buffer=64)
                await slow.send(Hello(client_id="slow"))
                assert isinstance(await slow.recv(), Welcome)
                await slow.send(Subscribe())
                await asyncio.sleep(0)  # let the subscription register
                async with AsyncClient(
                    loopback_connector(server), client_id="ingest", batch_size=16
                ) as ingest:
                    await ingest.submit_many(stream)
                    await ingest.flush(timeout=10)
                summary = server.session_summary()
                return server.stats, summary

        return asyncio.run(scenario())

    def test_drop_policy_sheds_oldest_and_keeps_session(self):
        stats, summary = self._congest(SlowConsumerPolicy.DROP)
        assert stats.detections_dropped > 0
        assert stats.disconnects == 0
        clients = [entry["client"] for entry in summary["sessions"]]
        assert "slow" in clients  # still connected, just shedding

    def test_disconnect_policy_closes_the_session(self):
        stats, summary = self._congest(SlowConsumerPolicy.DISCONNECT)
        assert stats.disconnects >= 1
        clients = [entry["client"] for entry in summary["sessions"]]
        assert "slow" not in clients

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="bad slow-consumer policy"):
            SlowConsumerPolicy.coerce("shrug")


class TestServeMetrics:
    def test_instruments_mirror_stats(self):
        stream = packing_stream()
        expected = expected_detections(stream)
        registry = MetricsRegistry()

        async def scenario():
            server = CepServer(plain_engine(), metrics=registry)
            async with server:
                client = AsyncClient(
                    loopback_connector(server), subscribe=True, batch_size=8
                )
                async with client:
                    await client.submit_many(stream)
                    await client.flush(timeout=10)
                    await eventually(
                        lambda: len(client.detections) >= len(expected)
                    )
                return server.stats

        stats = asyncio.run(scenario())
        assert rollup(registry, "rceda_serve_submitted_total") == len(stream)
        assert (
            rollup(registry, "rceda_serve_detections_pushed_total")
            == stats.detections_pushed
            == len(expected)
        )
        assert rollup(registry, "rceda_serve_frames_total") == (
            stats.frames_in + stats.frames_out
        )
        assert rollup(registry, "rceda_serve_bytes_total") == (
            stats.bytes_in + stats.bytes_out
        )
        assert rollup(registry, "rceda_serve_acks_total") == stats.acks_sent
        assert rollup(registry, "rceda_serve_sessions_active") == 0


class TestAckCoalescing:
    def test_ack_ignoring_client_gets_cumulative_ack(self):
        async def scenario():
            async with CepServer(plain_engine()) as server:
                raw = Raw(server)
                await raw.send(Hello(client_id="burst"))
                assert isinstance(await raw.recv(), Welcome)
                for seq in range(50):
                    await raw.send(
                        Submit(seq=seq, observation=Observation("r", f"o{seq}", seq))
                    )
                await eventually(lambda: server.client_frontier("burst") == 49)
                final = await raw.recv_until(Ack)
                while True:  # drain any interleaved smaller acks
                    try:
                        final = await raw.recv_until(Ack, timeout=0.1)
                    except asyncio.TimeoutError:
                        break
                assert final.seq == 49
                # Coalescing: far fewer ack frames than submissions.
                assert server.stats.acks_sent <= 50

        asyncio.run(scenario())
