"""Wire-protocol tests: frame round-trips, corruption, incremental decode."""

import json
import random
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Observation
from repro.serve import (
    MAX_FRAME_BYTES,
    Ack,
    Batch,
    Bye,
    DetectionFrame,
    ErrorFrame,
    Flush,
    FrameDecoder,
    FrameError,
    Hello,
    Ping,
    Pong,
    Submit,
    Subscribe,
    Welcome,
    decode_frame,
    encode_frame,
    get_codec,
)
from repro.serve.protocol import (
    decode_observation_payload,
    encode_observation_payload,
)

OBS = Observation("reader-1", "urn:epc:item:1", 12.5)

ALL_FRAMES = [
    Hello(client_id="c1", resume_from=41),
    Welcome(session_id="s9", next_seq=42),
    Submit(seq=7, observation=OBS),
    Batch(seq=3, observations=(OBS, Observation("r2", "o2", 13.0, {"k": 1}))),
    Ack(seq=99),
    Flush(seq=100),
    Subscribe(rules=("r1", "r2")),
    Subscribe(rules=None),
    DetectionFrame(rule="r1", time=20.0, bindings={"o1": "x"}, seq=5, ordinal=2),
    ErrorFrame(code="sequence", message="got 7, expected 3"),
    ErrorFrame(code="overloaded", message="queue full", retry_after=2.5),
    Ping(token=17),
    Pong(token=17),
    Bye(),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "frame", ALL_FRAMES, ids=lambda f: type(f).__name__
    )
    def test_every_frame_type_round_trips(self, frame):
        data = encode_frame(frame)
        decoded, consumed = decode_frame(data)
        assert decoded == frame
        assert consumed == len(data)

    def test_observation_extra_survives(self):
        observation = Observation("r", "o", 1.0, {"temp": 21.5})
        payload = encode_observation_payload(observation)
        back = decode_observation_payload(payload)
        assert back.extra == {"temp": 21.5}
        assert back.reader == "r" and back.timestamp == 1.0

    def test_frames_concatenate(self):
        blob = b"".join(encode_frame(frame) for frame in ALL_FRAMES)
        out = []
        while blob:
            frame, consumed = decode_frame(blob)
            out.append(frame)
            blob = blob[consumed:]
        assert out == ALL_FRAMES

    @given(
        seq=st.integers(min_value=0, max_value=2**53),
        reader=st.text(min_size=1, max_size=20),
        obj=st.text(min_size=1, max_size=20),
        timestamp=st.floats(
            allow_nan=False, allow_infinity=False, width=32
        ),
    )
    def test_submit_round_trips_any_observation(
        self, seq, reader, obj, timestamp
    ):
        frame = Submit(seq=seq, observation=Observation(reader, obj, timestamp))
        decoded, _ = decode_frame(encode_frame(frame))
        assert decoded == frame


class TestCorruption:
    def test_crc_mismatch_rejected(self):
        data = bytearray(encode_frame(Ack(seq=5)))
        data[6] ^= 0xFF  # flip a payload bit; the CRC no longer matches
        with pytest.raises(FrameError, match="CRC"):
            decode_frame(bytes(data))

    def test_unknown_frame_type_rejected(self):
        body = bytes((0x7F,)) + b"{}"
        data = (
            struct.pack("!I", len(body))
            + body
            + struct.pack("!I", __import__("zlib").crc32(body))
        )
        with pytest.raises(FrameError, match="unknown frame type"):
            decode_frame(data)

    def test_truncated_header_rejected(self):
        with pytest.raises(FrameError, match="incomplete"):
            decode_frame(b"\x00\x00")

    def test_truncated_body_rejected(self):
        data = encode_frame(Bye())
        with pytest.raises(FrameError, match="incomplete"):
            decode_frame(data[:-3])

    def test_bogus_length_rejected(self):
        data = struct.pack("!I", MAX_FRAME_BYTES + 1) + b"\x00" * 16
        with pytest.raises(FrameError, match="out of bounds"):
            decode_frame(data)

    def test_oversize_frame_refused_at_encode(self):
        frame = ErrorFrame(code="x", message="y" * (MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError, match="MAX_FRAME_BYTES"):
            encode_frame(frame)

    def test_unserializable_payload_refused(self):
        frame = DetectionFrame(rule="r", time=0.0, bindings={"bad": object()})
        with pytest.raises(FrameError, match="not JSON-serializable"):
            encode_frame(frame)

    @pytest.mark.parametrize("value", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_floats_refused_at_encode(self, value):
        # json.dumps would emit NaN/Infinity tokens only Python's parser
        # accepts, breaking the debuggable-JSON wire contract for other
        # peers — reject them before they reach the wire.
        frame = Submit(seq=0, observation=Observation("r", "o", value))
        with pytest.raises(FrameError, match="not JSON-serializable"):
            encode_frame(frame)

    def test_malformed_payload_rejected(self):
        body = bytes((Ack.TYPE,)) + json.dumps({"wrong": 1}).encode()
        data = (
            struct.pack("!I", len(body))
            + body
            + struct.pack("!I", __import__("zlib").crc32(body))
        )
        with pytest.raises(FrameError, match="malformed Ack"):
            decode_frame(data)

    def test_malformed_observation_payload_rejected(self):
        with pytest.raises(FrameError, match="malformed observation"):
            decode_observation_payload({"r": "only-a-reader"})


class TestFrameDecoder:
    def test_byte_at_a_time(self):
        blob = b"".join(encode_frame(frame) for frame in ALL_FRAMES)
        decoder = FrameDecoder()
        out = []
        for index in range(len(blob)):
            out.extend(decoder.feed(blob[index : index + 1]))
        assert out == ALL_FRAMES
        assert decoder.frames_decoded == len(ALL_FRAMES)
        assert decoder.bytes_consumed == len(blob)
        assert decoder.pending_bytes == 0

    def test_many_frames_in_one_chunk(self):
        blob = b"".join(encode_frame(Ack(seq=i)) for i in range(50))
        decoder = FrameDecoder()
        frames = list(decoder.feed(blob))
        assert [frame.seq for frame in frames] == list(range(50))

    def test_partial_frame_is_buffered_not_raised(self):
        data = encode_frame(Welcome(session_id="s", next_seq=3))
        decoder = FrameDecoder()
        assert list(decoder.feed(data[:5])) == []
        assert decoder.pending_bytes == 5
        assert list(decoder.feed(data[5:])) == [
            Welcome(session_id="s", next_seq=3)
        ]

    def test_corruption_raises_mid_stream(self):
        good = encode_frame(Ack(seq=1))
        bad = bytearray(encode_frame(Ack(seq=2)))
        bad[-1] ^= 0xFF
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            list(decoder.feed(good + bytes(bad)))

    @given(st.integers(min_value=1, max_value=64))
    def test_arbitrary_chunking(self, chunk):
        blob = b"".join(encode_frame(frame) for frame in ALL_FRAMES)
        decoder = FrameDecoder()
        out = []
        for start in range(0, len(blob), chunk):
            out.extend(decoder.feed(blob[start : start + chunk]))
        assert out == ALL_FRAMES


class TestRetryAfterCompat:
    def test_absent_retry_after_stays_absent_on_the_wire(self):
        # v1 peers parse the ERROR payload as a closed two-key dict;
        # the hint must not appear at all when unset.
        frame = ErrorFrame(code="frame", message="bad crc")
        payload = json.loads(encode_frame(frame)[5:-4].decode())
        assert "retry_after" not in payload
        decoded, _ = decode_frame(encode_frame(frame))
        assert decoded.retry_after is None

    def test_retry_after_round_trips(self):
        frame = ErrorFrame(code="overloaded", message="busy", retry_after=0.25)
        decoded, _ = decode_frame(encode_frame(frame))
        assert decoded.retry_after == 0.25


def _ingest_stream(codec_name, observations, batch=5):
    """A realistic client byte stream: HELLO, batches, FLUSH, BYE."""
    codec = get_codec(codec_name)
    blob = bytearray(encode_frame(Hello(client_id="frag", resume_from=-1)))
    seq = 0
    for start in range(0, len(observations), batch):
        chunk = observations[start : start + batch]
        blob += codec.encode_batch(seq, chunk)
        seq += len(chunk)
    blob += encode_frame(Flush(seq=seq))
    blob += encode_frame(Bye())
    return bytes(blob)


def _decoded_observations(frames):
    out = []
    for frame in frames:
        if isinstance(frame, Submit):
            out.append(frame.observation)
        elif isinstance(frame, Batch):
            out.extend(frame.observations)
    return out


_FRAG_OBSERVATIONS = [
    Observation(f"reader-{i % 3}", f"urn:epc:item:{i}", float(i)) for i in range(23)
] + [
    # One batch the binary codec cannot pack — exercises the JSON
    # fallback frame inside a negotiated-binary stream.
    Observation("reader-x", "urn:epc:item:x", 99.0, {"temp": 21.5})
]


class TestAdversarialFragmentation:
    """The decoder must survive any split the network can produce.

    This is the unit-level face of the chaos drill: `ChaosProxy`
    fragments live traffic at arbitrary byte offsets, and every split
    must yield the same frames — or a clean `FrameError`, never a
    wrong frame.
    """

    @pytest.mark.parametrize("codec_name", ["json", "binary"])
    def test_byte_at_a_time(self, codec_name):
        blob = _ingest_stream(codec_name, _FRAG_OBSERVATIONS)
        decoder = FrameDecoder()
        frames = []
        for index in range(len(blob)):
            frames.extend(decoder.feed(blob[index : index + 1]))
        assert _decoded_observations(frames) == _FRAG_OBSERVATIONS
        assert decoder.pending_bytes == 0

    @pytest.mark.parametrize("codec_name", ["json", "binary"])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_seeded_random_splits(self, codec_name, seed):
        blob = _ingest_stream(codec_name, _FRAG_OBSERVATIONS)
        rng = random.Random(seed)
        decoder = FrameDecoder()
        frames = []
        start = 0
        while start < len(blob):
            end = min(len(blob), start + rng.randint(1, 97))
            frames.extend(decoder.feed(blob[start:end]))
            start = end
        assert _decoded_observations(frames) == _FRAG_OBSERVATIONS
        assert decoder.pending_bytes == 0

    @pytest.mark.parametrize("codec_name", ["json", "binary"])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_corrupt_frame_mid_stream_never_decodes_wrong(
        self, codec_name, seed
    ):
        # Flip one payload byte of a mid-stream frame, then feed the
        # whole blob in random fragments: every frame decoded before
        # the corruption must be genuine, and the corrupt frame must
        # surface as FrameError — not as an altered observation.
        rng = random.Random(seed)
        codec = get_codec(codec_name)
        pieces = [encode_frame(Hello(client_id="frag", resume_from=-1))]
        seq = 0
        for start in range(0, len(_FRAG_OBSERVATIONS), 5):
            chunk = _FRAG_OBSERVATIONS[start : start + 5]
            pieces.append(codec.encode_batch(seq, chunk))
            seq += len(chunk)
        victim = rng.randrange(1, len(pieces))
        corrupted = bytearray(pieces[victim])
        # Flip inside the body (skip the 4-byte length prefix and the
        # type byte) so the length field stays sane and the CRC check
        # is what must catch it.
        corrupted[rng.randrange(5, len(corrupted) - 4)] ^= 0xFF
        pieces[victim] = bytes(corrupted)
        blob = b"".join(pieces)
        good_prefix = _decoded_observations(
            FrameDecoder().feed(b"".join(pieces[:victim]))
        )
        decoder = FrameDecoder()
        frames = []
        start = 0
        with pytest.raises(FrameError):
            while start < len(blob):
                end = min(len(blob), start + rng.randint(1, 97))
                frames.extend(decoder.feed(blob[start:end]))
                start = end
        seen = _decoded_observations(frames)
        assert seen == good_prefix[: len(seen)]
        for observation in seen:
            assert observation in _FRAG_OBSERVATIONS
