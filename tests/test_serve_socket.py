"""Real-socket smoke tests: ``python -m repro serve`` + the sync client.

These cross a process boundary and open real TCP ports, so they carry
the ``slow`` marker (run by CI's slow job; excluded from the default
``pytest -q`` run by ``addopts``).
"""

import os
import re
import subprocess
import sys
import time

import pytest

from repro import Engine, Observation
from repro.lang import parse_program

RULES_TEXT = (
    'DEFINE E1 = observation("r1", o1, t1)\n'
    'DEFINE E2 = observation("r2", o2, t2)\n'
    "CREATE RULE contain, containment ON "
    "TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec) IF true "
    "DO BULK INSERT INTO CONTAINMENT VALUES (o1, o2, t2, 'UC')\n"
)


def sample_stream():
    stream = [Observation("r1", f"item-{k}", 0.2 * k) for k in range(6)]
    stream.append(Observation("r2", "case-1", 12.0))
    return stream


def expected_detections():
    from repro.core.detector import FunctionRegistry
    from repro.store import RfidStore

    program = parse_program(RULES_TEXT)
    engine = Engine(
        program.rules, store=RfidStore(), functions=FunctionRegistry()
    )
    return [
        (d.rule.rule_id, round(d.time, 9), tuple(sorted(d.bindings.items())))
        for d in engine.run(sample_stream())
    ]


@pytest.fixture()
def serve_process(tmp_path):
    """A ``python -m repro serve`` subprocess on an ephemeral port."""
    rules_path = tmp_path / "rules.txt"
    rules_path.write_text(RULES_TEXT)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--rules",
            str(rules_path),
            "--port",
            "0",
            "--max-seconds",
            "60",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        line = process.stdout.readline()
        match = re.search(r"serving on .*:(\d+)", line)
        assert match, f"no bound-port banner, got: {line!r}"
        yield process, int(match.group(1))
    finally:
        process.terminate()
        process.wait(timeout=10)


@pytest.mark.slow
class TestSocketSmoke:
    def test_round_trip_matches_in_process_run(self, serve_process):
        from repro.serve import Client

        _process, port = serve_process
        expected = expected_detections()
        assert expected
        with Client(host="127.0.0.1", port=port, subscribe=True) as client:
            client.submit_many(sample_stream())
            client.flush(timeout=30)
            deadline = time.monotonic() + 20
            while (
                len(client.detections()) < len(expected)
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            got = [
                (f.rule, round(f.time, 9), tuple(sorted(f.bindings.items())))
                for f in client.detections()
            ]
        assert got == expected

    def test_sync_client_resume_across_lives(self, serve_process):
        from repro.serve import Client

        _process, port = serve_process
        stream = sample_stream()
        first = Client(
            host="127.0.0.1", port=port, client_id="sync-station", batch_size=2
        )
        try:
            first.submit_many(stream[:3])
            first.drain(timeout=30)
            acked = first.last_acked
            assert acked == 2
        finally:
            first.close()
        with Client(
            host="127.0.0.1",
            port=port,
            client_id="sync-station",
            subscribe=True,
            resume_from=acked,
        ) as second:
            assert second.last_acked == acked
            second.submit_many(stream[3:])
            second.flush(timeout=30)
            deadline = time.monotonic() + 20
            while not second.detections() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert second.detections()
