"""Tests for sharded detection: placement, routing, and equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine, Observation, Var, Within, obs
from repro.core.expressions import Seq, TSeq, TSeqPlus
from repro.core.sharding import CATCH_ALL, ShardedEngine, rule_reader_literals
from repro.rules import Rule


def containment(rule_id, item_reader, case_reader):
    return Rule(
        rule_id,
        rule_id,
        TSeq(
            TSeqPlus(obs(item_reader, Var("o1")), 0.1, 1.0),
            obs(case_reader, Var("o2")),
            10,
            20,
        ),
    )


class TestPlacement:
    def test_reader_literals_extracted(self):
        rule = containment("r", "a", "b")
        assert rule_reader_literals(rule) == {"a", "b"}

    def test_wildcard_rule_has_no_literals(self):
        rule = Rule("w", "w", obs(Var("r"), Var("o")))
        assert rule_reader_literals(rule) is None

    def test_disjoint_rules_spread_across_shards(self):
        rules = [containment(f"r{i}", f"a{i}", f"b{i}") for i in range(4)]
        sharded = ShardedEngine(rules, max_shards=4)
        placement = sharded.placement()
        assert len(placement) == 4
        assert sorted(sum(placement.values(), [])) == [f"r{i}" for i in range(4)]

    def test_rules_sharing_a_reader_colocate(self):
        rules = [
            containment("r1", "a", "shared"),
            containment("r2", "shared", "c"),
            containment("r3", "x", "y"),
        ]
        sharded = ShardedEngine(rules, max_shards=4)
        placement = sharded.placement()
        together = next(ids for ids in placement.values() if "r1" in ids)
        assert "r2" in together and "r3" not in together

    def test_wildcards_go_to_catch_all(self):
        rules = [
            containment("r1", "a", "b"),
            Rule("w", "w", obs(Var("r"), Var("o"))),
        ]
        sharded = ShardedEngine(rules, max_shards=2)
        assert sharded.placement()[CATCH_ALL] == ["w"]

    def test_group_members_enable_placement(self):
        rule = Rule(
            "g", "g", Within(Seq(obs(None, Var("o"), group="dock"),
                                 obs("exit", Var("o"))), 60)
        )
        sharded = ShardedEngine(
            [rule], max_shards=2, group_members={"dock": {"d1", "d2"}}
        )
        assert CATCH_ALL not in sharded.placement()

    def test_max_shards_validated(self):
        with pytest.raises(ValueError):
            ShardedEngine([], max_shards=0)


class TestRouting:
    def test_observations_only_reach_their_shard(self):
        rules = [containment("r1", "a1", "b1"), containment("r2", "a2", "b2")]
        sharded = ShardedEngine(rules, max_shards=2)
        stream = [
            Observation("a1", "x", 0.0),
            Observation("a2", "y", 0.5),
            Observation("b1", "c1", 12.0),
            Observation("b2", "c2", 12.5),
            Observation("unknown", "z", 13.0),
        ]
        detections = list(sharded.run(stream))
        assert len(detections) == 2
        traffic = sharded.traffic_summary()
        assert sum(traffic.values()) == 4  # 'unknown' reached no shard
        assert sharded.multicast == 0

    def test_catch_all_sees_everything(self):
        rules = [Rule("w", "w", obs(Var("r"), Var("o")))]
        sharded = ShardedEngine(rules, max_shards=2)
        stream = [Observation(f"r{i}", "x", float(i)) for i in range(5)]
        detections = list(sharded.run(stream))
        assert len(detections) == 5


@st.composite
def shard_streams(draw):
    entries = draw(
        st.lists(
            st.tuples(
                st.sampled_from(("a1", "b1", "a2", "b2", "zz")),
                st.integers(1, 8),
            ),
            max_size=30,
        )
    )
    stream = []
    time = 0.0
    for reader, gap in entries:
        time += gap * 0.5
        stream.append(Observation(reader, f"o{len(stream)}", time))
    return stream


class TestEquivalence:
    @given(shard_streams())
    @settings(max_examples=100, deadline=None)
    def test_sharded_equals_single_engine(self, stream):
        rules = [containment("r1", "a1", "b1"), containment("r2", "a2", "b2")]

        single = Engine(rules)
        single_detections = sorted(
            (d.rule.rule_id, d.time, d.instance.t_begin)
            for d in single.run(stream)
        )

        sharded = ShardedEngine(
            [containment("r1", "a1", "b1"), containment("r2", "a2", "b2")],
            max_shards=2,
        )
        sharded_detections = sorted(
            (d.rule.rule_id, d.time, d.instance.t_begin)
            for d in sharded.run(stream)
        )
        assert sharded_detections == single_detections


class TestShardErrors:
    def _sharded_with_bomb(self):
        def bomb(context):
            raise RuntimeError("action exploded")

        return ShardedEngine(
            [
                Rule("boom", "boom", obs("a1", Var("o")), actions=[bomb]),
                Rule("fine", "fine", obs("a2", Var("o"))),
            ],
            max_shards=2,
        )

    def test_submit_failure_names_shard_and_rules(self):
        from repro.core.errors import ShardError

        sharded = self._sharded_with_bomb()
        with pytest.raises(ShardError) as excinfo:
            sharded.submit(Observation("a1", "x", 0.0))
        error = excinfo.value
        assert error.shard in sharded.shards
        assert error.rule_ids == ["boom"]
        assert "boom" in str(error)
        assert error.shard in str(error)
        assert isinstance(error.original, Exception)
        assert error.__cause__ is error.original

    def test_submit_many_failure_names_shard_and_rules(self):
        from repro.core.errors import ShardError

        sharded = self._sharded_with_bomb()
        observations = [
            Observation("a2", "ok", 0.0),
            Observation("a1", "poison", 1.0),
        ]
        with pytest.raises(ShardError, match="boom"):
            sharded.submit_many(observations)

    def test_healthy_shard_unaffected_by_failing_shard(self):
        from repro.core.errors import ShardError

        sharded = self._sharded_with_bomb()
        assert len(sharded.submit(Observation("a2", "x", 0.0))) == 1
        with pytest.raises(ShardError):
            sharded.submit(Observation("a1", "y", 1.0))
        assert len(sharded.submit(Observation("a2", "z", 2.0))) == 1


class TestIntrospection:
    """Direct coverage for routes_for / placement / traffic_summary."""

    def _sharded(self):
        return ShardedEngine(
            [
                containment("r1", "a1", "b1"),
                containment("r2", "a2", "b2"),
            ],
            max_shards=2,
        )

    def test_routes_for_pins_reader_to_its_shard(self):
        sharded = self._sharded()
        placement = sharded.placement()
        routes = sharded.routes_for(Observation("a1", "x", 0.0))
        assert len(routes) == 1
        assert placement[routes[0]] == ["r1"]

    def test_routes_for_unknown_reader_without_catch_all_is_empty(self):
        sharded = self._sharded()
        assert sharded.routes_for(Observation("nobody", "x", 0.0)) == []

    def test_routes_for_appends_catch_all_last(self):
        sharded = ShardedEngine(
            [
                containment("r1", "a1", "b1"),
                Rule("w", "w", obs(Var("r"), Var("o"))),
            ],
            max_shards=2,
        )
        pinned = sharded.routes_for(Observation("a1", "x", 0.0))
        assert pinned[-1] == CATCH_ALL and len(pinned) == 2
        # A reader no shard claimed still reaches the catch-all.
        assert sharded.routes_for(Observation("nobody", "x", 0.0)) == [CATCH_ALL]

    def test_placement_covers_every_rule_exactly_once(self):
        sharded = self._sharded()
        placement = sharded.placement()
        assert sorted(sum(placement.values(), [])) == ["r1", "r2"]
        assert set(placement) == set(sharded.shards)

    def test_traffic_summary_counts_per_shard_observations(self):
        sharded = self._sharded()
        sharded.submit(Observation("a1", "x", 0.0))
        sharded.submit(Observation("a1", "y", 0.2))
        sharded.submit(Observation("a2", "z", 0.4))
        sharded.submit(Observation("nobody", "q", 0.6))  # matches no shard
        traffic = sharded.traffic_summary()
        assert sum(traffic.values()) == 3
        assert sorted(traffic.values()) == [1, 2]
        assert set(traffic) == set(sharded.shards)

    def test_traffic_summary_with_catch_all_counts_everything(self):
        sharded = ShardedEngine(
            [Rule("w", "w", obs(Var("r"), Var("o")))], max_shards=2
        )
        for index in range(4):
            sharded.submit(Observation(f"r{index}", "x", float(index)))
        assert sharded.traffic_summary() == {CATCH_ALL: 4}


class TestIntrospectionParity:
    """One source of truth for placement/traffic across the engines.

    ``ShardedEngine``, the standalone ``plan_shards`` plan, and the
    durable fleet's passthroughs must all report identical views — the
    cluster router derives worker placement from the plan while the
    engines report their own, and any drift would desynchronize them.
    """

    def _rules(self):
        return [
            containment("r1", "a1", "b1"),
            containment("r2", "a2", "b2"),
            containment("r3", "a1", "c3"),
        ]

    def _stream(self):
        return [
            Observation("a1", "x", 0.0),
            Observation("a2", "y", 0.2),
            Observation("b1", "z", 0.4),
            Observation("nobody", "q", 0.6),
        ]

    def test_engine_placement_matches_plan(self):
        from repro.core.sharding import plan_shards

        plan = plan_shards(self._rules(), 2)
        sharded = ShardedEngine(self._rules(), max_shards=2)
        assert sharded.placement() == plan.placement()

    def test_durable_fleet_reports_same_views(self, tmp_path):
        from repro.resilience.durability import DurableShardedEngine

        sharded = ShardedEngine(self._rules(), max_shards=2)
        for observation in self._stream():
            sharded.submit(observation)
        durable = DurableShardedEngine(
            lambda: ShardedEngine(self._rules(), max_shards=2),
            str(tmp_path / "fleet"),
        )
        try:
            for observation in self._stream():
                durable.submit(observation)
            assert durable.placement() == sharded.placement()
            assert durable.traffic_summary() == sharded.traffic_summary()
            assert [
                durable.routes_for(observation)
                for observation in self._stream()
            ] == [
                sharded.routes_for(observation)
                for observation in self._stream()
            ]
        finally:
            durable.close()
