"""Tests for the supply-chain simulator: trace shape, truth, determinism."""

import random

import pytest

from repro.epc import decode
from repro.readers import assert_ordered
from repro.simulator import (
    GateConfig,
    MovementConfig,
    PackingConfig,
    ShelfConfig,
    SupplyChainConfig,
    simulate_gate,
    simulate_movement,
    simulate_multi_packing,
    simulate_packing,
    simulate_shelf,
    simulate_supply_chain,
)


class TestPacking:
    def test_observation_count(self):
        trace = simulate_packing(
            PackingConfig(cases=4, items_per_case=3), rng=random.Random(1)
        )
        assert len(trace.observations) == 4 * (3 + 1)
        assert len(trace.cases) == 4

    def test_stream_ordered(self):
        trace = simulate_packing(PackingConfig(cases=10), rng=random.Random(2))
        assert_ordered(trace.observations)

    def test_timing_bounds_hold(self):
        config = PackingConfig(cases=10, items_per_case=4)
        trace = simulate_packing(config, rng=random.Random(3))
        by_case = {case.case_epc: case for case in trace.cases}
        times = {o.obj: o.timestamp for o in trace.observations}
        for case in by_case.values():
            item_times = [times[item] for item in case.item_epcs]
            for first, second in zip(item_times, item_times[1:]):
                assert config.item_gap[0] <= second - first <= config.item_gap[1]
            delay = case.case_time - item_times[-1]
            assert config.case_delay[0] <= delay <= config.case_delay[1]

    def test_epcs_decode(self):
        trace = simulate_packing(PackingConfig(cases=2), rng=random.Random(4))
        for observation in trace.observations:
            decode(observation.obj)  # raises if malformed

    def test_items_jitter(self):
        config = PackingConfig(cases=20, items_per_case=5, items_jitter=2)
        trace = simulate_packing(config, rng=random.Random(5))
        sizes = {len(case.item_epcs) for case in trace.cases}
        assert len(sizes) > 1
        assert all(3 <= size <= 7 for size in sizes)

    def test_determinism(self):
        first = simulate_packing(PackingConfig(cases=5), rng=random.Random(9))
        second = simulate_packing(PackingConfig(cases=5), rng=random.Random(9))
        assert first.observations == second.observations

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PackingConfig(cases=-1)
        with pytest.raises(ValueError):
            PackingConfig(item_gap=(2.0, 1.0))

    def test_zero_cases(self):
        trace = simulate_packing(PackingConfig(cases=0), rng=random.Random(1))
        assert trace.observations == [] and trace.cases == []


class TestShelf:
    def test_stays_have_consistent_truth(self):
        config = ShelfConfig(items=10)
        trace = simulate_shelf(config, rng=random.Random(11))
        for stay in trace.stays:
            assert stay.placed_at <= stay.removed_at
            if stay.was_read:
                assert stay.infield_time >= stay.placed_at
                assert stay.outfield_time > stay.removed_at

    def test_readings_only_while_present(self):
        config = ShelfConfig(items=6)
        trace = simulate_shelf(config, rng=random.Random(12))
        windows = {
            stay.item_epc: (stay.placed_at, stay.removed_at) for stay in trace.stays
        }
        for observation in trace.observations:
            placed, removed = windows[observation.obj]
            assert placed <= observation.timestamp <= removed

    def test_frame_grid(self):
        config = ShelfConfig(items=5, read_period=30.0)
        trace = simulate_shelf(config, rng=random.Random(13))
        for observation in trace.observations:
            assert observation.timestamp % 30.0 == pytest.approx(0.0)

    def test_empty_shelf(self):
        trace = simulate_shelf(ShelfConfig(items=0), rng=random.Random(1))
        assert trace.observations == []


class TestGate:
    def test_alarm_truth_partition(self):
        config = GateConfig(exits=30)
        trace = simulate_gate(config, rng=random.Random(21))
        alarms = trace.expected_alarms()
        authorized = [e for e in trace.exits if e.authorized]
        assert len(alarms) + len(authorized) == 30
        for gate_exit in authorized:
            assert abs(gate_exit.badge_time - gate_exit.laptop_time) < config.tau

    def test_exits_isolated(self):
        config = GateConfig(exits=20)
        trace = simulate_gate(config, rng=random.Random(22))
        laptop_times = sorted(e.laptop_time for e in trace.exits)
        for first, second in zip(laptop_times, laptop_times[1:]):
            assert second - first > 2 * config.tau

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GateConfig(exit_gap=(5.0, 10.0))  # must exceed 2*tau
        with pytest.raises(ValueError):
            GateConfig(badge_offset=(0.5, 6.0))  # inside (0, tau)
        with pytest.raises(ValueError):
            GateConfig(authorized_fraction=1.5)


class TestMovement:
    def test_every_object_visits_full_route(self):
        config = MovementConfig(objects=4)
        trace = simulate_movement(config, rng=random.Random(31))
        for epc in {visit.obj_epc for visit in trace.visits}:
            history = trace.expected_history(epc)
            assert [location for location, _ in history] == [
                location for _reader, location in config.route
            ]

    def test_observations_match_visits(self):
        trace = simulate_movement(MovementConfig(objects=3), rng=random.Random(32))
        assert len(trace.observations) == len(trace.visits)
        assert_ordered(trace.observations)

    def test_route_validation(self):
        with pytest.raises(ValueError):
            MovementConfig(route=(("r", "loc"),))


class TestComposition:
    def test_supply_chain_merges_ordered(self):
        trace = simulate_supply_chain()
        assert_ordered(trace.observations)
        assert len(trace.observations) == (
            len(trace.packing.observations)
            + len(trace.movement.observations)
            + len(trace.shelf.observations)
            + len(trace.gate.observations)
            + len(trace.checkout.observations)
        )

    def test_checkout_sells_packed_items(self):
        trace = simulate_supply_chain()
        packed = {
            item for case in trace.packing.cases for item in case.item_epcs
        }
        sold = {sale.item_epc for sale in trace.checkout.sales}
        assert sold <= packed
        # Sales happen after the packing line finished.
        first_sale = min(sale.time for sale in trace.checkout.sales)
        assert first_sale > trace.packing.end_time

    def test_scenarios_toggle(self):
        config = SupplyChainConfig(
            include_movement=False, include_shelf=False, include_gate=False
        )
        trace = simulate_supply_chain(config)
        assert trace.movement is None and trace.shelf is None and trace.gate is None
        assert trace.packing is not None

    def test_deterministic_by_seed(self):
        first = simulate_supply_chain(SupplyChainConfig(seed=5))
        second = simulate_supply_chain(SupplyChainConfig(seed=5))
        assert first.observations == second.observations
        third = simulate_supply_chain(SupplyChainConfig(seed=6))
        assert first.observations != third.observations

    def test_no_epc_collisions_across_scenarios(self):
        trace = simulate_supply_chain()
        packing_epcs = {o.obj for o in trace.packing.observations}
        shelf_epcs = {o.obj for o in trace.shelf.observations}
        gate_epcs = {o.obj for o in trace.gate.observations}
        assert not (packing_epcs & shelf_epcs)
        assert not (packing_epcs & gate_epcs)


class TestMultiPacking:
    def test_exact_event_count(self):
        trace = simulate_multi_packing(lines=3, cases_per_line=7, items_per_case=4)
        assert len(trace.observations) == 3 * 7 * 5
        assert len(trace.reader_pairs) == 3

    def test_distinct_reader_pairs(self):
        trace = simulate_multi_packing(lines=5, cases_per_line=1)
        readers = [reader for pair in trace.reader_pairs for reader in pair]
        assert len(set(readers)) == 10

    def test_requires_a_line(self):
        with pytest.raises(ValueError):
            simulate_multi_packing(lines=0, cases_per_line=1)
