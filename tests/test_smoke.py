"""The standing production smoke drill, at CI scale.

``run_smoke_drill`` is the headline check: a generated open-world
workload through the durable serving stack, audited for exactly-once
sink delivery, oracle-exact detections and distinct-EPC cardinality.
These tests run the ``ci`` profile (seconds, not minutes); the ``full``
profile (>= 1M distinct EPCs) is ``python -m repro smoke --profile
full``.
"""

import json

import pytest

from repro.workload import SMOKE_PROFILES, run_smoke_drill


class TestProfiles:
    def test_profiles_exist(self):
        assert set(SMOKE_PROFILES) == {"ci", "quick", "full"}

    def test_full_profile_reaches_million_epc_floor(self):
        full = SMOKE_PROFILES["full"]
        assert full.distinct_floor >= 1_000_000
        assert full.cardinality >= full.distinct_floor

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown smoke profile"):
            run_smoke_drill("warp-speed")


class TestServeSmoke:
    def test_ci_profile_passes(self, tmp_path):
        report_path = str(tmp_path / "smoke.json")
        report = run_smoke_drill(
            "ci",
            seed=7,
            directory=str(tmp_path / "durable"),
            report_path=report_path,
        )
        assert report["ok"], report["checks"]
        assert report["transport"] == "tcp"
        assert report["checks"]["detections_match_oracle"]["ok"]
        assert report["checks"]["sink_exactly_once"]["ok"]
        assert report["distinct_epcs"] >= SMOKE_PROFILES["ci"].distinct_floor
        on_disk = json.load(open(report_path))
        assert on_disk["ok"] is True

    def test_ci_profile_other_pack(self, tmp_path):
        report = run_smoke_drill(
            "ci", pack="checkout", seed=11, directory=str(tmp_path)
        )
        assert report["ok"], report["checks"]

    def test_replay_only_pack_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="replay-only"):
            run_smoke_drill("ci", pack="gate", directory=str(tmp_path))

    def test_chaos_waives_oracle_keeps_delivery_audit(self, tmp_path):
        from repro.resilience import ChaosConfig

        report = run_smoke_drill(
            "ci",
            seed=7,
            directory=str(tmp_path),
            chaos=ChaosConfig(
                seed=7, duplicate_rate=0.05, disorder_rate=0.05
            ),
        )
        assert report["ok"], report["checks"]
        assert "detections_match_oracle" not in report["checks"]
        assert report["checks"]["sink_exactly_once"]["ok"]
        assert report["chaos"]["duplicated"] > 0


class TestClusterSmoke:
    def test_ci_profile_over_cluster(self, tmp_path):
        report = run_smoke_drill(
            "ci",
            pack="packing",
            seed=7,
            cluster=True,
            workers=2,
            directory=str(tmp_path),
        )
        assert report["ok"], report["checks"]
        assert report["transport"] == "cluster"
        assert report["checks"]["detections_match_oracle"]["ok"]

    def test_programless_pack_rejected_for_cluster(self, tmp_path):
        with pytest.raises(ValueError, match="rule-language program"):
            run_smoke_drill(
                "ci",
                pack="returns-fraud",
                cluster=True,
                directory=str(tmp_path),
            )

    def test_cluster_chaos_rejected(self, tmp_path):
        from repro.resilience import ChaosConfig

        with pytest.raises(ValueError, match="cluster smoke"):
            run_smoke_drill(
                "ci",
                pack="packing",
                cluster=True,
                directory=str(tmp_path),
                chaos=ChaosConfig(seed=1, duplicate_rate=0.1),
            )
