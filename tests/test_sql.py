"""Tests for the mini-SQL substrate: lexer, parser, executor."""

import pytest

from repro.core.errors import UnknownVariableError
from repro.sql import (
    Database,
    Insert,
    Select,
    SqlError,
    Update,
    parse,
    parse_script,
    tokenize,
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt * FrOm t")
        assert tokens[0].kind == "KEYWORD" and tokens[0].value == "select"

    def test_identifiers_preserve_case(self):
        tokens = tokenize("SELECT Abc FROM T1")
        assert tokens[1].value == "Abc"

    def test_strings_both_quotes(self):
        tokens = tokenize("'hello' \"world\"")
        assert tokens[0].value == "hello"
        assert tokens[1].value == "world"

    def test_numbers(self):
        tokens = tokenize("42 3.25 .5")
        assert [t.value for t in tokens[:3]] == ["42", "3.25", ".5"]

    def test_operators(self):
        tokens = tokenize("= <> != < > <= >=")
        assert [t.value for t in tokens[:7]] == ["=", "<>", "!=", "<", ">", "<=", ">="]

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("SELECT 'oops")

    def test_stray_character(self):
        with pytest.raises(SqlError):
            tokenize("SELECT @")


class TestParser:
    def test_create_table(self):
        statement = parse("CREATE TABLE t (a, b, c)")
        assert statement.table == "t"
        assert statement.columns == ("a", "b", "c")

    def test_insert(self):
        statement = parse("INSERT INTO t VALUES (1, 'x', v)")
        assert isinstance(statement, Insert)
        assert not statement.bulk
        assert len(statement.values) == 3

    def test_bulk_insert(self):
        statement = parse("BULK INSERT INTO t VALUES (a, b)")
        assert statement.bulk

    def test_insert_with_columns(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 2)")
        assert statement.columns == ("a", "b")

    def test_update(self):
        statement = parse("UPDATE t SET a = 1, b = x WHERE c = 'y'")
        assert isinstance(statement, Update)
        assert [column for column, _ in statement.assignments] == ["a", "b"]
        assert statement.where is not None

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE a > 5")
        assert statement.table == "t"

    def test_select_star(self):
        statement = parse("SELECT * FROM t")
        assert isinstance(statement, Select)
        assert statement.columns is None

    def test_select_full(self):
        statement = parse(
            "SELECT DISTINCT a, b FROM t WHERE a = 1 AND (b < 2 OR c <> 'x') "
            "ORDER BY a DESC, b LIMIT 10"
        )
        assert statement.distinct
        assert statement.columns == ("a", "b")
        assert statement.order_by[0].descending
        assert not statement.order_by[1].descending
        assert statement.limit == 10

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT * FROM t garbage here")

    def test_unknown_statement(self):
        with pytest.raises(SqlError):
            parse("EXPLAIN t")

    def test_script_split_respects_strings(self):
        statements = parse_script(
            "INSERT INTO t VALUES ('a;b'); SELECT * FROM t;"
        )
        assert len(statements) == 2

    def test_create_index(self):
        statement = parse("CREATE INDEX ON t (a)")
        assert statement.table == "t" and statement.column == "a"

    def test_create_index_named(self):
        statement = parse("CREATE INDEX idx1 ON t (a)")
        assert statement.column == "a"


class TestExecutor:
    def setup_method(self):
        self.db = Database()
        self.db.execute("CREATE TABLE t (a, b)")

    def fill(self):
        for index in range(5):
            self.db.execute(
                "INSERT INTO t VALUES (i, x)", {"i": index, "x": index * 10}
            )

    def test_insert_and_select(self):
        self.fill()
        assert self.db.query("SELECT a FROM t WHERE b = 20") == [(2,)]

    def test_select_order_and_limit(self):
        self.fill()
        rows = self.db.query("SELECT a FROM t ORDER BY a DESC LIMIT 2")
        assert rows == [(4,), (3,)]

    def test_select_distinct(self):
        self.db.execute("INSERT INTO t VALUES (1, 1)")
        self.db.execute("INSERT INTO t VALUES (1, 1)")
        assert self.db.query("SELECT DISTINCT a, b FROM t") == [(1, 1)]

    def test_update_returns_count(self):
        self.fill()
        affected = self.db.execute("UPDATE t SET b = 99 WHERE a >= 3")
        assert affected == 2
        assert self.db.query("SELECT a FROM t WHERE b = 99 ORDER BY a") == [(3,), (4,)]

    def test_delete(self):
        self.fill()
        removed = self.db.execute("DELETE FROM t WHERE a < 2")
        assert removed == 2
        assert len(self.db.table("t")) == 3

    def test_delete_all(self):
        self.fill()
        assert self.db.execute("DELETE FROM t") == 5
        assert self.db.query("SELECT * FROM t") == []

    def test_arity_mismatch(self):
        with pytest.raises(SqlError):
            self.db.execute("INSERT INTO t VALUES (1)")

    def test_unknown_table(self):
        with pytest.raises(SqlError):
            self.db.execute("SELECT * FROM missing")

    def test_unknown_column_in_select(self):
        with pytest.raises(SqlError):
            self.db.query("SELECT nope FROM t")

    def test_unknown_column_in_update(self):
        with pytest.raises(SqlError):
            self.db.execute("UPDATE t SET nope = 1")

    def test_duplicate_table(self):
        with pytest.raises(SqlError):
            self.db.execute("CREATE TABLE t (x)")

    def test_unbound_variable(self):
        with pytest.raises(UnknownVariableError):
            self.db.execute("INSERT INTO t VALUES (missing, 1)")

    def test_params_resolve_in_where(self):
        self.fill()
        rows = self.db.query("SELECT b FROM t WHERE a = wanted", {"wanted": 3})
        assert rows == [(30,)]

    def test_column_wins_over_param(self):
        self.fill()
        # 'a' is a column; the parameter of the same name must not shadow it.
        rows = self.db.query("SELECT b FROM t WHERE a = 1", {"a": 999})
        assert rows == [(10,)]

    def test_null_comparisons(self):
        self.db.execute("INSERT INTO t VALUES (NULL, 1)")
        assert self.db.query("SELECT b FROM t WHERE a = NULL") == [(1,)]
        assert self.db.query("SELECT b FROM t WHERE a < 5") == []

    def test_boolean_logic(self):
        self.fill()
        rows = self.db.query(
            "SELECT a FROM t WHERE (a = 1 OR a = 3) AND NOT b = 10"
        )
        assert rows == [(3,)]

    def test_query_rejects_non_select(self):
        with pytest.raises(SqlError):
            self.db.query("DELETE FROM t")

    def test_insert_with_column_list_fills_missing_with_none(self):
        self.db.execute("INSERT INTO t (a) VALUES (7)")
        assert self.db.query("SELECT b FROM t WHERE a = 7") == [(None,)]


class TestIndexes:
    def setup_method(self):
        self.db = Database()
        self.db.execute("CREATE TABLE t (k, v)")
        self.db.execute("CREATE INDEX ON t (k)")
        for index in range(100):
            self.db.execute("INSERT INTO t VALUES (i, j)", {"i": index % 10, "j": index})

    def test_index_probe_matches_scan(self):
        indexed = self.db.query("SELECT v FROM t WHERE k = 3 ORDER BY v")
        self.db.table("t")._indexes.clear()
        scanned = self.db.query("SELECT v FROM t WHERE k = 3 ORDER BY v")
        assert indexed == scanned and len(indexed) == 10

    def test_index_maintained_by_update(self):
        self.db.execute("UPDATE t SET k = 99 WHERE v = 0")
        assert self.db.query("SELECT v FROM t WHERE k = 99") == [(0,)]
        assert (0,) not in self.db.query("SELECT v FROM t WHERE k = 0")

    def test_index_maintained_by_delete(self):
        self.db.execute("DELETE FROM t WHERE k = 3")
        assert self.db.query("SELECT v FROM t WHERE k = 3") == []

    def test_index_probe_with_param(self):
        rows = self.db.query("SELECT v FROM t WHERE k = wanted", {"wanted": 7})
        assert len(rows) == 10

    def test_index_on_missing_column(self):
        with pytest.raises(SqlError):
            self.db.execute("CREATE INDEX ON t (zzz)")


class TestAggregates:
    def setup_method(self):
        self.db = Database()
        self.db.execute("CREATE TABLE t (k, v)")
        for index in range(10):
            self.db.execute(
                "INSERT INTO t VALUES (a, b)", {"a": index % 3, "b": index}
            )

    def test_count_star(self):
        assert self.db.query("SELECT COUNT(*) FROM t") == [(10,)]

    def test_count_star_with_where(self):
        assert self.db.query("SELECT COUNT(*) FROM t WHERE k = 1") == [(3,)]

    def test_count_star_empty(self):
        assert self.db.query("SELECT COUNT(*) FROM t WHERE k = 99") == [(0,)]

    def test_group_by_with_aggregates(self):
        rows = self.db.query(
            "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k ORDER BY k"
        )
        assert rows == [(0, 4, 18), (1, 3, 12), (2, 3, 15)]

    def test_min_max_avg(self):
        assert self.db.query(
            "SELECT MIN(v), MAX(v), AVG(v) FROM t WHERE k = 1"
        ) == [(1, 7, 4.0)]

    def test_count_column_skips_nulls(self):
        self.db.execute("INSERT INTO t VALUES (5, NULL)")
        assert self.db.query("SELECT COUNT(v) FROM t WHERE k = 5") == [(0,)]
        assert self.db.query("SELECT COUNT(*) FROM t WHERE k = 5") == [(1,)]

    def test_aggregate_over_empty_group_is_null(self):
        assert self.db.query("SELECT SUM(v) FROM t WHERE k = 99") == [(None,)]

    def test_plain_column_requires_group_by(self):
        with pytest.raises(SqlError):
            self.db.query("SELECT v, COUNT(*) FROM t")

    def test_star_with_group_by_rejected(self):
        with pytest.raises(SqlError):
            self.db.query("SELECT * FROM t GROUP BY k")

    def test_sum_star_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT SUM(*) FROM t")

    def test_order_by_aggregate_label(self):
        rows = self.db.query(
            "SELECT k, SUM(v) FROM t GROUP BY k ORDER BY k DESC"
        )
        assert [row[0] for row in rows] == [2, 1, 0]

    def test_unknown_aggregate_column(self):
        with pytest.raises(SqlError):
            self.db.query("SELECT SUM(zzz) FROM t")

    def test_group_by_unknown_column(self):
        with pytest.raises(SqlError):
            self.db.query("SELECT COUNT(*) FROM t GROUP BY zzz")

    def test_aggregate_as_rule_condition_shape(self):
        # The shape rule conditions use: non-empty result iff count > 0 is
        # not expressible, but COUNT(*) always returns one row -- document
        # that callers compare in Python or filter via WHERE instead.
        rows = self.db.query("SELECT COUNT(*) FROM t WHERE k = 0")
        assert rows[0][0] == 4


class TestJoins:
    def setup_method(self):
        self.db = Database()
        self.db.execute("CREATE TABLE loc (object_epc, loc_id)")
        self.db.execute("CREATE TABLE cont (object_epc, parent_epc)")
        for obj, loc in (("i1", "dock"), ("i2", "store"), ("i3", "dock")):
            self.db.execute("INSERT INTO loc VALUES (a, b)", {"a": obj, "b": loc})
        for obj, parent in (("i1", "caseA"), ("i2", "caseA"), ("i3", "caseB")):
            self.db.execute(
                "INSERT INTO cont VALUES (a, b)", {"a": obj, "b": parent}
            )

    def test_inner_equi_join(self):
        rows = self.db.query(
            "SELECT cont.object_epc, loc_id, parent_epc FROM cont "
            "JOIN loc ON cont.object_epc = loc.object_epc ORDER BY parent_epc, loc_id"
        )
        assert rows == [
            ("i1", "dock", "caseA"),
            ("i2", "store", "caseA"),
            ("i3", "dock", "caseB"),
        ]

    def test_join_with_where(self):
        rows = self.db.query(
            "SELECT cont.object_epc FROM cont JOIN loc "
            "ON cont.object_epc = loc.object_epc WHERE loc_id = 'dock' "
            "ORDER BY cont.object_epc"
        )
        assert rows == [("i1",), ("i3",)]

    def test_join_with_aggregates(self):
        rows = self.db.query(
            "SELECT parent_epc, COUNT(*) FROM cont JOIN loc "
            "ON cont.object_epc = loc.object_epc GROUP BY parent_epc "
            "ORDER BY parent_epc"
        )
        assert rows == [("caseA", 2), ("caseB", 1)]

    def test_join_star_concatenates_columns(self):
        rows = self.db.query(
            "SELECT * FROM cont JOIN loc ON cont.object_epc = loc.object_epc"
        )
        assert all(len(row) == 4 for row in rows)

    def test_unmatched_rows_excluded(self):
        self.db.execute("INSERT INTO cont VALUES ('ghost', 'caseC')")
        rows = self.db.query(
            "SELECT cont.object_epc FROM cont JOIN loc "
            "ON cont.object_epc = loc.object_epc"
        )
        assert ("ghost",) not in rows

    def test_ambiguous_plain_column_rejected(self):
        with pytest.raises(SqlError):
            self.db.query(
                "SELECT object_epc FROM cont JOIN loc "
                "ON cont.object_epc = loc.object_epc"
            )

    def test_ambiguous_on_column_rejected(self):
        with pytest.raises(SqlError):
            self.db.query(
                "SELECT parent_epc FROM cont JOIN loc ON object_epc = object_epc"
            )

    def test_on_must_span_both_tables(self):
        with pytest.raises(SqlError):
            self.db.query(
                "SELECT parent_epc FROM cont JOIN loc "
                "ON cont.object_epc = cont.parent_epc"
            )

    def test_self_join_rejected(self):
        with pytest.raises(SqlError):
            self.db.query(
                "SELECT parent_epc FROM cont JOIN cont "
                "ON cont.object_epc = cont.parent_epc"
            )

    def test_unknown_join_table(self):
        with pytest.raises(SqlError):
            self.db.query(
                "SELECT parent_epc FROM cont JOIN missing ON object_epc = x"
            )

    def test_unqualified_on_columns_resolve(self):
        rows = self.db.query(
            "SELECT parent_epc, loc_id FROM cont JOIN loc "
            "ON cont.object_epc = loc.object_epc WHERE parent_epc = 'caseB'"
        )
        assert rows == [("caseB", "dock")]


class TestExplain:
    def setup_method(self):
        self.db = Database()
        self.db.execute("CREATE TABLE t (k, v)")
        self.db.execute("CREATE INDEX ON t (k)")
        self.db.execute("CREATE TABLE u (k, w)")

    def test_index_probe_reported(self):
        plan = self.db.explain("SELECT v FROM t WHERE k = 3")
        assert plan == "index probe t(k)"

    def test_probe_with_parameter(self):
        plan = self.db.explain("SELECT v FROM t WHERE k = wanted", {"wanted": 1})
        assert "index probe" in plan

    def test_scan_without_usable_index(self):
        assert self.db.explain("SELECT v FROM t WHERE v = 3") == "scan t"
        assert self.db.explain("SELECT v FROM t") == "scan t"

    def test_or_disables_probe(self):
        plan = self.db.explain("SELECT v FROM t WHERE k = 1 OR v = 2")
        assert plan == "scan t"

    def test_join_plan(self):
        plan = self.db.explain("SELECT t.v FROM t JOIN u ON t.k = u.k")
        assert plan.startswith("hash join")

    def test_explain_rejects_non_select(self):
        with pytest.raises(SqlError):
            self.db.explain("DELETE FROM t")
