"""Tests for the RFID data store: temporal tables with UC semantics."""

import pytest

from repro.sql import SqlError
from repro.store import SCHEMA, UC, RfidStore, create_schema


class TestSchema:
    def test_standard_tables_exist(self):
        store = RfidStore()
        for name in SCHEMA:
            assert name in store.database.tables

    def test_containment_alias(self):
        store = RfidStore()
        assert store.database.table("CONTAINMENT") is store.database.table(
            "OBJECTCONTAINMENT"
        )

    def test_create_schema_twice_fails(self):
        store = RfidStore()
        with pytest.raises(SqlError):
            create_schema(store.database)

    def test_counts_excludes_alias(self):
        counts = RfidStore().counts()
        assert "CONTAINMENT" not in counts
        assert counts["OBSERVATION"] == 0


class TestReaders:
    def test_place_and_lookup(self):
        store = RfidStore()
        store.place_reader("r1", "dock")
        assert store.reader_location("r1") == "dock"
        assert store.reader_location("r2") is None

    def test_move_reader(self):
        store = RfidStore()
        store.place_reader("r1", "dock")
        store.place_reader("r1", "gate")
        assert store.reader_location("r1") == "gate"
        assert len(store.database.table("READERLOCATION")) == 1


class TestLocations:
    def test_history_and_current(self):
        store = RfidStore()
        store.update_location("box", "factory", 0.0)
        store.update_location("box", "truck", 10.0)
        store.update_location("box", "store", 25.0)
        assert store.location_history("box") == [
            ("factory", 0.0, 10.0),
            ("truck", 10.0, 25.0),
            ("store", 25.0, UC),
        ]
        assert store.location_of("box") == "store"

    def test_location_at_time(self):
        store = RfidStore()
        store.update_location("box", "factory", 0.0)
        store.update_location("box", "truck", 10.0)
        assert store.location_of("box", at=5.0) == "factory"
        assert store.location_of("box", at=10.0) == "truck"
        assert store.location_of("box", at=999.0) == "truck"

    def test_before_first_sighting(self):
        store = RfidStore()
        store.update_location("box", "factory", 10.0)
        assert store.location_of("box", at=5.0) is None

    def test_reobservation_at_same_location_is_noop(self):
        store = RfidStore()
        store.update_location("box", "factory", 0.0)
        store.update_location("box", "factory", 5.0)
        assert store.location_history("box") == [("factory", 0.0, UC)]

    def test_objects_at(self):
        store = RfidStore()
        store.update_location("a", "dock", 0.0)
        store.update_location("b", "dock", 1.0)
        store.update_location("a", "gate", 5.0)
        assert store.objects_at("dock") == ["b"]
        assert store.objects_at("dock", at=3.0) == ["a", "b"]

    def test_unknown_object(self):
        assert RfidStore().location_of("ghost") is None


class TestContainment:
    def test_add_and_query(self):
        store = RfidStore()
        store.add_containment(["i1", "i2"], "case", 10.0)
        assert store.contents_of("case") == ["i1", "i2"]
        assert store.parent_of("i1") == "case"

    def test_end_containment(self):
        store = RfidStore()
        store.add_containment(["i1"], "case", 10.0)
        assert store.end_containment("i1", 20.0)
        assert store.parent_of("i1") is None
        assert store.parent_of("i1", at=15.0) == "case"
        assert not store.end_containment("i1", 30.0)  # already closed

    def test_unpack_closes_all(self):
        store = RfidStore()
        store.add_containment(["i1", "i2", "i3"], "case", 10.0)
        assert store.unpack("case", 50.0) == 3
        assert store.contents_of("case") == []
        assert store.contents_of("case", at=20.0) == ["i1", "i2", "i3"]

    def test_nested_containment_tree(self):
        store = RfidStore()
        store.add_containment(["i1", "i2"], "case", 0.0)
        store.add_containment(["case"], "pallet", 5.0)
        assert store.containment_tree("pallet") == {"case": {"i1": {}, "i2": {}}}

    def test_repacking_history(self):
        store = RfidStore()
        store.add_containment(["i1"], "caseA", 0.0)
        store.end_containment("i1", 10.0)
        store.add_containment(["i1"], "caseB", 12.0)
        assert store.parent_of("i1", at=5.0) == "caseA"
        assert store.parent_of("i1", at=11.0) is None
        assert store.parent_of("i1") == "caseB"


class TestObservationsAndAlerts:
    def test_record_and_read_observations(self):
        store = RfidStore()
        store.record_observation("r1", "x", 1.0)
        store.record_observation("r2", "x", 2.0)
        assert store.observations_of("x") == [("r1", 1.0), ("r2", 2.0)]

    def test_alerts_in_table_and_list(self):
        store = RfidStore()
        store.send_alert("r5", "laptop walking away", 42.0)
        assert store.alerts == [("r5", "laptop walking away", 42.0)]
        rows = store.database.query("SELECT rule_id, timestamp FROM ALERT")
        assert rows == [("r5", 42.0)]

    def test_sql_interface_sees_typed_writes(self):
        store = RfidStore()
        store.update_location("box", "dock", 3.0)
        rows = store.database.query(
            "SELECT loc_id FROM OBJECTLOCATION WHERE object_epc = 'box' "
            "AND tend = 'UC'"
        )
        assert rows == [("dock",)]


class TestSqlJoinOverStore:
    def test_cookbook_join_query(self):
        """The join+aggregate query documented in docs/cookbook.md."""
        store = RfidStore()
        store.add_containment(["i1", "i2"], "caseA", 0.0)
        store.add_containment(["i3"], "caseB", 0.0)
        store.update_location("i1", "warehouse", 1.0)
        store.update_location("i2", "warehouse", 1.0)
        store.update_location("i3", "shop", 1.0)
        rows = store.database.query(
            "SELECT parent_epc, COUNT(*) FROM OBJECTCONTAINMENT "
            "JOIN OBJECTLOCATION "
            "ON OBJECTCONTAINMENT.object_epc = OBJECTLOCATION.object_epc "
            "WHERE loc_id = 'warehouse' AND OBJECTCONTAINMENT.tend = 'UC' "
            "GROUP BY parent_epc"
        )
        assert rows == [("caseA", 2)]
