"""Unit tests for repro.core.temporal: durations and temporal functions."""

import math

import pytest

from repro.core.temporal import (
    INFINITY,
    TIME_EPSILON,
    dist,
    format_duration,
    interval,
    parse_duration,
    span,
)


class Span:
    """Minimal object satisfying the HasSpan protocol."""

    def __init__(self, t_begin, t_end):
        self.t_begin = t_begin
        self.t_end = t_end


class TestParseDuration:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("5sec", 5.0),
            ("5 sec", 5.0),
            ("0.1sec", 0.1),
            (".5sec", 0.5),
            ("10min", 600.0),
            ("2hour", 7200.0),
            ("1h", 3600.0),
            ("3days", 259200.0),
            ("250ms", 0.25),
            ("100msec", 0.1),
            ("42", 42.0),
            ("1.5", 1.5),
            ("7seconds", 7.0),
            ("2minutes", 120.0),
        ],
    )
    def test_literals(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    def test_numbers_pass_through(self):
        assert parse_duration(3) == 3.0
        assert parse_duration(2.5) == 2.5

    @pytest.mark.parametrize("bad", ["", "sec", "5lightyears", "-5sec", "1.2.3sec"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_duration(bad)

    def test_whitespace_tolerated(self):
        assert parse_duration("  5 sec  ") == 5.0


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds, expected",
        [
            (5.0, "5sec"),
            (0.1, "0.1sec"),
            (600.0, "10min"),
            (7200.0, "2hour"),
            (86400.0, "1day"),
            (90.0, "90sec"),  # not a whole number of minutes
            (INFINITY, "inf"),
            (0.0, "0sec"),
        ],
    )
    def test_rendering(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_roundtrip(self):
        for seconds in (0.05, 0.1, 1, 5, 42, 60, 90, 600, 3600, 86400):
            assert parse_duration(format_duration(seconds)) == pytest.approx(seconds)


class TestTemporalFunctions:
    def test_interval(self):
        assert interval(Span(2.0, 5.0)) == 3.0
        assert interval(Span(4.0, 4.0)) == 0.0

    def test_dist_is_end_to_end(self):
        first, second = Span(0.0, 2.0), Span(1.0, 7.0)
        assert dist(first, second) == 5.0
        assert dist(second, first) == -5.0

    def test_span_covers_both(self):
        first, second = Span(1.0, 3.0), Span(2.0, 10.0)
        assert span(first, second) == 9.0
        assert span(second, first) == 9.0

    def test_span_disjoint(self):
        assert span(Span(0.0, 1.0), Span(5.0, 6.0)) == 6.0

    def test_span_nested(self):
        assert span(Span(0.0, 10.0), Span(3.0, 4.0)) == 10.0

    def test_epsilon_is_small_but_positive(self):
        assert 0 < TIME_EPSILON < 1e-3

    def test_infinity(self):
        assert math.isinf(INFINITY)
