"""Tests for tooling: recording/replay, DOT export, CLI, rule toggling."""

import io
import json

import pytest

from repro import Engine, Observation, Var, obs
from repro.core.expressions import Not, TSeq, TSeqPlus, Within
from repro.core.visualize import engine_to_dot, graph_to_dot
from repro.readers import load_stream, read_stream, save_stream, write_stream


class TestRecording:
    def test_roundtrip(self, tmp_path):
        stream = [
            Observation("r1", "a", 0.5),
            Observation("r2", "b", 1.0, extra={"rssi": -40}),
        ]
        path = tmp_path / "stream.jsonl"
        assert save_stream(stream, str(path)) == 2
        loaded = load_stream(str(path))
        assert loaded == stream
        assert loaded[1].extra == {"rssi": -40}

    def test_text_format_one_json_per_line(self):
        handle = io.StringIO()
        write_stream([Observation("r", "o", 3.0)], handle)
        record = json.loads(handle.getvalue())
        assert record == {"r": "r", "o": "o", "t": 3.0}

    def test_comments_and_blank_lines_skipped(self):
        text = '# header\n\n{"r": "a", "o": "b", "t": 1.0}\n'
        loaded = list(read_stream(io.StringIO(text)))
        assert len(loaded) == 1

    def test_malformed_line_reports_location(self):
        text = '{"r": "a", "o": "b", "t": 1.0}\nnot json\n'
        with pytest.raises(ValueError, match="line 2"):
            list(read_stream(io.StringIO(text)))

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError):
            list(read_stream(io.StringIO('{"r": "a"}')))


class TestDotExport:
    def _engine(self):
        engine = Engine()
        event = TSeq(
            TSeqPlus(obs("r1", Var("o1"), alias="E1"), 0.1, 1.0),
            obs("r2", Var("o2")),
            10,
            20,
        )
        engine.watch(Within(event, 600))
        return engine

    def test_valid_dot_structure(self):
        dot = engine_to_dot(self._engine())
        assert dot.startswith("digraph")
        assert dot.endswith("}")
        assert dot.count("->") == 3  # obs->tseq+, tseq+->tseq, obs->tseq

    def test_annotations_present(self):
        dot = engine_to_dot(self._engine())
        assert "0.1sec" in dot and "10sec" in dot
        assert "10min" in dot  # propagated within annotation

    def test_alias_shown(self):
        assert "E1" in engine_to_dot(self._engine())

    def test_negation_symbol(self):
        engine = Engine()
        engine.watch(Within(obs("a") & Not(obs("b")), 5))
        assert "¬" in engine_to_dot(engine)

    def test_shared_nodes_rendered_once(self):
        engine = Engine()
        shared = obs("r1", Var("o"))
        engine.watch(Within(shared >> obs("r2"), 10))
        engine.watch(Within(shared >> obs("r3"), 10))
        dot = graph_to_dot(engine.graph)
        assert dot.count("r=r1") == 1


class TestRuleToggling:
    def test_disabled_rule_does_not_fire(self):
        engine = Engine()
        rule = engine.watch(obs("r"), name="togglable")
        engine.submit(Observation("r", "a", 0.0))
        rule.enabled = False
        assert engine.submit(Observation("r", "b", 1.0)) == []
        rule.enabled = True
        assert len(engine.submit(Observation("r", "c", 2.0))) == 1
        assert engine.stats.per_rule["togglable"] == 2

    def test_rule_lookup(self):
        engine = Engine()
        rule = engine.watch(obs("r"), name="findme")
        assert engine.rule("findme") is rule
        with pytest.raises(KeyError):
            engine.rule("missing")

    def test_disabled_rule_keeps_shared_state_warm(self):
        # Disabling one of two rules sharing a sub-event must not break
        # the other rule's detection.
        engine = Engine()
        shared = obs("A", Var("o"))
        first = engine.watch(Within(shared >> obs("B", Var("o")), 100), name="one")
        engine.watch(Within(shared >> obs("C", Var("o")), 100), name="two")
        first.enabled = False
        detections = list(
            engine.run([Observation("A", "x", 0), Observation("C", "x", 1)])
        )
        assert [d.rule.rule_id for d in detections] == ["two"]


class TestCli:
    def _rules_file(self, tmp_path):
        path = tmp_path / "rules.txt"
        path.write_text(
            'DEFINE E1 = observation("r1", o1, t1)\n'
            'DEFINE E2 = observation("r2", o2, t2)\n'
            "CREATE RULE r4, containment ON "
            "TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec) IF true "
            "DO BULK INSERT INTO CONTAINMENT VALUES (o1, o2, t2, 'UC')\n"
        )
        return str(path)

    def test_record_run_graph_pipeline(self, tmp_path, capsys):
        from repro.__main__ import main

        stream_path = str(tmp_path / "stream.jsonl")
        store_path = str(tmp_path / "store.json")
        assert main(["record", "--scenario", "packing", "--out", stream_path,
                     "--cases", "4", "--seed", "3"]) == 0
        assert main(["run", "--rules", self._rules_file(tmp_path),
                     "--stream", stream_path, "--store", store_path]) == 0
        output = capsys.readouterr().out
        assert "4 detections" in output or "r4: 4" in output

        from repro.store import RfidStore

        store = RfidStore.load_json(store_path)
        assert len(store.database.table("OBJECTCONTAINMENT")) == 4 * 5

        assert main(["graph", "--rules", self._rules_file(tmp_path)]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_demo_command(self, capsys):
        from repro.__main__ import main

        assert main(["demo"]) == 0
        assert "containment" in capsys.readouterr().out

    def test_run_with_metrics_dump(self, tmp_path, capsys):
        from repro.__main__ import main

        stream_path = str(tmp_path / "stream.jsonl")
        metrics_path = str(tmp_path / "metrics.json")
        assert main(["record", "--scenario", "packing", "--out", stream_path,
                     "--cases", "4", "--seed", "3"]) == 0
        assert main(["run", "--rules", self._rules_file(tmp_path),
                     "--stream", stream_path, "--metrics", metrics_path]) == 0
        capsys.readouterr()
        snapshot = json.loads(open(metrics_path).read())
        assert snapshot["rceda_detections_total"]["samples"][0]["value"] == 4
        assert "rceda_observation_latency_seconds" in snapshot

    def test_metrics_command_prometheus_stdout(self, tmp_path, capsys):
        from repro.__main__ import main

        stream_path = str(tmp_path / "stream.jsonl")
        assert main(["record", "--scenario", "packing", "--out", stream_path,
                     "--cases", "4", "--seed", "3"]) == 0
        capsys.readouterr()
        assert main(["metrics", "--rules", self._rules_file(tmp_path),
                     "--stream", stream_path]) == 0
        output = capsys.readouterr().out
        assert "# TYPE rceda_detections_total counter" in output
        assert 'rceda_node_match_seconds_bucket{engine="main",kind="obs"' in output
