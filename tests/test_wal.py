"""Unit tests for the durable layer's building blocks: WAL and outbox.

The crash-recovery integration matrix lives in ``test_durability.py``;
these tests pin down the log format itself — framing, rotation, torn
tails vs corruption, pruning — and the outbox journal's exactly-once
bookkeeping.
"""

import json
import os
import struct
import zlib

import pytest

from repro.core.errors import WalError
from repro.resilience import RetryPolicy
from repro.resilience.durability import (
    ActionOutbox,
    FsyncPolicy,
    WalWriter,
    read_journal,
    read_wal,
    scan_segment,
    scan_wal,
    segment_files,
)
from repro.resilience.durability.wal import segment_path


def payloads(directory):
    return [(r.seq, r.payload) for r in read_wal(directory)]


class TestFraming:
    def test_round_trip(self, tmp_path):
        directory = str(tmp_path / "wal")
        with WalWriter(directory) as wal:
            for seq in range(5):
                wal.append(seq, {"k": "o", "v": seq})
        assert payloads(directory) == [
            (seq, {"k": "o", "v": seq}) for seq in range(5)
        ]

    def test_start_after_skips_prefix(self, tmp_path):
        directory = str(tmp_path / "wal")
        with WalWriter(directory) as wal:
            for seq in range(6):
                wal.append(seq, {"v": seq})
        seqs = [r.seq for r in read_wal(directory, start_after=3)]
        assert seqs == [4, 5]

    def test_sequence_must_advance(self, tmp_path):
        with WalWriter(str(tmp_path / "wal")) as wal:
            wal.append(3, {"v": 3})
            with pytest.raises(WalError, match="does not advance"):
                wal.append(3, {"v": 3})
            with pytest.raises(WalError, match="does not advance"):
                wal.append(1, {"v": 1})
            wal.append(7, {"v": 7})  # gaps are legal, regressions are not

    def test_non_json_payload_raises_wal_error(self, tmp_path):
        with WalWriter(str(tmp_path / "wal")) as wal:
            with pytest.raises(WalError, match="not JSON-encodable"):
                wal.append(0, {"v": object()})
            # The failed append must not have burned the sequence number.
            wal.append(0, {"v": 0})

    def test_reopen_resumes_sequence_floor(self, tmp_path):
        directory = str(tmp_path / "wal")
        with WalWriter(directory) as wal:
            wal.append(0, {"v": 0})
            wal.append(1, {"v": 1})
        with WalWriter(directory) as wal:
            assert wal.last_seq == 1
            with pytest.raises(WalError):
                wal.append(1, {"v": 1})
            wal.append(2, {"v": 2})
        assert [r.seq for r in read_wal(directory)] == [0, 1, 2]


class TestRotation:
    def test_tiny_segments_rotate_and_replay_in_order(self, tmp_path):
        directory = str(tmp_path / "wal")
        with WalWriter(directory, segment_max_bytes=64) as wal:
            for seq in range(20):
                wal.append(seq, {"v": seq})
            assert wal.rotations > 0
        names = segment_files(directory)
        assert len(names) > 1
        assert names == sorted(names)
        assert [r.seq for r in read_wal(directory)] == list(range(20))

    def test_oversized_record_still_lands(self, tmp_path):
        """A record larger than segment_max_bytes gets its own segment."""
        directory = str(tmp_path / "wal")
        with WalWriter(directory, segment_max_bytes=64) as wal:
            wal.append(0, {"v": 0})
            wal.append(1, {"big": "x" * 200})
            wal.append(2, {"v": 2})
        assert [r.seq for r in read_wal(directory)] == [0, 1, 2]


class TestTornTailVsCorruption:
    def _write(self, directory, n=6):
        with WalWriter(directory) as wal:
            for seq in range(n):
                wal.append(seq, {"v": seq})

    def test_torn_tail_is_silently_dropped(self, tmp_path):
        directory = str(tmp_path / "wal")
        self._write(directory)
        name = segment_files(directory)[-1]
        path = segment_path(directory, name)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        assert [r.seq for r in read_wal(directory)] == [0, 1, 2, 3, 4]

    def test_reopen_truncates_torn_tail(self, tmp_path):
        directory = str(tmp_path / "wal")
        self._write(directory)
        name = segment_files(directory)[-1]
        path = segment_path(directory, name)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)
        with WalWriter(directory) as wal:
            assert wal.truncated_tail_bytes > 0
            assert wal.last_seq == 4
            wal.append(5, {"v": "rewritten"})
        assert payloads(directory)[-1] == (5, {"v": "rewritten"})

    def test_mid_log_bitflip_raises(self, tmp_path):
        """A failing checksum before the final record is corruption."""
        directory = str(tmp_path / "wal")
        self._write(directory)
        name = segment_files(directory)[-1]
        path = segment_path(directory, name)
        with open(path, "r+b") as handle:
            # Flip a byte inside the first record's payload.
            handle.seek(struct.calcsize("<IIQ") + 2)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WalError):
            list(read_wal(directory))

    def test_corrupt_non_final_segment_raises(self, tmp_path):
        directory = str(tmp_path / "wal")
        with WalWriter(directory, segment_max_bytes=64) as wal:
            for seq in range(10):
                wal.append(seq, {"v": seq})
        names = segment_files(directory)
        assert len(names) > 2
        path = segment_path(directory, names[1])
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 2)
        with pytest.raises(WalError, match="not the final segment"):
            list(read_wal(directory))

    def test_checksummed_garbage_that_is_not_json_raises(self, tmp_path):
        directory = str(tmp_path / "wal")
        body = b"not json"
        seq = 0
        crc = zlib.crc32(body, zlib.crc32(struct.pack("<Q", seq)))
        os.makedirs(directory)
        with open(segment_path(directory, "wal-0000000000000000.seg"), "wb") as f:
            f.write(struct.pack("<IIQ", len(body), crc, seq) + body)
        with pytest.raises(WalError, match="not JSON"):
            list(read_wal(directory))

    def test_non_monotonic_across_segments_raises(self, tmp_path):
        directory = str(tmp_path / "wal")
        self._write(directory, n=3)
        # Forge a second segment that replays an already-covered sequence.
        body = json.dumps({"v": "dup"}).encode()
        crc = zlib.crc32(body, zlib.crc32(struct.pack("<Q", 1)))
        with open(segment_path(directory, "wal-0000000000000005.seg"), "wb") as f:
            f.write(struct.pack("<IIQ", len(body), crc, 1) + body)
        with pytest.raises(WalError, match="does not advance"):
            list(read_wal(directory))


class TestPrune:
    def test_prune_keeps_uncovered_segments(self, tmp_path):
        directory = str(tmp_path / "wal")
        with WalWriter(directory, segment_max_bytes=64) as wal:
            for seq in range(20):
                wal.append(seq, {"v": seq})
            names_before = segment_files(directory)
            assert len(names_before) >= 3
            deleted = wal.prune(9)
            assert deleted  # something was reclaimable
            # Every surviving record > 9 is still replayable, in order.
            seqs = [r.seq for r in read_wal(directory, start_after=9)]
            assert seqs == list(range(10, 20))

    def test_prune_never_deletes_final_segment(self, tmp_path):
        directory = str(tmp_path / "wal")
        with WalWriter(directory) as wal:
            wal.append(0, {"v": 0})
            assert wal.prune(10) == []
        assert len(segment_files(directory)) == 1

    def test_scan_wal_reports_segments(self, tmp_path):
        directory = str(tmp_path / "wal")
        with WalWriter(directory, segment_max_bytes=64) as wal:
            for seq in range(10):
                wal.append(seq, {"v": seq})
        infos = scan_wal(directory)
        assert sum(info.records for info in infos) == 10
        assert all(info.torn_bytes == 0 for info in infos)
        assert infos[0].first_seq == 0
        assert infos[-1].last_seq == 9


class TestFsyncPolicy:
    def test_parse(self):
        assert FsyncPolicy.parse("always") is FsyncPolicy.ALWAYS
        assert FsyncPolicy.parse("never") is FsyncPolicy.NEVER
        assert FsyncPolicy.parse("batch:8") == FsyncPolicy.BATCH(8)
        assert FsyncPolicy.parse(FsyncPolicy.ALWAYS) is FsyncPolicy.ALWAYS
        with pytest.raises(ValueError):
            FsyncPolicy.parse("sometimes")
        with pytest.raises(ValueError):
            FsyncPolicy.BATCH(0)

    def test_str_round_trips(self):
        for policy in (FsyncPolicy.ALWAYS, FsyncPolicy.NEVER, FsyncPolicy.BATCH(64)):
            assert FsyncPolicy.parse(str(policy)) == policy

    def test_always_fsyncs_every_append(self, tmp_path):
        with WalWriter(str(tmp_path / "wal"), fsync=FsyncPolicy.ALWAYS) as wal:
            for seq in range(5):
                wal.append(seq, {"v": seq})
            assert wal.fsyncs == 5

    def test_batch_fsyncs_every_n(self, tmp_path):
        with WalWriter(str(tmp_path / "wal"), fsync=FsyncPolicy.BATCH(3)) as wal:
            for seq in range(7):
                wal.append(seq, {"v": seq})
            assert wal.fsyncs == 2  # after seq 2 and seq 5
        # close() syncs the remainder


class TestOutbox:
    def _sink(self, log):
        def sink(detection, seq, ordinal):
            log.append((detection, seq, ordinal))

        return sink

    def test_deliver_then_suppress_across_reopen(self, tmp_path):
        directory = str(tmp_path)
        log = []
        with ActionOutbox(directory, self._sink(log)) as outbox:
            assert outbox.deliver("d0", 0, 0) is True
            assert outbox.deliver("d0", 0, 0) is False  # same life
        log2 = []
        with ActionOutbox(directory, self._sink(log2)) as outbox:
            assert outbox.deliver("d0", 0, 0) is False  # replay after reopen
            assert outbox.suppressed == 1
            assert outbox.deliver("d1", 1, 0) is True
        assert log == [("d0", 0, 0)]
        assert log2 == [("d1", 1, 0)]

    def test_in_flight_intent_is_redelivered(self, tmp_path):
        """Crash between intent and ack: the delivery runs again."""
        directory = str(tmp_path)

        def exploding(detection, seq, ordinal):
            raise RuntimeError("sink died")

        outbox = ActionOutbox(
            directory, exploding, retry=RetryPolicy(attempts=1, base_delay=0.0)
        )
        # Simulate the crash window: journal the intent, then die before
        # the sink resolves, by writing the intent line directly.
        outbox._append({"op": "i", "seq": 5, "ord": 0, "rule": None})
        outbox.close()
        log = []
        with ActionOutbox(directory, self._sink(log)) as outbox:
            assert outbox.in_flight == {(5, 0)}
            assert outbox.deliver("d5", 5, 0) is True
        assert log == [("d5", 5, 0)]

    def test_dead_letter_after_retries(self, tmp_path):
        attempts = []

        def exploding(detection, seq, ordinal):
            attempts.append(seq)
            raise RuntimeError("sink down")

        with ActionOutbox(
            str(tmp_path),
            exploding,
            retry=RetryPolicy(attempts=3, base_delay=0.0),
        ) as outbox:
            assert outbox.deliver("d0", 0, 0) is True  # resolved as dead
            assert len(attempts) == 3
            assert len(outbox.dead_letters) == 1
            assert outbox.dead_letters.entries()[0].kind == "delivery"
            # Dead is resolved: replay must not retry it.
            assert outbox.deliver("d0", 0, 0) is False

    def test_torn_journal_line_is_dropped(self, tmp_path):
        directory = str(tmp_path)
        log = []
        with ActionOutbox(directory, self._sink(log)) as outbox:
            outbox.deliver("d0", 0, 0)
            outbox.deliver("d1", 1, 0)
            path = outbox.path
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 4)
        with ActionOutbox(directory, self._sink(log)) as outbox:
            # The torn ack for (1, 0) is gone; only its intent survives,
            # so that delivery re-runs (at-least-once window) while the
            # fully-acked (0, 0) stays suppressed.
            assert outbox.is_resolved(0, 0)
            assert not outbox.is_resolved(1, 0)

    def test_compact_drops_covered_entries(self, tmp_path):
        directory = str(tmp_path)
        log = []
        with ActionOutbox(directory, self._sink(log)) as outbox:
            for seq in range(6):
                outbox.deliver(f"d{seq}", seq, 0)
            size_before = os.path.getsize(outbox.path)
            dropped = outbox.compact(3)
            assert dropped == 4
            assert os.path.getsize(outbox.path) < size_before
            # Entries above the prune point still suppress.
            assert outbox.deliver("d5", 5, 0) is False
        entries = read_journal(os.path.join(directory, "outbox.log"))
        assert {entry.seq for entry in entries} == {4, 5}
