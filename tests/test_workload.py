"""Open-world workload generator: sampler, shaper, episodes, oracle.

The generator's promise is unusual: production-shaped, unbounded-feel
streams whose ground truth stays *exact*.  These tests pin the three
legs separately (Zipf popularity, arrival shaping, episode scheduling)
and then the combined promise — a direct engine over the generated
stream must produce exactly the per-rule detection counts the
generator accumulated while emitting it.
"""

import random

import pytest

from repro.core.detector import Engine, FunctionRegistry
from repro.scenarios import get_pack
from repro.store import RfidStore
from repro.workload import (
    ArrivalShaper,
    GeneratedWorkload,
    ShapingConfig,
    TagUniverse,
    WorkloadConfig,
    ZipfSampler,
    zeta,
)

WORKLOAD_PACKS = ["checkout", "packing", "returns-fraud"]


class TestZipf:
    def test_seeded_determinism(self):
        a = ZipfSampler(10_000, theta=0.9, rng=random.Random(5))
        b = ZipfSampler(10_000, theta=0.9, rng=random.Random(5))
        assert [a.sample() for _ in range(500)] == [
            b.sample() for _ in range(500)
        ]

    def test_frequency_rank_monotonicity(self):
        """Hot ranks must actually be drawn more often, in rank order."""
        sampler = ZipfSampler(1_000, theta=0.99, rng=random.Random(11))
        counts = [0] * 1_000
        for _ in range(50_000):
            counts[sampler.sample()] += 1
        assert counts[0] > counts[1] > counts[4]
        assert counts[0] > 20 * counts[500]

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(100, theta=0.0, rng=random.Random(3))
        counts = [0] * 100
        for _ in range(20_000):
            counts[sampler.sample()] += 1
        assert min(counts) > 0
        assert max(counts) < 3 * min(counts)
        assert sampler.probability(0) == sampler.probability(99)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(200, theta=0.8)
        total = sum(sampler.probability(rank) for rank in range(200))
        assert total == pytest.approx(1.0)

    def test_probability_matches_empirical_head(self):
        sampler = ZipfSampler(100, theta=0.9, rng=random.Random(7))
        draws = 100_000
        hits = sum(sampler.sample() == 0 for _ in range(draws))
        assert hits / draws == pytest.approx(
            sampler.probability(0), rel=0.1
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, theta=1.0)
        with pytest.raises(ValueError):
            ZipfSampler(10).probability(10)

    def test_zeta_cached_and_correct(self):
        assert zeta(3, 1.0) == pytest.approx(1 + 1 / 2 + 1 / 3)
        assert zeta(3, 1.0) == zeta(3, 1.0)


class TestShaper:
    def test_seeded_determinism(self):
        config = ShapingConfig(base_rate=20.0)
        a = ArrivalShaper(config, rng=random.Random(2))
        b = ArrivalShaper(config, rng=random.Random(2))
        times_a, times_b, t_a, t_b = [], [], 0.0, 0.0
        for _ in range(200):
            t_a = a.next_arrival(t_a)
            t_b = b.next_arrival(t_b)
            times_a.append(t_a)
            times_b.append(t_b)
        assert times_a == times_b

    def test_arrivals_strictly_increase(self):
        shaper = ArrivalShaper(ShapingConfig(), rng=random.Random(4))
        t = 0.0
        for _ in range(500):
            nxt = shaper.next_arrival(t)
            assert nxt > t
            t = nxt

    def test_burst_density_exceeds_calm_density(self):
        config = ShapingConfig(
            base_rate=10.0,
            diurnal_amplitude=0.0,
            burst_every=200.0,
            burst_duration=(40.0, 60.0),
            burst_factor=8.0,
        )
        shaper = ArrivalShaper(config, rng=random.Random(6))
        burst, calm, t = [], [], 0.0
        for _ in range(8_000):
            t = shaper.next_arrival(t)
            (burst if shaper.in_burst(t) else calm).append(t)
        assert burst and calm

        def density(times):
            return len(times) / (max(times) - min(times))

        assert density(burst) > 3 * density(calm)

    def test_no_bursts_when_disabled(self):
        shaper = ArrivalShaper(
            ShapingConfig(burst_every=0.0), rng=random.Random(1)
        )
        assert not any(
            shaper.in_burst(float(t)) for t in range(0, 1000, 10)
        )

    def test_diurnal_rate_oscillates(self):
        config = ShapingConfig(
            base_rate=10.0,
            diurnal_amplitude=0.5,
            diurnal_period=100.0,
            burst_every=0.0,
        )
        shaper = ArrivalShaper(config, rng=random.Random(1))
        assert shaper.rate(25.0) == pytest.approx(15.0)
        assert shaper.rate(75.0) == pytest.approx(5.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShapingConfig(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            ShapingConfig(burst_factor=0.5)


class TestTagUniverse:
    def test_fresh_tags_never_repeat(self):
        tags = TagUniverse(cardinality=100, theta=0.5, rng=random.Random(1))
        drawn = [tags.fresh() for _ in range(500)]
        drawn += [tags.fresh_case() for _ in range(100)]
        assert len(set(drawn)) == len(drawn)
        assert tags.fresh_count() == 600

    def test_popular_draws_repeat_and_count_distinct(self):
        tags = TagUniverse(cardinality=50, theta=0.99, rng=random.Random(2))
        drawn = [tags.popular() for _ in range(2_000)]
        assert len(set(drawn)) <= 50
        assert tags.popular_distinct() == len(set(drawn))
        assert tags.distinct_epcs() == tags.popular_distinct()

    def test_distinct_epcs_combines_pools(self):
        tags = TagUniverse(cardinality=10, theta=0.0, rng=random.Random(3))
        tags.fresh()
        tags.popular()
        assert tags.distinct_epcs() == 2


class TestGeneratedWorkload:
    def _workload(self, pack_name, **overrides):
        pack = get_pack(pack_name)
        config = WorkloadConfig(
            pack=pack_name,
            seed=13,
            target_observations=overrides.pop("target", 1_500),
            lines=4,
            cardinality=5_000,
            theta=0.9,
            **overrides,
        )
        return GeneratedWorkload(pack.episode_source(lines=4), config)

    @pytest.mark.parametrize("pack_name", WORKLOAD_PACKS)
    def test_stream_is_time_ordered(self, pack_name):
        workload = self._workload(pack_name)
        last = -1.0
        for observation in workload:
            assert observation.timestamp >= last
            last = observation.timestamp
        assert workload.stats.observations >= 1_500

    @pytest.mark.parametrize("pack_name", WORKLOAD_PACKS)
    def test_seeded_determinism(self, pack_name):
        def key(workload):
            return [
                (o.reader, o.obj, o.timestamp) for o in workload
            ]

        assert key(self._workload(pack_name)) == key(
            self._workload(pack_name)
        )

    def test_single_use_iterator(self):
        workload = self._workload("checkout", target=100)
        list(workload)
        with pytest.raises(RuntimeError):
            list(workload)

    @pytest.mark.parametrize("pack_name", WORKLOAD_PACKS)
    def test_oracle_consistency(self, pack_name):
        """Engine detections over the stream == generator ground truth."""
        workload = self._workload(pack_name)
        store = RfidStore()
        for reader, location in workload.source.placements():
            store.place_reader(reader, location)
        engine = Engine(
            workload.rules(),
            store=store,
            functions=FunctionRegistry(),
            context="chronicle",
        )
        for observation in workload:
            engine.submit(observation)
        engine.flush()
        assert dict(engine.stats.per_rule) == dict(workload.stats.expected)

    def test_bounded_in_flight(self):
        workload = self._workload("returns-fraud", target=3_000)
        list(workload)
        # Line backpressure: the pending heap stays O(lines), far below
        # the stream length.
        assert workload.stats.max_in_flight <= 64

    def test_chaos_wrapping(self):
        from repro.resilience import ChaosConfig

        workload = self._workload(
            "checkout",
            target=800,
            chaos=ChaosConfig(seed=3, duplicate_rate=0.1),
        )
        emitted = sum(1 for _ in workload)
        counts = workload.chaos_counts
        assert counts["duplicated"] > 0
        assert emitted == counts["delivered"] + counts["duplicated"]

    def test_lines_mismatch_rejected(self):
        pack = get_pack("packing")
        with pytest.raises(ValueError):
            GeneratedWorkload(
                pack.episode_source(lines=2),
                WorkloadConfig(pack="packing", lines=4),
            )
